"""Legacy setup shim: the sandbox lacks the `wheel` package, so PEP 660
editable installs cannot build; `pip install -e .` falls back to this."""
from setuptools import setup

setup()
