"""Heat-equation solver with an autotuned stencil kernel.

The PDE scenario that motivates the paper's introduction: a 3-D heat
(diffusion) equation solved by Jacobi iteration with a normalized 7-point
Laplacian.  The example:

1. defines the kernel in the stencil DSL and compiles it through the full
   PATUS-like workflow (lower → block → unroll → chunk → emit C),
2. lets the trained ordinal-regression model pick the tuning configuration,
3. *executes the transformed loop nest* with the IR interpreter on a small
   grid and checks it solves the same problem as the numpy reference
   (energy decays identically), and
4. compares simulated time-to-solution for 100 sweeps at 256³ between the
   model's pick and a naive default configuration.

Run:  python examples/heat3d_autotune.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CompilationWorkflow,
    OrdinalAutotuner,
    SimulatedMachine,
    StencilExecution,
    StencilInstance,
    TrainingSetBuilder,
    TuningVector,
)
from repro.codegen.dsl import parse_dsl
from repro.codegen.interp import interpret
from repro.codegen.lower import lower_kernel
from repro.codegen.transforms import apply_tuning
from repro.stencil.grid import Grid
from repro.stencil.reference import apply_kernel

HEAT_DSL = """
# 3-D heat equation, explicit Euler: u' = u + alpha * laplacian(u)
# with alpha folded into normalized weights (stable smoothing step).
stencil heat3d {
    grid: 3d
    dtype: double
    buffer u {
        (0, 0, 0): 0.4
        (1, 0, 0): 0.1
        (-1, 0, 0): 0.1
        (0, 1, 0): 0.1
        (0, -1, 0): 0.1
        (0, 0, 1): 0.1
        (0, 0, -1): 0.1
    }
}
"""


def verify_semantics(kernel, weights) -> None:
    """The tuned loop nest must compute exactly the reference update."""
    size = (24, 20, 16)
    grid = Grid.random(size, halo=1, dtype="double", rng=7)
    reference = apply_kernel(kernel, [grid], weights=weights)
    for tuning in [TuningVector(8, 4, 4, 4, 2), TuningVector(5, 3, 7, 3, 1)]:
        nest = apply_tuning(lower_kernel(kernel, size, weights), tuning)
        out = interpret(nest, [grid])
        assert np.allclose(out.interior, reference.interior, rtol=1e-13)
    print("semantics check: tuned loop nests match the numpy reference ✓")


def energy_decay_demo(kernel, weights) -> None:
    """Jacobi sweeps of the normalized kernel smooth the field."""
    size = (32, 32, 32)
    grid = Grid.random(size, halo=1, dtype="double", rng=1)
    variance = [float(np.var(grid.interior))]
    current = grid
    for _ in range(5):
        nxt = apply_kernel(kernel, [current], weights=weights)
        nxt.fill_halo_periodic()
        current = nxt
        variance.append(float(np.var(current.interior)))
    print("field variance over 5 sweeps:",
          " → ".join(f"{v:.4f}" for v in variance))
    assert all(a >= b for a, b in zip(variance, variance[1:]))


def main() -> None:
    kernel, weights = parse_dsl(HEAT_DSL)
    verify_semantics(kernel, weights)
    energy_decay_demo(kernel, weights)

    machine = SimulatedMachine(seed=0)
    print("\ntraining the autotuner...")
    tuner = OrdinalAutotuner().train(TrainingSetBuilder(machine, seed=0).build(2600))
    workflow = CompilationWorkflow(tuner, machine)

    size = (256, 256, 256)
    binary = workflow.tune_dsl(HEAT_DSL, size)
    print(f"model-picked configuration: {binary.tuning} "
          f"(ranked in {binary.rank_seconds * 1e3:.2f} ms, "
          f"compile accounted {binary.compile_seconds:.0f}s)")

    instance = StencilInstance(kernel, size)
    default = TuningVector(bx=1024, by=1024, bz=1024, unroll=0, chunk=1)  # untiled
    sweeps = 100
    t_tuned = machine.true_time(binary.execution()) * sweeps
    t_default = machine.true_time(StencilExecution(instance, default)) * sweeps

    print(f"\nsimulated time for {sweeps} sweeps at 256³:")
    print(f"  default (untiled): {t_default:7.2f} s")
    print(f"  autotuned:         {t_tuned:7.2f} s  "
          f"(speedup {t_default / t_tuned:.2f}x)")


if __name__ == "__main__":
    main()
