"""Iterative search versus the trained ranking model (mini Fig. 4 / Fig. 5).

Runs the paper's four search algorithms with a reduced budget on a couple
of benchmarks, alongside the ordinal-regression tuner picking from the
pre-defined candidate set, and prints the speedup-vs-GA bars plus the
time-to-solution asymmetry.

Run:  python examples/search_vs_model.py
"""

from __future__ import annotations

from repro import SimulatedMachine, StencilExecution, benchmark_by_id, preset_candidates
from repro.experiments.common import SEARCH_METHODS, ExperimentContext
from repro.util.tables import Table

BENCHMARKS = ("gradient-256x256x256", "blur-1024x768")
BUDGET = 192
TRAINING_SIZE = 2600


def main() -> None:
    ctx = ExperimentContext(seed=0)
    print(f"training the model on {TRAINING_SIZE} points...")
    ctx.base_training_set(TRAINING_SIZE)
    tuner = ctx.tuner(TRAINING_SIZE)
    machine = ctx.machine

    for label in BENCHMARKS:
        instance = benchmark_by_id(label)
        candidates = preset_candidates(instance.dims)

        rows = []
        ga_time = None
        for name in SEARCH_METHODS:
            result = ctx.search(name, instance).tune(instance, budget=BUDGET)
            if name == "genetic algorithm":
                ga_time = result.best_time
            rows.append((f"{name} ({BUDGET} evals)", result.best_time,
                         result.total_wall_s))

        pick = tuner.best(instance, candidates)
        pick_time = machine.true_time(StencilExecution(instance, pick))
        rows.append((f"ord.regression (0 evals)", pick_time,
                     tuner.last_rank_seconds))

        assert ga_time is not None
        table = Table(
            ["method", "best time (ms)", "speedup vs GA", "time-to-solution (s)"],
            title=f"\n{label}",
        )
        for name, t, tts in rows:
            table.add_row([name, t * 1e3, ga_time / t, tts])
        print(table.render(floatfmt=".3f"))


if __name__ == "__main__":
    main()
