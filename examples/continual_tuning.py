"""Continual learning end-to-end: a tuning service that survives drift.

The episode:

1. Train an offline model on **line + laplacian** stencils only and serve
   it (``prod`` tag) — the deliberately partial corpus a real deployment
   always has.
2. Drive a request stream whose family mix **shifts mid-episode** to
   hypercube/hyperplane shapes the model has never seen.
3. The continual pipeline runs between request waves: measures
   ground-truth probes of served rankings under a budget, watches rolling
   Kendall τ per family and feature shift vs the training fingerprint,
   and when drift trips — retrains on offline + feedback, shadow-evaluates
   against production on held-out records, and promotes via an atomic
   registry tag move the service hot-swaps onto.
4. The wrap-up compares the adapting service's post-shift τ with what the
   frozen offline model would have scored on the very same measured
   records.

Run with::

    PYTHONPATH=src python examples/continual_tuning.py
"""

from __future__ import annotations

import asyncio

from repro.autotune.training import TrainingSetBuilder
from repro.machine.budget import BudgetedMachine
from repro.machine.executor import SimulatedMachine
from repro.online import (
    ContinualConfig,
    ContinualLearningPipeline,
    DriftingWorkload,
    DriftMonitor,
    FeedbackCollector,
    IncrementalTrainer,
    PromotionPolicy,
    ShadowEvaluator,
    family_kernels,
    mean_model_tau,
)
from repro.service import ModelRegistry, TuningService
from repro.autotune.autotuner import OrdinalAutotuner
from tempfile import TemporaryDirectory

N_REQUESTS = 128
SHIFT_AT = 40
WAVE = 8


async def run_episode(pipeline, workload) -> list:
    service = pipeline.service
    responses = []
    async with service:
        pipeline.attach()
        for start in range(0, N_REQUESTS, WAVE):
            wave = [workload.request(i) for i in range(start, start + WAVE)]
            responses += await asyncio.gather(
                *(service.rank(q, cands) for q, cands in wave)
            )
            report = pipeline.step()  # background work between waves
            marker = "DRIFT" if report.drifted else "ok"
            print(
                f"  wave {start // WAVE:2d}  [{marker:5s}] "
                f"tau={report.overall_tau:+.3f} shift={report.feature_shift:4.2f} "
                f"({report.n_observations} obs)"
            )
        pipeline.detach()
    return responses


def main() -> None:
    print("== offline phase: train on line+laplacian only ==")
    builder = TrainingSetBuilder(SimulatedMachine(seed=7), seed=7)
    offline = builder.build(840, kernels=family_kernels(("line", "laplacian")))
    tuner = OrdinalAutotuner().train(offline)
    print(f"   {offline.summary()}")

    with TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        v1 = registry.publish(
            tuner.model, tuner.fingerprint(), tags=("prod",), note="offline seed"
        )
        service = TuningService(registry, default_model="prod")

        truth = SimulatedMachine(seed=11)
        collector = FeedbackCollector(
            BudgetedMachine(truth, max_evaluations=6000), probe_size=16
        )
        pipeline = ContinualLearningPipeline(
            service=service,
            collector=collector,
            monitor=DriftMonitor(
                tuner.encoder, window=48, tau_threshold=0.45, shift_threshold=1.2
            ).fit_reference(offline),
            trainer=IncrementalTrainer(
                offline, tuner.encoder, offline_points=None, max_feedback=128
            ),
            evaluator=ShadowEvaluator(tuner.encoder),
            policy=PromotionPolicy(registry, tag="prod", min_records=4),
            config=ContinualConfig(measure_per_step=10, min_feedback_to_train=16),
        )

        workload = DriftingWorkload(shift_at=SHIFT_AT, seed=3)
        print(f"== serving {N_REQUESTS} requests, family mix shifts at {SHIFT_AT} ==")
        asyncio.run(run_episode(pipeline, workload))

        print("== events ==")
        for event in pipeline.events:
            if event["type"] == "retrain":
                verdict = f"promoted {event['version']}" if event["promoted"] else "rejected"
                print(
                    f"  retrain ({', '.join(event['reasons'])[:70]}…) → {verdict}  "
                    f"shadow: cand {event['candidate_tau']:.3f} "
                    f"vs prod {event['production_tau']:.3f}"
                )
            else:
                print(f"  {event['type']}: {event}")

        # grade the episode: shifted-family records served by promoted
        # models, rescored with the frozen offline model on identical
        # measurements
        frozen = registry.load(v1, expect_fingerprint=tuner.fingerprint())
        post = [
            fb
            for fb in collector.window()
            if fb.family in workload.phase2 and fb.model_version != v1
        ]
        if post:
            adapting_tau = sum(fb.tau for fb in post) / len(post)
            frozen_tau = mean_model_tau(tuner.encoder, frozen, post)
            print("== post-shift ranking quality (same measured records) ==")
            print(f"   adapting service: tau = {adapting_tau:+.3f}")
            print(f"   frozen model:     tau = {frozen_tau:+.3f}")
        print(
            f"   registry now holds {registry.versions()} "
            f"(tags: {registry.tags()})"
        )


if __name__ == "__main__":
    main()
