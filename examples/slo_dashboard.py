"""Headless SLO dashboard: objectives, quality gauges, and the audit tail.

One terminal-friendly pass over the fleet-and-loop observability layer:

* **are we meeting our objectives?** — a burst of cluster traffic is
  folded into :class:`~repro.obs.slo.SLOEngine` ticks; the state table
  shows per-objective windowed values, burn rates and alert states, then
  an injected quality collapse demonstrates the deterministic
  ok → warning → breach walk;
* **did the last promotion deliver?** — a :class:`QualityWatch` streams
  probe-measured τ, so realized-vs-shadow quality is a live gauge, not a
  post-mortem;
* **what just happened?** — the audit journal's checksummed tail ties
  answers, tag moves and SLO transitions into one verifiable record.

Run::

    PYTHONPATH=src python examples/slo_dashboard.py
"""

from __future__ import annotations

from tempfile import TemporaryDirectory

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.training import TrainingSetBuilder
from repro.machine.executor import SimulatedMachine
from repro.obs.audit import AuditJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import QualityWatch
from repro.obs.slo import SLOEngine, default_objectives
from repro.service import ModelRegistry, ServiceCluster
from repro.stencil.suite import TEST_BENCHMARKS


def train() -> OrdinalAutotuner:
    print("== training the tuner (one-time, offline) ==")
    builder = TrainingSetBuilder(SimulatedMachine(seed=7), seed=7)
    training_set = builder.build(640)
    tuner = OrdinalAutotuner().train(training_set)
    print(f"trained on {len(training_set.data)} points\n")
    return tuner


class FB:
    """Minimal measured-feedback record (family, tau, model_version)."""

    def __init__(self, family, tau, version):
        self.family, self.tau, self.model_version = family, tau, version


def main() -> None:
    tuner = train()
    metrics = MetricsRegistry()
    journal = AuditJournal()
    quality = QualityWatch(
        metrics, window=32, alert_margin=0.1, min_outcome_records=4,
        audit=journal,
    )
    # generous latency target: this is a 1-core demo box, not production
    engine = SLOEngine(
        default_objectives(latency_p99_s=60.0, quality_tau=0.5),
        metrics=metrics, audit=journal, fast_window=2, slow_window=6,
    )

    with TemporaryDirectory() as root:
        registry = ModelRegistry(root)
        registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))
        journal.attach_registry(registry)

        print("== serving 3 waves of 16 requests (2 workers, audited) ==")
        with ServiceCluster(
            root, n_workers=2, default_model="prod", audit=journal
        ) as cluster:
            evaluation = None
            for wave in range(3):
                futures = [
                    cluster.submit(q, top_k=3, include_scores=False)
                    for q in TEST_BENCHMARKS[:16]
                ]
                for fut in futures:
                    fut.result()
                # one SLO tick per wave, fed by the exact-merge stats
                merged = cluster.stats()["cluster"]
                evaluation = engine.evaluate(
                    merged, quality_tau=quality.overall_tau() or None
                )
        print("per-objective state after healthy traffic:\n")
        print(engine.state_table(evaluation))
        print()

        print("== promotion outcome: realized vs shadow τ ==")
        quality.note_promotion("v0002", shadow_tau=0.82, production_tau=0.65)
        for tau in (0.85, 0.83, 0.84, 0.81):
            quality.observe(FB("line", tau, "v0002"))
        outcome = quality.outcomes()[-1]
        print(f"  promoted {outcome['version']}: shadow τ "
              f"{outcome['shadow_tau']:+.2f}, realized τ "
              f"{outcome['realized_tau']:+.2f} over {outcome['n_records']} "
              f"records (gap {outcome['gap']:+.3f})\n")

        print("== injected quality collapse: the deterministic breach walk ==")
        states = []
        for _ in range(16):
            quality.observe(FB("line", 0.05, "v0002"))
            evaluation = engine.evaluate({}, quality_tau=quality.overall_tau())
            states.append(evaluation["quality"]["state"])
        walk = [states[0]] + [s for prev, s in zip(states, states[1:])
                              if s != prev]
        print(f"  quality SLO state walk over 16 ticks: {' -> '.join(walk)}")
        assert states[-1] == "breach", states  # same walk on every run
        alert = quality.alerts[-1]
        print(f"  quality-regression alert: realized τ "
              f"{alert['realized_tau']:+.2f} fell below floor "
              f"{alert['floor']:+.2f} (shadow {alert['shadow_tau']:+.2f})\n")
        print(engine.state_table(evaluation))
        print()

        print("== audit journal tail (checksummed; newest last) ==")
        n = journal.verify()
        print(f"  {n} entries, chain verified")
        for entry in journal.tail(8):
            attrs = {k: v for k, v in entry["attrs"].items()
                     if k in ("req_id", "model_version", "worker", "why",
                              "tag", "version", "objective", "from", "to")}
            print(f"  #{entry['seq']:<4d} {entry['event']:<18s} {attrs}")
        replay = AuditJournal.replay(journal.entries())
        print(f"\n  replay: {len(replay['answers'])} answers attributed, "
              f"event counts {replay['counts']}")


if __name__ == "__main__":
    main()
