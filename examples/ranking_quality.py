"""Ranking-quality analysis: Kendall τ versus training-set size
(mini Fig. 6 / Fig. 7).

Trains the model at several training-set sizes, computes the per-instance
Kendall τ between predicted and true orderings on the training set, and
prints the distribution statistics plus an ASCII density sketch —
reproducing the paper's observation that more data mostly *stabilizes* the
ranking (variance shrinks) rather than shifting the median.

Run:  python examples/ranking_quality.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentContext
from repro.util.tables import Table, format_histogram

SIZES = (640, 1300, 2600)


def main() -> None:
    ctx = ExperimentContext(seed=0)
    ctx.base_training_set(max(SIZES))

    table = Table(
        ["size", "mean tau", "median", "std", "min", "max", "negative %"],
        title="Kendall tau on the training set vs training-set size",
    )
    distributions = {}
    for size in SIZES:
        tuner = ctx.tuner(size)
        data = ctx.training_set(size).data
        assert tuner.model is not None
        taus = np.array(list(tuner.model.kendall_per_group(data).values()))
        distributions[size] = taus
        table.add_row(
            [
                size,
                float(taus.mean()),
                float(np.median(taus)),
                float(taus.std()),
                float(taus.min()),
                float(taus.max()),
                100.0 * float((taus < 0).mean()),
            ]
        )
    print(table.render(floatfmt=".3f"))

    for size, taus in distributions.items():
        print(f"\ntau density at size {size} (one mark per instance):")
        print(format_histogram(taus, bins=14, lo=-1.0, hi=1.0))

    small, large = distributions[SIZES[0]], distributions[SIZES[-1]]
    print(
        f"\nvariance shrinks with data: std {small.std():.3f} -> {large.std():.3f}; "
        f"median {np.median(small):.3f} -> {np.median(large):.3f}"
    )


if __name__ == "__main__":
    main()
