"""Ranking-as-a-service: train once, publish, serve concurrent tuning traffic.

The end-to-end serving story (see docs/serving.md):

1. train the ordinal-regression tuner (one-time, expensive phase);
2. publish the model to a versioned registry and tag it ``prod``;
3. start the async :class:`TuningService` and fire 96 concurrent ranking
   requests over a handful of hot stencil instances — watch micro-batching
   coalesce them and the ranking cache absorb the repeats;
4. publish a retrained model and move the ``prod`` tag — a hot swap the
   running service picks up on its next batch, no restart.

Run:  python examples/serve_tuner.py
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from tempfile import TemporaryDirectory

from repro import (
    OrdinalAutotuner,
    RankSVMConfig,
    SimulatedMachine,
    TrainingSetBuilder,
    TuningService,
    benchmark_by_id,
)
from repro.service import ModelRegistry

HOT_INSTANCES = [
    "laplacian-128x128x128",
    "gradient-128x128x128",
    "blur-1024x768",
    "edge-512x512",
]


async def serve_traffic(registry: ModelRegistry) -> None:
    instances = [benchmark_by_id(label) for label in HOT_INSTANCES]

    async with TuningService(registry, default_model="prod") as service:
        # -- 96 concurrent requests over 4 hot instances -------------------
        responses = await asyncio.gather(
            *(service.rank(instances[i % len(instances)]) for i in range(96))
        )
        stats = service.stats()
        print(f"answered {stats['completed_total']} requests "
              f"in {stats['batches_total']} micro-batches "
              f"(mean batch {stats['mean_batch_size']:.1f})")
        print(f"  cache: {stats['cache_hits']} hits / "
              f"{stats['cache_misses']} misses "
              f"(hit rate {stats['cache_hit_rate']:.0%})")
        print(f"  latency: p50 {stats['latency_p50_ms']:.1f} ms, "
              f"p99 {stats['latency_p99_ms']:.1f} ms")
        best = responses[0].best
        print(f"  {instances[0].label()} -> {best} "
              f"(model {responses[0].model_version})")

        # -- hot swap: retrain, publish, retag — no restart ----------------
        print("\nretraining and hot-swapping the prod model...")
        machine = SimulatedMachine(seed=1)
        training_set = TrainingSetBuilder(machine, seed=1).build(1200)
        retrained = OrdinalAutotuner(config=RankSVMConfig(seed=1)).train(training_set)
        v2 = registry.publish(
            retrained.model, retrained.fingerprint(), note="retrained on seed 1"
        )
        registry.tag("prod", v2)

        response = await service.rank(instances[0])
        print(f"  {instances[0].label()} now served by {response.model_version}: "
              f"{response.best}")


def main() -> None:
    # 1. one-time training phase
    print("training the tuner (~600-point corpus)...")
    machine = SimulatedMachine(seed=0)
    training_set = TrainingSetBuilder(machine, seed=0).build(640)
    tuner = OrdinalAutotuner().train(training_set)

    with TemporaryDirectory() as tmp:
        # 2. publish to a versioned registry
        registry = ModelRegistry(Path(tmp) / "registry")
        v1 = registry.publish(
            tuner.model, tuner.fingerprint(), tags=("prod",), note="initial model"
        )
        print(f"published {v1} (tagged prod) to {registry.root}\n")

        # 3 + 4. serve concurrent traffic, then hot-swap
        asyncio.run(serve_traffic(registry))


if __name__ == "__main__":
    main()
