"""Quickstart: train the ordinal-regression autotuner and tune a stencil.

This is the README's 60-second tour: build a (small) training set on the
simulated Xeon E5-2680 v3, train the RankSVM tuner, and let it pick a
tuning configuration for the paper's 7-point Laplacian — then check how
close the pick is to the true optimum of the candidate set.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    OrdinalAutotuner,
    SimulatedMachine,
    StencilExecution,
    TrainingSetBuilder,
    benchmark_by_id,
    preset_candidates,
)


def main() -> None:
    # 1. The machine everything runs on (deterministic: seed fixes noise).
    machine = SimulatedMachine(seed=0)

    # 2. One-time training phase (paper Fig. 3): generate the 60 synthetic
    #    stencil codes, measure ~2600 random tuning vectors across their
    #    210 instances, and collect the partial rankings.
    print("building training set (60 codes, 210 instances)...")
    training_set = TrainingSetBuilder(machine, seed=0).build(2600)
    print(" ", training_set.summary())

    # 3. Train the RankSVM tuner (linear kernel, C = 0.01 as in the paper).
    tuner = OrdinalAutotuner().train(training_set)
    print(f"  trained in {tuner.last_train_seconds:.2f}s wall clock")

    # 4. Tune an unseen stencil: the 7-point double-precision Laplacian at
    #    256³ — none of the Table III kernels appear in the training set.
    instance = benchmark_by_id("laplacian-256x256x256")
    best = tuner.best(instance)
    print(f"\ntop-ranked configuration for {instance.label()}: {best}")
    print(f"  ranking 8640 candidates took {tuner.last_rank_seconds * 1e3:.2f} ms")

    # 5. How good is the pick?  Compare against the candidate set's true
    #    optimum and median on the simulated machine.
    candidates = preset_candidates(3)
    times = machine.true_times(instance, candidates)
    pick_time = machine.true_time(StencilExecution(instance, best))
    print(f"\n  pick:    {pick_time * 1e3:8.2f} ms/sweep")
    print(f"  optimum: {times.min() * 1e3:8.2f} ms/sweep "
          f"(regret {100 * (pick_time / times.min() - 1):.1f}%)")
    print(f"  median:  {float(sorted(times)[len(times) // 2]) * 1e3:8.2f} ms/sweep")
    gflops = instance.flops / pick_time / 1e9
    print(f"  sustained performance: {gflops:.2f} GFlop/s")


if __name__ == "__main__":
    main()
