"""Tour of the observability layer: tracing, attribution, and metrics.

Serves a burst of mixed ranking traffic from a 2-worker cluster with
distributed tracing on, then answers the operational questions the layer
exists for:

* **where does a request's time go?** — every traced request carries a
  root span plus stage spans from both sides of the worker pipe
  (dispatch, transport, micro-batch queue, fused encode, slab score,
  reply); ``stage_breakdown`` folds them into a per-stage attribution;
* **which requests are traced?** — a deterministic request-id hash, so
  reruns trace the identical subset at any sample rate;
* **what do cluster-wide percentiles look like?** — per-worker
  fixed-bucket histograms merge exactly (no window eviction bias) and
  render as Prometheus-style exposition text for scrapers.

Run::

    PYTHONPATH=src python examples/trace_requests.py
"""

from __future__ import annotations

import time
from tempfile import TemporaryDirectory

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.training import TrainingSetBuilder
from repro.machine.executor import SimulatedMachine
from repro.obs.metrics import exposition
from repro.obs.trace import TraceConfig, sample_request, stage_breakdown
from repro.service import ModelRegistry, ServiceCluster
from repro.stencil.suite import TEST_BENCHMARKS


def train() -> OrdinalAutotuner:
    print("== training the tuner (one-time, offline) ==")
    builder = TrainingSetBuilder(SimulatedMachine(seed=7), seed=7)
    training_set = builder.build(640)
    tuner = OrdinalAutotuner().train(training_set)
    print(f"trained on {len(training_set.data)} points\n")
    return tuner


def main() -> None:
    tuner = train()
    instances = TEST_BENCHMARKS[:8]
    with TemporaryDirectory() as root:
        registry = ModelRegistry(root)
        registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))

        print("== traced burst: 48 requests, 2 workers, sample_rate=1.0 ==")
        with ServiceCluster(
            root,
            n_workers=2,
            default_model="prod",
            trace=TraceConfig(sample_rate=1.0),
        ) as cluster:
            start = time.perf_counter()
            futures = [
                cluster.submit(q, top_k=3, include_scores=False)
                for q in instances * 6
            ]
            for fut in futures:
                fut.result()
            elapsed = time.perf_counter() - start
            spans = cluster.trace_spans()
            merged = cluster.stats()["cluster"]
        print(f"answered {len(futures)} requests in {elapsed * 1e3:.0f} ms; "
              f"recorded {len(spans)} spans\n")

        print("== one request's story (first trace, chronological) ==")
        first_id = next(s.trace_id for s in spans if s.trace_id)
        story = sorted(
            (s for s in spans if s.trace_id == first_id),
            key=lambda s: (s.start_s, -s.duration_s),
        )
        t0 = story[0].start_s
        for s in story:
            print(f"  +{(s.start_s - t0) * 1e3:7.2f} ms  "
                  f"{s.name:15s} {s.duration_s * 1e3:8.3f} ms  [{s.process}]")
        print()

        print("== per-stage attribution (all traces) ==")
        report = stage_breakdown(spans)
        print(f"traces: {report['n_traces']}  "
              f"coverage: mean {report['coverage_mean']:.1%}, "
              f"min {report['coverage_min']:.1%}")
        for name, stage in sorted(
            report["stages"].items(), key=lambda kv: -kv[1]["total_s"]
        ):
            print(f"  {name:15s} {stage['mean_ms']:8.3f} ms/req  "
                  f"{stage['fraction']:6.1%} of wall  (n={stage['count']})")
        print()

        print("== deterministic sampling at rate 0.25 ==")
        decisions = [sample_request(i, 0.25) for i in range(1, 49)]
        print(f"would trace {sum(decisions)}/48 requests — the same subset "
              f"on every rerun\n")

        print("== cluster-wide percentiles (exactly merged histograms) ==")
        print(f"  p50 {merged['latency_p50_ms']:7.3f} ms   "
              f"p99 {merged['latency_p99_ms']:7.3f} ms   "
              f"(pooled-window cross-check: "
              f"p50 {merged['latency_pooled_p50_ms']:.3f} ms, "
              f"p99 {merged['latency_pooled_p99_ms']:.3f} ms)\n")

        print("== Prometheus-style exposition (excerpt) ==")
        text = exposition(merged, prefix="repro_cluster")
        for line in text.splitlines():
            if "_bucket" not in line:  # elide the 81 bucket lines
                print(f"  {line}")


if __name__ == "__main__":
    main()
