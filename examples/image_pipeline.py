"""Per-stage autotuning of a 2-D image-processing pipeline.

The image-processing scenario from the paper's introduction (Halide-style
workloads): a two-stage pipeline — 5×5 Gaussian-ish blur followed by a 3×3
edge-detection stencil — applied to a 1024×768 image.  Each stage has a
*different* optimal tuning configuration (blur is compute-heavier; edge is
lighter with a smaller halo), and the autotuner picks per-stage configs
from the 1600-candidate 2-D preset without executing any of them.

The example also runs the pipeline *functionally* (numpy reference) on a
synthetic image and reports simulated per-stage and pipeline times against
an untiled default.

Run:  python examples/image_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    OrdinalAutotuner,
    SimulatedMachine,
    StencilExecution,
    StencilInstance,
    StencilKernel,
    TrainingSetBuilder,
    TuningVector,
)
from repro.stencil.grid import Grid
from repro.stencil.pattern import StencilPattern
from repro.stencil.reference import apply_kernel
from repro.stencil.shapes import hypercube


def make_pipeline() -> list[tuple[StencilKernel, list[dict]]]:
    """(kernel, weights) per stage."""
    blur_pattern = hypercube(2, 2)
    # separable-gaussian-like weights, normalized
    blur_w = {}
    for (dx, dy, dz) in blur_pattern.offsets:
        blur_w[(dx, dy, dz)] = float(np.exp(-(dx * dx + dy * dy) / 2.0))
    total = sum(blur_w.values())
    blur_w = {k: v / total for k, v in blur_w.items()}
    blur = StencilKernel.single_buffer("pipeline-blur", blur_pattern, "float")

    edge_pattern = StencilPattern.from_points(
        [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)]
    )
    edge_w = {(0, 0, 0): 4.0, (1, 0, 0): -1.0, (-1, 0, 0): -1.0,
              (0, 1, 0): -1.0, (0, -1, 0): -1.0}
    edge = StencilKernel.single_buffer("pipeline-edge", edge_pattern, "float")
    return [(blur, [blur_w]), (edge, [edge_w])]


def synthetic_image(width: int, height: int) -> Grid:
    """A float image with a few hard edges (for the functional demo)."""
    img = np.zeros((width, height, 1), dtype=np.float32)
    img[width // 4 : width // 2, :, 0] = 1.0
    img[:, height // 3 : height // 2, 0] += 0.5
    return Grid.from_interior(img, halo=2)


def main() -> None:
    width, height = 1024, 768
    machine = SimulatedMachine(seed=0)
    print("training the autotuner...")
    tuner = OrdinalAutotuner().train(TrainingSetBuilder(machine, seed=0).build(2600))

    stages = make_pipeline()
    image = synthetic_image(width, height)

    default = TuningVector(bx=1024, by=1024, bz=1, unroll=0, chunk=1)
    total_tuned = total_default = 0.0
    current = image
    print(f"\npipeline on a {width}x{height} image:")
    for kernel, weights in stages:
        instance = StencilInstance(kernel, (width, height, 1))
        pick = tuner.best(instance)

        # functional stage execution (numpy reference with real weights)
        current = apply_kernel(kernel, [current], weights=weights)
        current.fill_halo_periodic()

        t_tuned = machine.true_time(StencilExecution(instance, pick))
        t_default = machine.true_time(StencilExecution(instance, default))
        total_tuned += t_tuned
        total_default += t_default
        print(f"  {kernel.name:16s} pick={pick}  "
              f"{t_tuned * 1e3:6.2f} ms vs default {t_default * 1e3:6.2f} ms "
              f"({t_default / t_tuned:4.1f}x)")

    edges = current.interior
    print(f"\n  edge-map stats: min={edges.min():.3f} max={edges.max():.3f} "
          f"nonzero={float((np.abs(edges) > 1e-3).mean()) * 100:.1f}%")
    print(f"  pipeline: tuned {total_tuned * 1e3:.2f} ms vs "
          f"default {total_default * 1e3:.2f} ms "
          f"→ speedup {total_default / total_tuned:.2f}x")
    # per-stage configs should differ: the stages have different shapes
    picks = [tuner.best(StencilInstance(k, (width, height, 1))) for k, _ in stages]
    if picks[0] != picks[1]:
        print("  note: the tuner chose different configurations per stage")


if __name__ == "__main__":
    main()
