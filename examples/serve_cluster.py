"""End-to-end tour of multi-process serving: ``ServiceCluster``.

Trains a tuner, publishes it to an on-disk registry, then serves a burst
of mixed-instance ranking traffic from a 2-worker process cluster —
showing instance-affine routing, per-worker caches, a hot model swap
observed by every worker, crash recovery, the aggregated telemetry, and
the wire-level feedback stream: workers sample served answers back to the
coordinator, where one ``ClusterFeedbackCollector`` measures ground-truth
probes under a single budget (the hook the continual-learning pipeline
rides at cluster scale — see docs/continual_learning.md).

Run::

    PYTHONPATH=src python examples/serve_cluster.py
"""

from __future__ import annotations

import time
from tempfile import TemporaryDirectory

import numpy as np

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.training import TrainingSetBuilder
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.machine.budget import BudgetedMachine
from repro.machine.executor import SimulatedMachine
from repro.online import ClusterFeedbackCollector
from repro.service import ModelRegistry, ServiceCluster
from repro.stencil.suite import TEST_BENCHMARKS


def train() -> OrdinalAutotuner:
    print("== training the tuner (one-time, offline) ==")
    builder = TrainingSetBuilder(SimulatedMachine(seed=7), seed=7)
    training_set = builder.build(640)
    tuner = OrdinalAutotuner().train(training_set)
    print(f"trained on {len(training_set.data)} points\n")
    return tuner


def main() -> None:
    tuner = train()
    instances = TEST_BENCHMARKS[:8]
    with TemporaryDirectory() as root:
        registry = ModelRegistry(root)
        v1 = registry.publish(tuner.model, tuner.fingerprint(), tags=("prod",))
        print(f"== published {v1}, tagged prod ==\n")

        with ServiceCluster(
            root, n_workers=2, default_model="prod", feedback_every=1
        ) as cluster:
            collector = ClusterFeedbackCollector(
                BudgetedMachine(SimulatedMachine(seed=11), max_evaluations=256),
                probe_size=8,
            ).attach(cluster)
            print("== burst: 32 requests over 8 instances, 2 workers ==")
            start = time.perf_counter()
            futures = [
                cluster.submit(q, top_k=3, include_scores=False)
                for q in instances * 4
            ]
            responses = [f.result() for f in futures]
            elapsed = time.perf_counter() - start
            by_worker: dict[int, int] = {}
            for r in responses:
                by_worker[r.worker_id] = by_worker.get(r.worker_id, 0) + 1
            print(f"answered {len(responses)} requests in {elapsed * 1e3:.0f} ms")
            print(f"shard load: {dict(sorted(by_worker.items()))}")
            print(f"cache-served repeats: {sum(r.cached for r in responses)}")
            print(f"best for {instances[0].label()}: {responses[0].best}\n")

            print("== hot swap: publish v2 and move the tag ==")
            retrained = RankSVM(RankSVMConfig(C=0.05, seed=1)).fit(
                TrainingSetBuilder(SimulatedMachine(seed=8), seed=8).build(640).data
            )
            v2 = registry.publish(retrained, tuner.fingerprint())
            registry.tag("prod", v2)
            response = cluster.submit(
                instances[0], top_k=1, include_scores=False
            ).result()
            print(f"next answer served by model {response.model_version} "
                  f"(worker {response.worker_id}) — no restart\n")

            print("== crash drill: kill worker 0 mid-service ==")
            cluster.kill_worker(0)
            survivors = [
                cluster.submit(q, top_k=1, include_scores=False).result()
                for q in instances
            ]
            print(f"all {len(survivors)} requests still answered "
                  f"(crashes observed: {cluster.crashes}; "
                  f"alive workers: {cluster.alive_workers()})\n")

            print("== feedback over the wire ==")
            measured = collector.measure_pending(limit=8)
            print(f"workers streamed {cluster.feedback_received} records "
                  f"(per shard: {dict(sorted(collector.records_by_worker.items()))})")
            print(f"measured {len(measured)} ground-truth probes under one "
                  f"budget; mean served-ranking tau "
                  f"{float(np.mean([fb.tau for fb in measured])):+.3f}\n")
            collector.detach(cluster)

            print("== aggregated telemetry ==")
            merged = cluster.stats()["cluster"]
            for key in (
                "workers", "requests_total", "completed_total", "failed_total",
                "cache_hit_rate", "mean_batch_size",
                "latency_p50_ms", "latency_p99_ms",
            ):
                value = merged[key]
                print(f"  {key:22s} {value:.3f}" if isinstance(value, float)
                      else f"  {key:22s} {value}")


if __name__ == "__main__":
    main()
