"""The standalone ordinal-regression autotuner (paper §V-C).

Given an unseen stencil instance and a set of candidate tuning vectors
(user-supplied, random, or the pre-defined hierarchical power-of-two set),
the tuner encodes the candidates, scores them with the trained RankSVM and
returns them best-first — *without executing any of them*.  Ranking a
candidate set is a single matrix-vector product, which is why Table II
reports "< 1 ms" regression time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.autotune.dataset import TrainingSet
from repro.features.encoder import FeatureEncoder
from repro.learn.model_io import load_model, save_model
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.stencil.instance import StencilInstance
from repro.tuning.presets import preset_candidates
from repro.tuning.vector import TuningVector

__all__ = ["OrdinalAutotuner"]


@dataclass
class OrdinalAutotuner:
    """Train-once, rank-anywhere stencil autotuner."""

    encoder: FeatureEncoder = field(default_factory=FeatureEncoder)
    config: RankSVMConfig = field(default_factory=RankSVMConfig)
    model: RankSVM | None = None
    #: wall-clock of the last train() call (Table II "Training")
    last_train_seconds: float = 0.0
    #: wall-clock of the last rank() call (Table II "Regression")
    last_rank_seconds: float = 0.0

    # -- training ---------------------------------------------------------------

    def train(self, training_set: TrainingSet) -> "OrdinalAutotuner":
        """Fit the ranking model on a generated training set."""
        fingerprint = self.fingerprint()
        if (
            training_set.encoder_fingerprint
            and training_set.encoder_fingerprint != fingerprint
        ):
            raise ValueError(
                f"training set was encoded with {training_set.encoder_fingerprint!r}, "
                f"tuner encoder is {fingerprint!r}"
            )
        model = RankSVM(self.config)
        start = time.perf_counter()
        model.fit(training_set.data)
        self.last_train_seconds = time.perf_counter() - start
        self.model = model
        return self

    def fingerprint(self) -> str:
        """Stable id of the encoder layout (guards model/encoder pairing)."""
        return self.encoder.fingerprint()

    def _require_model(self) -> RankSVM:
        if self.model is None or not self.model.is_fitted:
            raise RuntimeError("autotuner has no trained model; call train() first")
        return self.model

    # -- inference ---------------------------------------------------------------

    def score_candidates(
        self, instance: StencilInstance, candidates: list[TuningVector]
    ) -> np.ndarray:
        """Model scores per candidate (higher = predicted faster)."""
        model = self._require_model()
        X = self.encoder.encode_batch(instance, candidates)
        start = time.perf_counter()
        scores = model.decision_function(X)
        self.last_rank_seconds = time.perf_counter() - start
        return scores

    def rank_candidates(
        self, instance: StencilInstance, candidates: list[TuningVector]
    ) -> list[TuningVector]:
        """Candidates sorted best-first according to the model."""
        scores = self.score_candidates(instance, candidates)
        order = np.argsort(-scores, kind="stable")
        return [candidates[int(i)] for i in order]

    def score_candidate_sets(
        self,
        requests: "Sequence[tuple[StencilInstance, Sequence[TuningVector]]]",
    ) -> list[np.ndarray]:
        """Scores for many ``(instance, candidates)`` sets in one fused pass.

        The whole mixed batch is encoded by
        :meth:`~repro.features.encoder.FeatureEncoder.encode_many` and scored
        with a **single** stacked ``decision_function`` call — this is the
        cross-instance path the tuning service's micro-batching rides on.
        Returns one score vector per request, aligned with its candidates.
        """
        model = self._require_model()
        if not requests:
            return []
        X = self.encoder.encode_many(requests)
        start = time.perf_counter()
        scores = model.decision_function(X)
        self.last_rank_seconds = time.perf_counter() - start
        splits = np.cumsum([len(tunings) for _, tunings in requests])[:-1]
        return [np.asarray(s) for s in np.split(scores, splits)]

    def rank_many(
        self,
        requests: "Sequence[tuple[StencilInstance, Sequence[TuningVector]]]",
    ) -> list[list[TuningVector]]:
        """Best-first orderings for many candidate sets, one fused pass."""
        rankings = []
        for (_, candidates), scores in zip(
            requests, self.score_candidate_sets(requests)
        ):
            order = np.argsort(-scores, kind="stable")
            rankings.append([candidates[int(i)] for i in order])
        return rankings

    def tune(
        self,
        instance: StencilInstance,
        candidates: "list[TuningVector] | None" = None,
        top_k: int = 1,
    ) -> list[TuningVector]:
        """Top-``k`` tuning vectors for an instance.

        With no explicit candidates, the paper's pre-defined hierarchical
        power-of-two set is used (1600 configs for 2-D, 8640 for 3-D).
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if candidates is None:
            candidates = preset_candidates(instance.dims)
        ranked = self.rank_candidates(instance, candidates)
        return ranked[:top_k]

    def best(
        self,
        instance: StencilInstance,
        candidates: "list[TuningVector] | None" = None,
    ) -> TuningVector:
        """The single top-ranked configuration (the one that gets executed)."""
        return self.tune(instance, candidates, top_k=1)[0]

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the trained model (encoder fingerprint embedded)."""
        save_model(self._require_model(), path, encoder_fingerprint=self.fingerprint())

    def load(self, path: str) -> "OrdinalAutotuner":
        """Load a model trained with a matching encoder."""
        self.model = load_model(path, expect_fingerprint=self.fingerprint())
        return self
