"""The compile-time execution workflow (paper §V-C and Fig. 3's right half).

When a new, unseen stencil arrives (as DSL text or a kernel object), the
workflow:

1. extracts its static features,
2. runs the double compilation (PATUS source-to-source + backend compile,
   accounted),
3. asks the trained model to rank the candidate tuning settings —
   no execution of any variant,
4. returns the binary configured with the top-ranked setting, ready to run
   on the (simulated) machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.autotune.autotuner import OrdinalAutotuner
from repro.codegen.compiler import CompiledVariant, PatusCompiler
from repro.codegen.dsl import parse_dsl
from repro.machine.executor import Measurement, SimulatedMachine
from repro.stencil.execution import StencilExecution
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.tuning.vector import TuningVector

__all__ = ["TunedBinary", "CompilationWorkflow"]


@dataclass(frozen=True)
class TunedBinary:
    """Result of the workflow: a compiled variant plus its provenance."""

    variant: CompiledVariant
    instance: StencilInstance
    tuning: TuningVector
    rank_seconds: float
    compile_seconds: float

    def execution(self) -> StencilExecution:
        """The execution this binary performs."""
        return StencilExecution(self.instance, self.tuning)


class CompilationWorkflow:
    """DSL/kernel in → tuned binary out."""

    def __init__(
        self,
        autotuner: OrdinalAutotuner,
        machine: SimulatedMachine,
        compiler: "PatusCompiler | None" = None,
    ) -> None:
        self.autotuner = autotuner
        self.machine = machine
        self.compiler = compiler or PatusCompiler()

    def tune_kernel(
        self,
        kernel: StencilKernel,
        size: tuple[int, int, int],
        candidates: "list[TuningVector] | None" = None,
    ) -> TunedBinary:
        """Run the full §V-C flow for a kernel object."""
        instance = StencilInstance(kernel, size)
        best = self.autotuner.best(instance, candidates)
        variant = self.compiler.compile(kernel, instance.size, best)
        return TunedBinary(
            variant=variant,
            instance=instance,
            tuning=best,
            rank_seconds=self.autotuner.last_rank_seconds,
            compile_seconds=variant.compile_seconds,
        )

    def tune_dsl(
        self,
        text: str,
        size: tuple[int, int, int],
        candidates: "list[TuningVector] | None" = None,
    ) -> TunedBinary:
        """Run the full §V-C flow for DSL source text."""
        kernel, _weights = parse_dsl(text)
        return self.tune_kernel(kernel, size, candidates)

    def tune_kernels(
        self,
        specs: "Sequence[tuple[StencilKernel, tuple[int, int, int]]]",
        candidates: "Sequence[list[TuningVector] | None] | None" = None,
    ) -> list[TunedBinary]:
        """Run the §V-C flow for many kernels with one fused ranking pass.

        All candidate sets are encoded and scored together via
        :meth:`OrdinalAutotuner.rank_many` (the same cross-instance path the
        tuning service batches on), then each top pick is compiled.  The
        chosen tunings and compiled variants match per-kernel
        :meth:`tune_kernel` calls exactly; each binary's ``rank_seconds``
        is its amortized share of the single fused scoring pass.
        ``candidates`` may supply one explicit set per spec (``None``
        entries fall back to the presets).
        """
        from repro.tuning.presets import preset_candidates

        if candidates is None:
            candidates = [None] * len(specs)
        if len(candidates) != len(specs):
            raise ValueError(
                f"got {len(candidates)} candidate sets for {len(specs)} specs"
            )
        instances = [StencilInstance(kernel, size) for kernel, size in specs]
        requests = [
            (q, preset_candidates(q.dims) if cands is None else cands)
            for q, cands in zip(instances, candidates)
        ]
        rankings = self.autotuner.rank_many(requests)
        rank_share = self.autotuner.last_rank_seconds / max(len(specs), 1)
        binaries = []
        for (kernel, _size), instance, ranked in zip(specs, instances, rankings):
            best = ranked[0]
            variant = self.compiler.compile(kernel, instance.size, best)
            binaries.append(
                TunedBinary(
                    variant=variant,
                    instance=instance,
                    tuning=best,
                    rank_seconds=rank_share,
                    compile_seconds=variant.compile_seconds,
                )
            )
        return binaries

    def run(self, binary: TunedBinary, repeats: int = 3) -> Measurement:
        """Execute the tuned binary on the simulated machine."""
        return self.machine.measure(binary.execution(), repeats=repeats)
