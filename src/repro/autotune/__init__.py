"""End-to-end autotuning framework (paper §V).

Ties the substrates together:

* :mod:`repro.autotune.training` — the Fig. 3 training pipeline: generate
  the 60 synthetic stencil codes (4 shape families × dimensionalities ×
  radii × dtypes × buffer counts), instantiate them at the paper's input
  sizes (~200 instances), measure randomly drawn tuning vectors on the
  simulated machine (twice as many for 3-D kernels), and assemble the
  grouped ranking dataset;
* :mod:`repro.autotune.dataset` — the persisted training-set artifact with
  wall-clock accounting for Table II;
* :mod:`repro.autotune.autotuner` — :class:`OrdinalAutotuner`, the
  standalone tuner: rank a candidate set for an unseen stencil in
  milliseconds and return the top configuration (§V-C);
* :mod:`repro.autotune.workflow` — the compile-time workflow: DSL in,
  tuned compiled variant out, with double-compilation accounting.
"""

from repro.autotune.training import (
    TrainingSetBuilder,
    generate_training_kernels,
    training_instances,
)
from repro.autotune.dataset import TrainingSet
from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.workflow import CompilationWorkflow, TunedBinary

__all__ = [
    "CompilationWorkflow",
    "OrdinalAutotuner",
    "TrainingSet",
    "TrainingSetBuilder",
    "TunedBinary",
    "generate_training_kernels",
    "training_instances",
]
