"""The training-set artifact.

Bundles the grouped ranking data with everything Table II accounts for:
the simulated wall-clock spent executing training points ("TS Generation")
and the accounted double-compilation time of the training codes
("TS Comp.").  Serializable to ``.npz`` so the expensive phase runs once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ranking.partial import RankingGroups

__all__ = ["TrainingSet"]


@dataclass
class TrainingSet:
    """Grouped ranking data plus provenance and cost accounting."""

    data: RankingGroups
    #: group id → human-readable instance label
    group_labels: dict[int, str] = field(default_factory=dict)
    #: simulated machine seconds spent measuring the points
    generation_wall_s: float = 0.0
    #: accounted PATUS+gcc seconds for compiling the training codes
    compile_wall_s: float = 0.0
    #: encoder fingerprint the features were produced with
    encoder_fingerprint: str = ""

    def __len__(self) -> int:
        return len(self.data)

    @property
    def num_instances(self) -> int:
        """Distinct stencil instances (ranking groups)."""
        return self.data.num_groups

    def summary(self) -> str:
        """One-line description for logs and experiment output."""
        return (
            f"TrainingSet({len(self)} points, {self.num_instances} instances, "
            f"gen={self.generation_wall_s:.0f}s sim, "
            f"comp={self.compile_wall_s / 3600.0:.1f}h acct)"
        )

    # -- persistence -----------------------------------------------------------

    def save(self, path: "str | Path") -> Path:
        """Write the training set to an ``.npz`` archive."""
        path = Path(path)
        np.savez_compressed(
            path,
            X=self.data.X,
            times=self.data.times,
            groups=np.asarray(self.data.groups, dtype=np.int64),
            meta=np.array(
                json.dumps(
                    {
                        "group_labels": {str(k): v for k, v in self.group_labels.items()},
                        "generation_wall_s": self.generation_wall_s,
                        "compile_wall_s": self.compile_wall_s,
                        "encoder_fingerprint": self.encoder_fingerprint,
                    }
                )
            ),
        )
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "TrainingSet":
        """Inverse of :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as archive:
            data = RankingGroups(
                archive["X"], archive["times"], archive["groups"]
            )
            meta = json.loads(str(archive["meta"]))
        return cls(
            data=data,
            group_labels={int(k): v for k, v in meta["group_labels"].items()},
            generation_wall_s=float(meta["generation_wall_s"]),
            compile_wall_s=float(meta["compile_wall_s"]),
            encoder_fingerprint=meta.get("encoder_fingerprint", ""),
        )

    def subset_points(self, n: int, rng_seed: int = 0) -> "TrainingSet":
        """A smaller training set with ~n points, subsampled *per group*.

        Keeps every instance represented (≥ 2 points per group where
        possible), matching how the paper varies training-set size while
        always covering all 200 instances.
        """
        if n >= len(self):
            return self
        frac = n / len(self)
        rng = np.random.default_rng(rng_seed)
        keep: list[np.ndarray] = []
        for _, rows in self.data.iter_groups():
            k = max(2, int(round(frac * rows.size)))
            k = min(k, rows.size)
            keep.append(rng.choice(rows, size=k, replace=False))
        rows = np.sort(np.concatenate(keep))
        return TrainingSet(
            data=self.data.subset(rows),
            group_labels=self.group_labels,
            generation_wall_s=self.generation_wall_s * rows.size / len(self),
            compile_wall_s=self.compile_wall_s,
            encoder_fingerprint=self.encoder_fingerprint,
        )
