"""Training-set generation: the Fig. 3 pipeline.

The paper generates **60 synthetic stencil codes** from the four Fig. 1
shape families with varying offsets, buffer counts and scalar types, both
2-D and 3-D; instantiates them at sizes 64³/128³/256³ (3-D) and
256²/512²/1024²/2048² (2-D) for **~200 instances**; and executes each
instance with randomly drawn tuning vectors — *twice as many for 3-D
kernels*, whose space is larger.  Runtimes and ranks are collected into the
training set.

This module reproduces that corpus deterministically.  The exact 60-code
enumeration (below) is our reconstruction — the paper does not list its
codes — but spans the same axes: 4 shapes × {2-D, 3-D} × radii {1, 2, 3} ×
{float, double} = 48 single-buffer codes, plus 12 two-buffer variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.autotune.dataset import TrainingSet
from repro.codegen.compiler import PatusCompiler
from repro.features.encoder import FeatureEncoder
from repro.machine.executor import SimulatedMachine
from repro.ranking.partial import RankingGroups
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import TRAINING_SHAPES
from repro.tuning.space import patus_space
from repro.util.rng import as_generator, spawn

__all__ = [
    "generate_training_kernels",
    "training_instances",
    "TrainingSetBuilder",
    "distill_points",
    "merge_corpus",
    "reweight_groups",
    "stack_groups",
]

#: 3-D training input sizes (paper §V-B)
SIZES_3D = ((64, 64, 64), (128, 128, 128), (256, 256, 256))
#: 2-D training input sizes (paper §V-B)
SIZES_2D = ((256, 256, 1), (512, 512, 1), (1024, 1024, 1), (2048, 2048, 1))


def generate_training_kernels() -> list[StencilKernel]:
    """The 60 synthetic training codes (deterministic enumeration).

    >>> len(generate_training_kernels())
    60
    """
    kernels: list[StencilKernel] = []
    # 48 single-buffer codes: shape × dims × radius × dtype
    for shape_name, shape_fn in TRAINING_SHAPES.items():
        for dims in (2, 3):
            for radius in (1, 2, 3):
                for dtype in ("float", "double"):
                    pattern = shape_fn(dims, radius)
                    kernels.append(
                        StencilKernel(
                            f"train-{shape_name}-{dims}d-r{radius}-{dtype}",
                            (pattern,),
                            dtype=dtype,
                            space_dims=dims,
                        )
                    )
    # 12 two-buffer variants (multi-buffer coverage, as the paper's corpus has)
    two_buffer_specs = [
        ("hypercube", 2, 1, "float"),
        ("hypercube", 2, 2, "float"),
        ("hypercube", 3, 1, "float"),
        ("hypercube", 3, 2, "float"),
        ("laplacian", 2, 1, "double"),
        ("laplacian", 2, 2, "double"),
        ("laplacian", 3, 1, "double"),
        ("laplacian", 3, 2, "double"),
        ("line", 2, 2, "float"),
        ("line", 3, 2, "float"),
        ("hyperplane", 2, 1, "double"),
        ("hyperplane", 3, 1, "double"),
    ]
    for shape_name, dims, radius, dtype in two_buffer_specs:
        pattern = TRAINING_SHAPES[shape_name](dims, radius)
        kernels.append(
            StencilKernel(
                f"train-{shape_name}-{dims}d-r{radius}-{dtype}-2buf",
                (pattern, pattern),
                dtype=dtype,
                space_dims=dims,
            )
        )
    assert len(kernels) == 60
    return kernels


def training_instances(
    kernels: "list[StencilKernel] | None" = None,
) -> list[StencilInstance]:
    """All kernel × size instances (~200; exactly 210 for the default corpus).

    >>> len(training_instances())
    210
    """
    if kernels is None:
        kernels = generate_training_kernels()
    instances: list[StencilInstance] = []
    for kernel in kernels:
        sizes = SIZES_3D if kernel.dims == 3 else SIZES_2D
        for size in sizes:
            instances.append(StencilInstance(kernel, size))
    return instances


@dataclass
class TrainingSetBuilder:
    """Executes the Fig. 3 pipeline on a simulated machine.

    ``build(total_points)`` distributes the point budget over all training
    instances with 2:1 weight for 3-D kernels (they get twice as many
    random tuning vectors, per the paper), measures every execution, and
    returns the encoded :class:`TrainingSet` including Table II accounting.
    """

    machine: SimulatedMachine
    encoder: FeatureEncoder = field(default_factory=FeatureEncoder)
    seed: int = 0
    #: timed runs per training execution
    repeats: int = 1

    def point_allocation(
        self, instances: list[StencilInstance], total_points: int
    ) -> list[int]:
        """Per-instance point counts (2:1 for 3-D, each ≥ 2, exact total).

        Largest-remainder apportionment: start from the floored proportional
        shares (clipped to the ≥2 floor) and hand out the leftover points to
        the largest fractional remainders, so ``sum(counts)`` equals
        ``total_points`` exactly instead of drifting by rounding.  If the
        ≥2 floor overshoots the budget, points are taken back from the
        smallest remainders that sit above the floor.
        """
        if total_points < 2 * len(instances):
            raise ValueError(
                f"need at least {2 * len(instances)} points for "
                f"{len(instances)} instances, got {total_points}"
            )
        weights = np.array([2.0 if q.dims == 3 else 1.0 for q in instances])
        raw = total_points * weights / weights.sum()
        counts = np.maximum(np.floor(raw).astype(int), 2)
        # remainder relative to what was actually assigned: instances lifted
        # to the floor already hold more than their share and sort last
        remainder = raw - counts
        deficit = total_points - int(counts.sum())
        if deficit > 0:
            order = np.argsort(-remainder, kind="stable")
            for step in range(deficit):
                counts[order[step % len(counts)]] += 1
        elif deficit < 0:
            order = np.argsort(remainder, kind="stable")
            step = 0
            while deficit < 0:
                j = order[step % len(counts)]
                if counts[j] > 2:
                    counts[j] -= 1
                    deficit += 1
                step += 1
        return counts.tolist()

    def build(
        self,
        total_points: int,
        kernels: "list[StencilKernel] | None" = None,
    ) -> TrainingSet:
        """Generate, execute and encode a training set of ~``total_points``."""
        kernels = generate_training_kernels() if kernels is None else kernels
        instances = training_instances(kernels)
        counts = self.point_allocation(instances, total_points)

        compiler = PatusCompiler()
        compile_s = compiler.training_set_compile_seconds(kernels)

        wall_before = self.machine.simulated_wall_s
        requests: list[tuple[StencilInstance, list]] = []
        times_blocks: list[np.ndarray] = []
        group_blocks: list[np.ndarray] = []
        labels: dict[int, str] = {}
        for gid, (instance, count) in enumerate(zip(instances, counts)):
            rng = spawn(self.seed, "training-tunings", instance.label())
            space = patus_space(instance.dims)
            tunings = space.random_vectors(count, rng=rng)
            # one vectorized measurement pass per instance (cost model,
            # noise and budget accounting identical to scalar measure())
            measured = self.machine.measure_batch(
                instance, tunings, repeats=self.repeats
            ).medians
            requests.append((instance, tunings))
            times_blocks.append(measured)
            group_blocks.append(np.full(count, gid, dtype=np.int64))
            labels[gid] = instance.label()

        # one fused cross-instance encode of the whole corpus
        data = RankingGroups(
            self.encoder.encode_many(requests),
            np.concatenate(times_blocks),
            np.concatenate(group_blocks),
        )
        return TrainingSet(
            data=data,
            group_labels=labels,
            generation_wall_s=self.machine.simulated_wall_s - wall_before,
            compile_wall_s=compile_s,
            encoder_fingerprint=self.fingerprint(),
        )

    def fingerprint(self) -> str:
        """Stable id of the encoder layout (guards model/encoder pairing)."""
        return self.encoder.fingerprint()


# -- continual-learning corpus assembly ---------------------------------------


def reweight_groups(
    groups: RankingGroups,
    weights: "dict[object, float]",
    min_points: int = 2,
    rng: "np.random.Generator | int | None" = 0,
) -> RankingGroups:
    """Down-weight ranking groups by subsampling their points.

    The RankSVM objective has no per-pair sample weights, but a group
    contributing fewer points contributes quadratically fewer preference
    pairs — so point subsampling *is* the weighting mechanism available to
    a pairwise ranker.  Each group keeps ``round(weight · n)`` of its
    points (clipped to ``[min_points, n]``); groups missing from
    ``weights`` keep weight 1.0, a weight of 0 drops the group entirely.

    Used by the continual trainer for recency weighting: old feedback
    windows decay geometrically instead of accumulating forever.
    """
    gen = as_generator(rng)
    keep: list[np.ndarray] = []
    for gid, rows in groups.iter_groups():
        weight = float(weights.get(gid, 1.0))
        if weight >= 1.0:
            keep.append(rows)
            continue
        if weight <= 0.0:
            continue
        k = min(rows.size, max(min_points, int(round(weight * rows.size))))
        keep.append(np.sort(gen.choice(rows, size=k, replace=False)))
    if not keep:
        return RankingGroups(
            groups.X[:0], groups.times[:0], np.asarray(groups.groups)[:0]
        )
    rows = np.sort(np.concatenate(keep))
    return groups.subset(rows)


def stack_groups(base: RankingGroups, extra: RankingGroups) -> RankingGroups:
    """Concatenate two grouped datasets without ever aliasing their groups.

    ``extra``'s group ids are remapped past ``base``'s maximum id, so two
    sources that happen to share ids (an offline corpus and feedback
    records, a distilled archive and a live window) can never merge into
    one ranking group — runtimes are only comparable within one instance
    *as measured by one source*.
    """
    if len(extra) == 0:
        return base
    if len(base) == 0:
        return extra
    if base.X.shape[1] != extra.X.shape[1]:
        raise ValueError(
            f"feature dimension mismatch: base has {base.X.shape[1]} features, "
            f"extra has {extra.X.shape[1]} (encoder layouts differ?)"
        )
    offset = int(np.max(base.groups)) + 1
    extra_ids = np.unique(extra.groups)
    remap = {gid: offset + i for i, gid in enumerate(extra_ids.tolist())}
    extra_groups = np.array([remap[g] for g in extra.groups.tolist()], dtype=np.int64)
    return RankingGroups(
        np.vstack([base.X, extra.X]),
        np.concatenate([base.times, extra.times]),
        np.concatenate([np.asarray(base.groups, dtype=np.int64), extra_groups]),
    )


def merge_corpus(
    offline: TrainingSet,
    feedback: RankingGroups,
    offline_points: "int | None" = None,
    seed: int = 0,
) -> RankingGroups:
    """Merge the offline corpus with collected serving feedback.

    The offline training set anchors the model on the synthetic families it
    has always known; the feedback groups carry what production traffic
    actually looks like.  ``offline_points`` optionally subsamples the
    offline corpus (per group, every instance stays represented) so fresh
    feedback is not drowned out by a much larger static corpus.  Feedback
    group ids are shifted past the offline ids (:func:`stack_groups`), so
    the two sources can never alias into one ranking group (runtimes are
    only comparable within one instance).
    """
    base = (
        offline if offline_points is None else offline.subset_points(offline_points, seed)
    ).data
    return stack_groups(base, feedback)


def distill_points(times: "np.ndarray | Sequence[float]", max_points: int) -> np.ndarray:
    """Representative row indices spanning a group's measured runtime range.

    Sorts by runtime and keeps ``max_points`` evenly spaced positions of
    the sorted order — always including the fastest and the slowest.  For
    a pairwise ranker that spread carries the most ordering signal per
    point kept: the extremes anchor the large-margin pairs, the evenly
    spaced middle keeps the transitive chain intact, and near-tied
    neighbours (whose pairs constrain almost nothing) are what gets
    dropped.  Deterministic — no RNG — so a distilled archive is
    reproducible from its absorb sequence alone.

    Returned indices are ascending positions into the *original* array.

    >>> distill_points([1.0, 2.0, 9.0, 3.0, 5.0], 3).tolist()
    [0, 2, 3]
    >>> distill_points([2.0, 1.0], 8).tolist()
    [0, 1]
    """
    if max_points < 2:
        raise ValueError(f"max_points must be >= 2, got {max_points}")
    t = np.asarray(times, dtype=float)
    order = np.argsort(t, kind="stable")
    if t.size <= max_points:
        return np.sort(order)
    picks = np.unique(np.round(np.linspace(0, t.size - 1, max_points)).astype(int))
    return np.sort(order[picks])
