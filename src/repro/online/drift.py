"""Drift detection: when does the serving model need retraining?

Two complementary signals, both cheap and both computed from the measured
feedback stream:

* **Ranking-quality drift** — the rolling Kendall τ of served rankings
  against measured truth, tracked **per stencil family**.  A global mean
  hides a new family arriving badly ranked behind a majority of well-known
  traffic; per-family windows catch exactly the "unseen shape shows up"
  failure mode the transfer-learning literature warns about.
* **Feature-distribution shift** — the mean absolute z-score of the served
  instances' scalar features (dimensionality, sizes, radius, points, …)
  against the *training fingerprint*: the per-feature mean/std of the
  corpus the serving model was fitted on.  This fires even while ranking
  quality still looks fine — a leading indicator that traffic left the
  training distribution.

:class:`DriftMonitor` keeps a bounded observation window, so a long-lived
service judges *recent* traffic; :meth:`DriftMonitor.report` condenses the
window into a :class:`DriftReport` with the triggered reasons spelled out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.autotune.dataset import TrainingSet
from repro.features.encoder import FeatureEncoder
from repro.online.feedback import MeasuredFeedback
from repro.ranking.partial import RankingGroups

__all__ = ["DriftMonitor", "DriftReport", "instance_feature_slice"]


def instance_feature_slice(encoder: FeatureEncoder) -> slice:
    """Columns of the encoded matrix holding the 9 instance scalars.

    Derived from the encoder's published layout (pattern block, instance
    scalars, tuning block, interactions), so it stays correct for encoders
    with the pattern or interaction blocks disabled.
    """
    start = encoder.num_features - encoder.N_INSTANCE - encoder.N_TUNING
    if encoder.interactions:
        start -= encoder.N_TUNING * encoder.N_DESCRIPTOR
    return slice(start, start + encoder.N_INSTANCE)


@dataclass(frozen=True)
class DriftReport:
    """One drift assessment over the monitor's current window."""

    drifted: bool
    #: human-readable trigger descriptions (empty when not drifted)
    reasons: tuple[str, ...]
    #: rolling mean τ per stencil family (families with ≥ 1 observation)
    family_tau: dict[str, float]
    #: rolling mean τ over the whole window (0.0 when empty)
    overall_tau: float
    #: mean |z| of window instance features vs the training fingerprint
    feature_shift: float
    n_observations: int


@dataclass
class DriftMonitor:
    """Rolling ranking-quality and feature-shift watcher.

    ``tau_threshold`` — a family whose rolling mean τ (over ≥
    ``min_family_samples`` observations) falls below this triggers drift.
    ``shift_threshold`` — mean |z| of instance features vs the training
    fingerprint above this triggers drift.  ``window`` bounds how much
    history ever matters.
    """

    encoder: FeatureEncoder = field(default_factory=FeatureEncoder)
    window: int = 64
    tau_threshold: float = 0.55
    shift_threshold: float = 2.0
    min_family_samples: int = 4
    _observations: "deque[tuple[str, float, np.ndarray]]" = field(
        init=False, repr=False
    )
    _ref_mean: "np.ndarray | None" = field(init=False, default=None, repr=False)
    _ref_std: "np.ndarray | None" = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        self._observations = deque(maxlen=self.window)

    # -- training fingerprint --------------------------------------------------

    def fit_reference(self, corpus: "TrainingSet | RankingGroups") -> "DriftMonitor":
        """Record a training corpus's instance-feature fingerprint.

        The fingerprint is the per-feature mean/std of the instance-scalar
        columns of the (already encoded) corpus — rows are weighted by
        measured points per instance, exactly as the model's constraints
        were.  Accepts the offline :class:`TrainingSet` (initial fit) or a
        merged :class:`~repro.ranking.partial.RankingGroups` corpus — after
        a promotion the reference must be *refit* to what the new model was
        actually trained on, otherwise a permanent traffic shift keeps the
        shift signal latched and triggers retraining forever.
        """
        if isinstance(corpus, TrainingSet):
            if (
                corpus.encoder_fingerprint
                and corpus.encoder_fingerprint != self.encoder.fingerprint()
            ):
                raise ValueError(
                    f"training set was encoded with "
                    f"{corpus.encoder_fingerprint!r}, monitor encoder is "
                    f"{self.encoder.fingerprint()!r}"
                )
            X = corpus.data.X
        else:
            X = corpus.X
        cols = X[:, instance_feature_slice(self.encoder)]
        self._ref_mean = cols.mean(axis=0)
        self._ref_std = cols.std(axis=0)
        return self

    @property
    def reference(self) -> "tuple[np.ndarray, np.ndarray] | None":
        """The current fingerprint as an opaque ``(mean, std)`` snapshot.

        Save it before refitting for a promotion; assigning it back
        restores the fingerprint when the promotion is rolled back (the
        restored model's training distribution is the old one).
        """
        if self._ref_mean is None:
            return None
        return self._ref_mean, self._ref_std

    @reference.setter
    def reference(self, ref: "tuple[np.ndarray, np.ndarray] | None") -> None:
        if ref is None:
            self._ref_mean = self._ref_std = None
        else:
            self._ref_mean, self._ref_std = ref

    # -- observation -----------------------------------------------------------

    def observe(self, feedback: MeasuredFeedback) -> None:
        """Fold one measured record into the rolling window."""
        features = self.encoder.instance_features(feedback.instance)
        self._observations.append((feedback.family, feedback.tau, features))

    def reset(self) -> None:
        """Clear the window (e.g. after promoting a new model, so stale
        observations of the previous model don't re-trigger drift)."""
        self._observations.clear()

    @property
    def n_observations(self) -> int:
        return len(self._observations)

    # -- signals ---------------------------------------------------------------

    def family_tau(self) -> dict[str, float]:
        """Rolling mean τ per family over the window."""
        sums: dict[str, list[float]] = {}
        for family, tau, _ in self._observations:
            sums.setdefault(family, []).append(tau)
        return {family: float(np.mean(taus)) for family, taus in sums.items()}

    def overall_tau(self) -> float:
        """Rolling mean τ over the whole window (0.0 when empty)."""
        if not self._observations:
            return 0.0
        return float(np.mean([tau for _, tau, _ in self._observations]))

    def feature_shift(self) -> float:
        """Mean |z| of the window's instance features vs the fingerprint.

        0.0 until both a fingerprint and at least one observation exist.
        """
        if self._ref_mean is None or not self._observations:
            return 0.0
        feats = np.stack([f for _, _, f in self._observations])
        # instance scalars live in [0, 1]; flooring the scale keeps a
        # zero-variance reference column (e.g. a 3-D-only corpus's dims
        # flag) from turning one out-of-support request into an astronomic
        # z that latches drift — deviation on a constant feature still
        # registers strongly (0.5 off → z = 10), just finitely
        scale = np.maximum(self._ref_std, 0.05)
        z = np.abs(feats.mean(axis=0) - self._ref_mean) / scale
        return float(z.mean())

    def report(self) -> DriftReport:
        """Assess the current window against both thresholds."""
        family_tau = self.family_tau()
        counts: dict[str, int] = {}
        for family, _, _ in self._observations:
            counts[family] = counts.get(family, 0) + 1
        reasons: list[str] = []
        for family, tau in sorted(family_tau.items()):
            if counts[family] >= self.min_family_samples and tau < self.tau_threshold:
                reasons.append(
                    f"family {family!r}: rolling tau {tau:.3f} < "
                    f"{self.tau_threshold} over {counts[family]} records"
                )
        shift = self.feature_shift()
        if shift > self.shift_threshold:
            reasons.append(
                f"instance feature shift {shift:.2f} > {self.shift_threshold} "
                f"vs training fingerprint"
            )
        return DriftReport(
            drifted=bool(reasons),
            reasons=tuple(reasons),
            family_tau=family_tau,
            overall_tau=self.overall_tau(),
            feature_shift=shift,
            n_observations=len(self._observations),
        )
