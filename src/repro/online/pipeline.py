"""The continual-learning loop: serve → collect → detect → retrain →
shadow-evaluate → promote (→ roll back).

:class:`ContinualLearningPipeline` wires the pieces of :mod:`repro.online`
around a running :class:`~repro.service.TuningService`:

* the :class:`~repro.online.feedback.FeedbackCollector` hooks the
  service's responses and measures ground truth under a budget;
* each :meth:`step` folds new measurements into the
  :class:`~repro.online.drift.DriftMonitor`;
* when the monitor reports drift (and enough feedback exists, and the
  cooldown has passed), the :class:`~repro.online.trainer.IncrementalTrainer`
  fits a candidate (warm-started from production), the
  :class:`~repro.online.shadow.ShadowEvaluator` grades it on an interleaved
  *held-out* split, and the :class:`~repro.online.promotion.PromotionPolicy`
  decides; a promotion is one atomic registry tag move that the serving
  layer hot-swaps onto at its next batch;
* after every promotion the pipeline watches the promoted version's live
  τ; if it falls materially below the displaced model's shadow τ, the
  promotion is rolled back in one call.

``step()`` is deliberately a *pull*: the embedding application decides when
background work may run (between request waves, on a timer, in a worker).
Nothing in the pipeline blocks the serving loop.

The serving front-end may be a single in-process
:class:`~repro.service.TuningService` (with a
:class:`~repro.online.feedback.FeedbackCollector`) **or** a multi-process
:class:`~repro.service.cluster.ServiceCluster` (with a
:class:`~repro.online.feedback.ClusterFeedbackCollector` riding the wire
feedback stream) — the loop is identical either way: one collector, one
budget, one drift monitor, and promotion propagates to every worker
through the shared registry's atomic tag move with no extra wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.audit import AuditJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import QualityWatch
from repro.obs.trace import Tracer
from repro.online.drift import DriftMonitor, DriftReport
from repro.online.feedback import FeedbackCollector, MeasuredFeedback
from repro.online.promotion import PromotionDecision, PromotionPolicy
from repro.online.shadow import ShadowEvaluator
from repro.online.trainer import IncrementalTrainer
from repro.service.registry import LATEST
from repro.service.server import TuningService

if TYPE_CHECKING:  # annotation-only: keep the cluster stack a lazy import
    from repro.service.cluster import ServiceCluster

__all__ = ["ContinualConfig", "ContinualLearningPipeline"]


@dataclass(frozen=True)
class ContinualConfig:
    """Knobs of the background loop (all counts are in records/steps)."""

    #: ground-truth probes measured per step() call
    measure_per_step: int = 8
    #: minimum measured records before a retrain is considered
    min_feedback_to_train: int = 12
    #: every ``holdout_stride``-th record (newest first) is held out of
    #: training and reserved for shadow evaluation
    holdout_stride: int = 3
    #: steps that must pass between retrain attempts
    retrain_cooldown_steps: int = 2
    #: post-promotion live τ this far below the displaced model's shadow τ
    #: triggers rollback
    rollback_margin: float = 0.15
    #: live records of the promoted version needed before judging it
    rollback_min_records: int = 6
    #: registry retention after each promotion (None = never gc)
    gc_keep_last: "int | None" = 8

    def __post_init__(self) -> None:
        if self.holdout_stride < 2:
            raise ValueError(
                f"holdout_stride must be >= 2 (some records must train), "
                f"got {self.holdout_stride}"
            )


class ContinualLearningPipeline:
    """Orchestrates the closed loop from serving back into training."""

    def __init__(
        self,
        service: "TuningService | ServiceCluster",
        collector: FeedbackCollector,
        monitor: DriftMonitor,
        trainer: IncrementalTrainer,
        evaluator: ShadowEvaluator,
        policy: PromotionPolicy,
        config: ContinualConfig = ContinualConfig(),
        *,
        metrics: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
        quality: "QualityWatch | None" = None,
        audit: "AuditJournal | None" = None,
    ) -> None:
        self.service = service
        self.collector = collector
        self.monitor = monitor
        self.trainer = trainer
        self.evaluator = evaluator
        self.policy = policy
        self.config = config
        #: optional observability: a metrics registry mirrors the loop's
        #: event log as scrapeable counters/gauges, a tracer records
        #: retrain/promotion/rollback as zero-width process events, a
        #: QualityWatch streams every measured record into rolling τ
        #: gauges (and is told about promotions so it can compare shadow
        #: vs realized τ), and an AuditJournal receives the lifecycle
        #: events — all None by default (the loop pays only ``None`` checks)
        self.metrics = metrics
        self.tracer = tracer
        self.quality = quality
        self.audit = audit
        #: chronological log of retrain/promotion/rejection/rollback events
        self.events: list[dict] = []
        #: retrain attempts that raised (isolated; serving never sees them)
        self.retrain_errors = 0
        self.last_retrain_error: "Exception | None" = None
        self._steps_since_retrain = config.retrain_cooldown_steps + 1
        #: post-promotion watch: {"version", "baseline", "taus"}
        self._watch: "dict | None" = None

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> "ContinualLearningPipeline":
        """Hook the collector into the serving front-end's response stream.

        Works for both front-ends — a :class:`FeedbackCollector` hooks a
        :class:`~repro.service.TuningService` in-process, a
        :class:`~repro.online.feedback.ClusterFeedbackCollector` listens
        on a :class:`~repro.service.cluster.ServiceCluster`'s wire
        feedback stream.  If the trainer carries a
        :class:`~repro.online.trainer.FeedbackArchive` and the collector
        has no aging hook yet, records aging out of the measured window
        are wired to distill into it.
        """
        self.collector.attach(self.service)
        if (
            self.trainer.archive is not None
            and self.collector.on_age_out is None
        ):
            self.collector.on_age_out = self.trainer.archive.absorb
        return self

    def detach(self) -> None:
        """Unhook from the service (pending feedback is kept)."""
        self.collector.detach(self.service)

    # -- event accounting ------------------------------------------------------

    def _count(self, kind: str) -> int:
        return sum(1 for e in self.events if e["type"] == kind)

    @property
    def retrain_count(self) -> int:
        return self._count("retrain")

    @property
    def promotion_count(self) -> int:
        return sum(1 for e in self.events if e["type"] == "retrain" and e["promoted"])

    @property
    def rollback_count(self) -> int:
        return self._count("rollback")

    # -- the loop --------------------------------------------------------------

    def step(self) -> DriftReport:
        """One background iteration: measure, monitor, maybe retrain.

        Returns the drift report the retrain decision was based on.
        """
        new = self.collector.measure_pending(limit=self.config.measure_per_step)
        # measurement lags serving: records of an already displaced model
        # may arrive after a promotion, and their (old-model) τ must not
        # be judged against the new one — observe only the current version
        current = self.policy.current_version()
        for fb in new:
            if current is None or fb.model_version == current:
                self.monitor.observe(fb)
            if self.quality is not None:
                # the quality watch sees *every* record (it separates
                # versions itself — stale-model τ still describes what
                # users experienced while that model served)
                self.quality.observe(fb)
        self._maybe_rollback(new)
        report = self.monitor.report()
        self._steps_since_retrain += 1
        if (
            report.drifted
            and self._watch is None  # let a fresh promotion prove itself first
            and self._steps_since_retrain > self.config.retrain_cooldown_steps
            and len(self.collector.measured) >= self.config.min_feedback_to_train
        ):
            # a failing retrain (bad archive, unloadable production model,
            # a solver blow-up) is a *background* failure: it must never
            # propagate into the caller's serving loop.  Count it, log it,
            # and burn the cooldown so a persistently broken retrain does
            # not spin every step.
            try:
                self._retrain(report)
            except Exception as exc:
                self.retrain_errors += 1
                self.last_retrain_error = exc
                self.events.append(
                    {
                        "type": "retrain-error",
                        "reasons": list(report.reasons),
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                self._observe("retrain-error", {"error": type(exc).__name__})
            self._steps_since_retrain = 0
        if self.metrics is not None:
            m = self.metrics
            m.counter("pipeline_steps_total").inc()
            m.counter("pipeline_measured_total").inc(len(new))
            m.gauge("drift_family_tau").set(report.family_tau)
            m.gauge("drift_overall_tau").set(report.overall_tau)
            m.gauge("drift_feature_shift").set(report.feature_shift)
            m.gauge("drift_observations").set(report.n_observations)
        return report

    def _observe(self, kind: str, attrs: "dict | None" = None) -> None:
        """Mirror one loop event into the optional metrics/tracer/audit hooks."""
        if self.metrics is not None:
            self.metrics.counter(
                f"pipeline_{kind.replace('-', '_')}_total"
            ).inc()
        if self.tracer is not None:
            self.tracer.record_event(f"pipeline-{kind}", attrs=attrs)
        if self.audit is not None:
            self.audit.record(kind if kind != "promotion" else "promote", attrs)

    # -- retraining ------------------------------------------------------------

    def _split_holdout(
        self, feedback: "list[MeasuredFeedback]"
    ) -> "tuple[list[MeasuredFeedback], list[MeasuredFeedback]]":
        """Interleaved train/holdout split, newest record always held out.

        Counting strides from the *end* keeps the shadow window weighted
        toward current traffic regardless of how much history exists, and
        interleaving keeps both splits on the same distribution.
        """
        train: list[MeasuredFeedback] = []
        hold: list[MeasuredFeedback] = []
        for age, fb in enumerate(reversed(feedback)):
            (hold if age % self.config.holdout_stride == 0 else train).append(fb)
        train.reverse()
        hold.reverse()
        return train, hold

    def _production_model(self):
        fingerprint = self.trainer.encoder.fingerprint()
        try:
            return self.policy.registry.load(
                self.policy.tag, expect_fingerprint=fingerprint
            )
        except KeyError:  # tag not created yet: fall back to newest
            return self.policy.registry.load(LATEST, expect_fingerprint=fingerprint)

    def _retrain(self, report: DriftReport) -> PromotionDecision:
        production = self._production_model()
        train, hold = self._split_holdout(self.collector.window())
        candidate = self.trainer.train(train, warm_start=production)
        shadow = self.evaluator.evaluate(candidate, production, hold)
        decision = self.policy.consider(
            candidate,
            self.trainer.encoder.fingerprint(),
            shadow,
            note="continual retrain: " + "; ".join(report.reasons)[:300],
        )
        self.events.append(
            {
                "type": "retrain",
                "reasons": list(report.reasons),
                "n_train_records": len(train),
                "n_holdout_records": len(hold),
                "candidate_tau": shadow.candidate_tau,
                "production_tau": shadow.production_tau,
                # per-family (candidate, production, n) — the evidence the
                # family-regression veto judged, kept for post-mortems
                "family_taus": shadow.family_taus(),
                "promoted": decision.promoted,
                "version": decision.version,
                "decision_reason": decision.reason,
                # distilled-history footprint at retrain time (None when
                # the trainer keeps no archive)
                "archive": (
                    self.trainer.archive.snapshot()
                    if self.trainer.archive is not None
                    else None
                ),
            }
        )
        self._observe(
            "retrain",
            {"promoted": decision.promoted, "version": decision.version},
        )
        if self.metrics is not None:
            self.metrics.gauge("shadow_candidate_tau").set(shadow.candidate_tau)
            self.metrics.gauge("shadow_production_tau").set(shadow.production_tau)
        if decision.promoted:
            self._observe("promotion", {"version": decision.version})
            if self.quality is not None:
                # realized-vs-shadow tracking starts now: the watch will
                # alert if online τ undercuts what the shadow promised
                self.quality.note_promotion(
                    decision.version,
                    shadow_tau=shadow.candidate_tau,
                    production_tau=shadow.production_tau,
                )
            # fresh window: observations of the displaced model must not
            # re-trigger drift against the new one — and the shift
            # reference must now fingerprint what the *new* model was
            # trained on, or a permanent traffic shift would keep the
            # signal latched and retrain forever
            self.monitor.reset()
            previous_reference = self.monitor.reference
            if self.trainer.last_corpus_ is not None:
                self.monitor.fit_reference(self.trainer.last_corpus_)
            self._watch = {
                "version": decision.version,
                "baseline": shadow.production_tau,
                "taus": [],
                # restored on rollback: the old model's training fingerprint
                "reference": previous_reference,
            }
            if self.config.gc_keep_last is not None:
                self.policy.registry.gc(keep_last=self.config.gc_keep_last)
        return decision

    # -- rollback --------------------------------------------------------------

    def _maybe_rollback(self, new_feedback: "list[MeasuredFeedback]") -> None:
        watch = self._watch
        if watch is None:
            return
        watch["taus"].extend(
            fb.tau for fb in new_feedback if fb.model_version == watch["version"]
        )
        if len(watch["taus"]) < self.config.rollback_min_records:
            return
        live_tau = float(np.mean(watch["taus"]))
        if live_tau < watch["baseline"] - self.config.rollback_margin:
            restored = self.policy.rollback()
            self.monitor.reset()
            if watch.get("reference") is not None:
                # the restored model was trained on the *old* corpus; its
                # fingerprint must come back too, or the shift signal would
                # be judged against the demoted model's training data
                self.monitor.reference = watch["reference"]
            self.events.append(
                {
                    "type": "rollback",
                    "demoted": watch["version"],
                    "restored": restored,
                    "live_tau": live_tau,
                    "baseline_tau": watch["baseline"],
                }
            )
            self._observe(
                "rollback", {"demoted": watch["version"], "restored": restored}
            )
        self._watch = None  # watch concluded either way
