"""Feedback collection: turning served rankings into labeled training data.

Every ranking the service answers is a *prediction* whose ground truth is
one measurement away: execute a handful of the ranked candidates and the
observed runtimes grade the served ordering.  The collector implements the
first half of the continual-learning loop:

1. :meth:`FeedbackCollector.hook` rides the tuning service's response-hook
   API and records served ``(instance, candidates, scores, model version)``
   traffic — an O(1) append on the serving loop, nothing else;
2. :meth:`FeedbackCollector.measure_pending` later (asynchronously, off the
   serving path) probes a rank-stratified subset of each recorded candidate
   set on a **budgeted** background machine
   (:class:`~repro.machine.budget.BudgetedMachine`) and emits
   :class:`MeasuredFeedback` — probed tunings, served scores, measured
   truth, and the Kendall τ between them.

Measured feedback is both the drift signal (τ per stencil family, feature
shift) and the incremental training data (each record is one new ranking
group).

Two variants of the collector exist: :class:`FeedbackCollector` hooks a
single in-process :class:`~repro.service.TuningService`;
:class:`ClusterFeedbackCollector` listens to a
:class:`~repro.service.cluster.ServiceCluster`'s wire-level feedback
stream instead, so one collector — one budget, one drift monitor — covers
N worker processes.  Records aging out of the bounded measured window can
be handed to a distillation archive via ``on_age_out`` (see
:class:`~repro.online.trainer.FeedbackArchive`) instead of being lost.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.machine.budget import BudgetedMachine
from repro.ranking.kendall import kendall_tau
from repro.stencil.execution import instance_hash
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector
from repro.util.rng import spawn

__all__ = [
    "ClusterFeedbackCollector",
    "FeedbackCollector",
    "MeasuredFeedback",
    "ServedRecord",
    "probe_ranks",
    "stencil_family",
]


def stencil_family(kernel_name: str) -> str:
    """The shape-family label of a kernel name.

    Kernel names throughout the repo lead with the family (``laplacian-…``,
    ``hypercube-3d-r2-float``), with training codes prefixed ``train-``.
    Unrecognized names fall back to their first dash-token, which keeps the
    per-family drift bookkeeping total (every kernel lands somewhere).

    >>> stencil_family("train-hypercube-3d-r2-float")
    'hypercube'
    >>> stencil_family("laplacian")
    'laplacian'
    """
    name = kernel_name.removeprefix("train-")
    return name.split("-", 1)[0]


def probe_ranks(n_candidates: int, probe_size: int) -> np.ndarray:
    """Rank positions to probe: evenly spaced through the served ordering.

    Stratifying by served rank (best, worst and evenly between) is what
    makes a small probe informative about the *whole* ordering — probing
    only the top would grade just the head, and a uniform random subset
    wastes probes on indistinguishable mid-field neighbours.

    >>> probe_ranks(9, 3).tolist()
    [0, 4, 8]
    >>> probe_ranks(4, 16).tolist()
    [0, 1, 2, 3]
    """
    if probe_size >= n_candidates:
        return np.arange(n_candidates)
    return np.unique(np.round(np.linspace(0, n_candidates - 1, probe_size)).astype(int))


@dataclass(frozen=True)
class ServedRecord:
    """One served ranking awaiting ground-truth measurement."""

    seq: int
    instance: StencilInstance
    #: the request's candidates (shared reference; never mutated)
    candidates: Sequence[TuningVector]
    #: model scores aligned with ``candidates``
    scores: np.ndarray
    model_version: str


@dataclass(frozen=True)
class MeasuredFeedback:
    """A served ranking graded against measured truth.

    ``tunings`` is the probed (rank-stratified) subset of the candidate
    set; ``served_scores`` the model's scores for exactly those tunings;
    ``true_times`` the measured medians.  ``tau`` grades the served
    ordering of the probed subset: +1 means the service ranked it exactly
    as the machine runs it.
    """

    seq: int
    instance: StencilInstance
    family: str
    model_version: str
    tunings: tuple[TuningVector, ...]
    served_scores: np.ndarray
    true_times: np.ndarray
    tau: float

    def __len__(self) -> int:
        return len(self.tunings)


class FeedbackCollector:
    """Records served rankings and measures ground truth under a budget.

    Usage::

        collector = FeedbackCollector(BudgetedMachine(machine, 2000))
        collector.attach(service)
        ...                       # serve traffic
        new = collector.measure_pending(limit=8)   # off the serving path
    """

    def __init__(
        self,
        machine: BudgetedMachine,
        probe_size: int = 16,
        repeats: int = 3,
        max_pending: int = 1024,
        max_measured: int = 4096,
        dedupe: bool = True,
        probe_mode: str = "stratified",
        probe_seed: int = 0,
        max_seen: int = 16384,
        on_age_out: "Callable[[MeasuredFeedback], None] | None" = None,
    ) -> None:
        if probe_size < 2:
            raise ValueError(f"probe_size must be >= 2, got {probe_size}")
        if probe_mode not in ("stratified", "uniform"):
            raise ValueError(
                f"unknown probe_mode {probe_mode!r}; expected stratified/uniform"
            )
        self.machine = machine
        self.probe_size = probe_size
        self.repeats = repeats
        self.dedupe = dedupe
        self.probe_mode = probe_mode
        self.probe_seed = probe_seed
        self._pending: deque[ServedRecord] = deque()
        self.max_pending = max_pending
        #: measured feedback, oldest first (bounded; old windows age out)
        self.measured: deque[MeasuredFeedback] = deque()
        self.max_measured = max_measured
        #: called with each record evicted past ``max_measured`` — the
        #: attachment point for archive distillation
        #: (:meth:`~repro.online.trainer.FeedbackArchive.absorb`); without
        #: it, aged-out records are simply gone
        self.on_age_out = on_age_out
        #: records aged out of the measured window (distilled or dropped)
        self.aged_out = 0
        self._seq = 0
        #: (instance hash, model version) pairs already recorded — an
        #: insertion-ordered dict used as a bounded set: oldest keys are
        #: evicted past ``max_seen``, so a long-lived service's dedupe
        #: memory cannot grow without bound (an evicted instance simply
        #: becomes measurable again)
        self._seen: dict[tuple[int, str], None] = {}
        self.max_seen = max_seen
        self.dropped_overflow = 0
        self.dropped_unaffordable = 0
        self.skipped_repeats = 0

    # -- recording (runs on the serving loop; must stay cheap) -----------------

    def hook(self, instance: StencilInstance, candidates, response) -> None:
        """Service response hook: queue one served ranking for measurement."""
        if self.dedupe:
            key = (instance_hash(instance), response.model_version)
            if key in self._seen:
                self.skipped_repeats += 1
                return
            self._seen[key] = None
            while len(self._seen) > self.max_seen:
                del self._seen[next(iter(self._seen))]
        if len(self._pending) >= self.max_pending:
            dropped = self._pending.popleft()
            self.dropped_overflow += 1
            # a dropped record was never measured: forget it was seen so
            # a future serve of the same instance can still be probed
            self._seen.pop(
                (instance_hash(dropped.instance), dropped.model_version), None
            )
        self._pending.append(
            ServedRecord(
                seq=self._seq,
                instance=instance,
                candidates=candidates,
                scores=np.asarray(response.scores),
                model_version=response.model_version,
            )
        )
        self._seq += 1

    def attach(self, service) -> "FeedbackCollector":
        """Register the hook on a :class:`~repro.service.TuningService`."""
        service.add_response_hook(self.hook)
        return self

    def detach(self, service) -> None:
        """Unregister the hook."""
        service.remove_response_hook(self.hook)

    @property
    def pending_count(self) -> int:
        """Served records still awaiting ground-truth measurement."""
        return len(self._pending)

    # -- measurement (background; budgeted) ------------------------------------

    def measure_pending(self, limit: "int | None" = None) -> list[MeasuredFeedback]:
        """Measure up to ``limit`` queued records; returns the new feedback.

        Records are processed oldest-first.  A record whose probe does not
        fit the remaining measurement budget is *put back* and processing
        stops — nothing is half-measured, and the record is retried after
        the next :meth:`~repro.machine.budget.BudgetedMachine.refill`.
        A probe that could not fit even a freshly refilled budget is
        dropped instead (``dropped_unaffordable``) — waiting would stall
        every record behind it forever.
        """
        out: list[MeasuredFeedback] = []
        while self._pending and (limit is None or len(out) < limit):
            record = self._pending.popleft()
            picks = self._probe_picks(record)
            tunings = tuple(record.candidates[int(i)] for i in picks)
            result = self.machine.try_measure_batch(
                record.instance, tunings, repeats=self.repeats
            )
            if result is None:
                if self.machine.ever_affordable(
                    record.instance, tunings, self.repeats
                ):  # budget merely exhausted: retry after the next refill
                    self._pending.appendleft(record)
                    break
                self.dropped_unaffordable += 1
                # like the overflow drop: an unmeasured record must not
                # block re-measuring its instance (the budget caps may be
                # raised by a later refill)
                self._seen.pop(
                    (instance_hash(record.instance), record.model_version), None
                )
                continue
            fb = self._grade(record, picks, tunings, result.medians)
            self.measured.append(fb)
            out.append(fb)
            while len(self.measured) > self.max_measured:
                aged = self.measured.popleft()
                self.aged_out += 1
                if self.on_age_out is not None:
                    self.on_age_out(aged)
        return out

    def _probe_picks(self, record: ServedRecord) -> np.ndarray:
        """Which candidate indices to measure for one record.

        ``stratified`` (default) spreads probes evenly through the *served*
        ordering — the most informative grading of one service's answers,
        but the subset depends on the serving model, so τ values from two
        different services are not directly comparable.  ``uniform`` draws
        a subset seeded only by the instance, independent of any model:
        two services replaying the same episode probe identical subsets,
        which is what a fair adapting-vs-frozen comparison needs.
        """
        n = len(record.candidates)
        if self.probe_mode == "uniform":
            rng = spawn(self.probe_seed, "feedback-probe", instance_hash(record.instance))
            if self.probe_size >= n:
                return np.arange(n)
            return np.sort(rng.choice(n, size=self.probe_size, replace=False))
        order = np.argsort(-record.scores, kind="stable")
        return order[probe_ranks(n, self.probe_size)]

    def _grade(
        self,
        record: ServedRecord,
        picks: np.ndarray,
        tunings: tuple[TuningVector, ...],
        truth: np.ndarray,
    ) -> MeasuredFeedback:
        served = record.scores[picks]
        return MeasuredFeedback(
            seq=record.seq,
            instance=record.instance,
            family=stencil_family(record.instance.kernel.name),
            model_version=record.model_version,
            tunings=tunings,
            served_scores=np.asarray(served),
            true_times=np.asarray(truth),
            tau=kendall_tau(-served, truth),
        )

    def window(self, n: "int | None" = None) -> list[MeasuredFeedback]:
        """The most recent ``n`` measured records (all if ``None``)."""
        if n is None:
            return list(self.measured)
        return list(self.measured)[-n:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FeedbackCollector(pending={len(self._pending)}, "
            f"measured={len(self.measured)})"
        )


class ClusterFeedbackCollector(FeedbackCollector):
    """Feedback riding the cluster wire: one collector behind N workers.

    Single-process collection hooks the service's response stream
    in-process; a :class:`~repro.service.cluster.ServiceCluster` serves
    from worker *processes*, so a per-worker hook would fragment the loop
    into N collectors with N budgets and N drift monitors.  This
    collector instead listens to the cluster's coordinator-side feedback
    stream (workers sample answers onto the wire as
    :class:`~repro.service.ipc.FeedbackRecord`; arm it with
    ``ServiceCluster(feedback_every=1)``): **one** probing budget, **one**
    measured window, **one** drift signal for the whole cluster.

    Thread discipline: cluster listeners fire on per-worker reader
    threads, so :meth:`hook` only appends to an intake queue under a
    dedicated lock (held for the append and bound trim only — never
    across collector work).  All collector state — dedupe memory,
    pending queue, measured window — is touched exclusively on the
    coordinator thread, when :meth:`measure_pending` (or an explicit
    :meth:`drain`) folds the intake in.  Records are drained in arrival
    order; ``records_by_worker`` keeps the per-shard accounting.
    """

    def __init__(self, machine: BudgetedMachine, **kwargs: object) -> None:
        super().__init__(machine, **kwargs)  # type: ignore[arg-type]
        #: raw (instance, candidates, record) triples from reader threads
        self._intake: deque = deque()
        #: guards intake append/trim/pop — reader threads race each other
        #: (and the draining coordinator) on the overflow bound
        self._intake_lock = threading.Lock()
        #: intake entries discarded because the queue outgrew max_pending
        #: (the same bound as the pending queue: unmeasured backlog)
        self.dropped_intake = 0
        #: records drained per worker id (wire-level shard accounting)
        self.records_by_worker: Counter = Counter()

    # -- recording (runs on cluster reader threads; append only) ---------------

    def hook(self, instance, candidates, record) -> None:
        """Cluster feedback listener: enqueue one streamed record.

        Runs on a worker's reader thread — an O(1) append plus bound
        trim under the intake lock, no collector state: everything else
        happens at :meth:`drain` time on the coordinator thread.
        """
        with self._intake_lock:
            self._intake.append((instance, candidates, record))
            while len(self._intake) > self.max_pending:
                self._intake.popleft()
                self.dropped_intake += 1

    def drain(self) -> int:
        """Fold intake into the collector proper; returns records folded.

        Coordinator-thread only.  Each drained triple goes through the
        base class's :meth:`FeedbackCollector.hook` — dedupe, pending
        bound and sequence numbering behave exactly as in the
        single-process collector.  The intake lock is held per pop, not
        across the fold, so reader threads never wait on collector work.
        """
        folded = 0
        while True:
            with self._intake_lock:
                if not self._intake:
                    break
                instance, candidates, record = self._intake.popleft()
            self.records_by_worker[record.worker_id] += 1
            super().hook(instance, candidates, record)
            folded += 1
        return folded

    def measure_pending(self, limit: "int | None" = None) -> list[MeasuredFeedback]:
        """Drain the wire intake, then measure as the base collector does."""
        self.drain()
        return super().measure_pending(limit)

    @property
    def pending_count(self) -> int:
        """Records awaiting measurement, including undrained intake."""
        return len(self._pending) + len(self._intake)

    # -- attachment ------------------------------------------------------------

    def attach(self, cluster) -> "ClusterFeedbackCollector":
        """Register on a :class:`~repro.service.cluster.ServiceCluster`."""
        cluster.add_feedback_listener(self.hook)
        return self

    def detach(self, cluster) -> None:
        """Unregister the listener (undrained intake is kept)."""
        cluster.remove_feedback_listener(self.hook)
