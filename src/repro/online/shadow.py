"""Shadow evaluation: grade a candidate model before it ever serves.

A candidate fresh out of retraining has seen the feedback it was trained
on; promoting on training-set performance is how feedback loops go wrong.
The :class:`ShadowEvaluator` replays a **held-out** window of measured
feedback through both the candidate and the current production model —
the same encoded rows, two ``X @ w`` passes — and reports each model's
mean Kendall τ against measured truth.  Only the
:class:`~repro.online.promotion.PromotionPolicy` acting on this report
may move the serving tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.features.encoder import FeatureEncoder
from repro.learn.ranksvm import RankSVM
from repro.online.feedback import MeasuredFeedback
from repro.ranking.kendall import kendall_tau

__all__ = ["ShadowEvaluator", "ShadowReport", "mean_model_tau"]


def _per_record_tau(
    encoder: FeatureEncoder,
    models: "list[RankSVM]",
    window: "list[MeasuredFeedback]",
) -> np.ndarray:
    """τ of each model on each record: shape ``(len(models), len(window))``.

    Encodes the window once (one fused cross-record pass) and scores it
    with one ``decision_function`` call per model.
    """
    X = encoder.encode_many([(fb.instance, list(fb.tunings)) for fb in window])
    splits = np.cumsum([len(fb) for fb in window])[:-1]
    out = np.empty((len(models), len(window)))
    for i, model in enumerate(models):
        scores = model.decision_function(X)
        for j, (fb, s) in enumerate(zip(window, np.split(scores, splits))):
            out[i, j] = kendall_tau(-s, fb.true_times)
    return out


def mean_model_tau(
    encoder: FeatureEncoder, model: RankSVM, window: "list[MeasuredFeedback]"
) -> float:
    """Mean τ of one model over a feedback window (0.0 when empty)."""
    if not window:
        return 0.0
    return float(_per_record_tau(encoder, [model], window).mean())


@dataclass(frozen=True)
class ShadowReport:
    """Candidate vs production ranking quality on held-out feedback."""

    candidate_tau: float
    production_tau: float
    n_records: int
    #: per-record τ, aligned: ``candidate_taus[i]`` and
    #: ``production_taus[i]`` grade the same held-out record
    candidate_taus: tuple[float, ...] = ()
    production_taus: tuple[float, ...] = ()
    #: stencil family of each held-out record, aligned with the τ tuples —
    #: what lets the promotion policy veto a mean-improving candidate that
    #: trades one family's quality away for another's
    families: tuple[str, ...] = ()

    def candidate_wins(self, min_improvement: float = 0.0) -> bool:
        """Whether the candidate clears production by ``min_improvement``."""
        return self.candidate_tau >= self.production_tau + min_improvement

    def family_taus(self) -> "dict[str, tuple[float, float, int]]":
        """Per-family (candidate mean τ, production mean τ, record count).

        Empty when the report carries no family annotations (older
        records, or a hand-built report) — the per-family gate then has
        nothing to veto on and promotion falls back to the global bar.
        """
        sums: dict[str, list[float]] = {}
        for family, cand, prod in zip(
            self.families, self.candidate_taus, self.production_taus
        ):
            acc = sums.setdefault(family, [0.0, 0.0, 0])
            acc[0] += cand
            acc[1] += prod
            acc[2] += 1
        return {
            family: (cand_sum / n, prod_sum / n, n)
            for family, (cand_sum, prod_sum, n) in sums.items()
        }

    def regressed_families(
        self, tolerance: float, min_records: int = 1
    ) -> "list[tuple[str, float, float]]":
        """Families where the candidate falls more than ``tolerance`` below
        production, among families with at least ``min_records`` held-out
        records; returns (family, candidate mean τ, production mean τ)
        sorted worst regression first."""
        out = [
            (family, cand, prod)
            for family, (cand, prod, n) in self.family_taus().items()
            if n >= min_records and cand < prod - tolerance
        ]
        return sorted(out, key=lambda item: item[1] - item[2])

    def summary(self) -> str:
        """One-line description for logs and events."""
        return (
            f"shadow over {self.n_records} records: candidate tau "
            f"{self.candidate_tau:.3f} vs production {self.production_tau:.3f}"
        )


@dataclass
class ShadowEvaluator:
    """Replays held-out feedback through candidate and production models."""

    encoder: FeatureEncoder = field(default_factory=FeatureEncoder)

    def evaluate(
        self,
        candidate: RankSVM,
        production: RankSVM,
        window: "list[MeasuredFeedback]",
    ) -> ShadowReport:
        """Grade both models on the same held-out window."""
        if not window:
            return ShadowReport(candidate_tau=0.0, production_tau=0.0, n_records=0)
        taus = _per_record_tau(self.encoder, [candidate, production], window)
        return ShadowReport(
            candidate_tau=float(taus[0].mean()),
            production_tau=float(taus[1].mean()),
            n_records=len(window),
            candidate_taus=tuple(float(t) for t in taus[0]),
            production_taus=tuple(float(t) for t in taus[1]),
            families=tuple(fb.family for fb in window),
        )
