"""Promotion: the only way a retrained model reaches the serving tag.

The policy is the gate between shadow evaluation and production: a
candidate is published and the serving tag moved **only** when the shadow
report shows it beating the production model on enough held-out records.
Tag moves ride :meth:`~repro.service.registry.ModelRegistry.tag` — an
atomic, lock-guarded write that a serving
:class:`~repro.service.TuningService` picks up at its next batch's tag
re-resolution, so no request ever observes a torn model: every answer is
computed end-to-end by exactly one version.

Every promotion remembers the version it displaced, so
:meth:`PromotionPolicy.rollback` restores the previous model in **one
call** — the escape hatch when post-promotion drift worsens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.learn.ranksvm import RankSVM
from repro.online.shadow import ShadowReport
from repro.service.registry import ModelRegistry

__all__ = ["PromotionDecision", "PromotionPolicy"]


@dataclass(frozen=True)
class PromotionDecision:
    """Outcome of one promotion consideration."""

    promoted: bool
    #: the newly serving version (None when not promoted)
    version: "str | None"
    #: the version serving before this decision (None for an empty tag)
    previous: "str | None"
    reason: str
    shadow: ShadowReport


class PromotionPolicy:
    """Shadow-gated publication and tag movement, with one-call rollback."""

    def __init__(
        self,
        registry: ModelRegistry,
        tag: str = "prod",
        min_improvement: float = 0.0,
        min_records: int = 4,
        max_family_regression: "float | None" = None,
        min_family_records: int = 2,
    ) -> None:
        if min_records < 1:
            raise ValueError(f"min_records must be >= 1, got {min_records}")
        if max_family_regression is not None and max_family_regression < 0:
            raise ValueError(
                f"max_family_regression must be >= 0, got {max_family_regression}"
            )
        if min_family_records < 1:
            raise ValueError(
                f"min_family_records must be >= 1, got {min_family_records}"
            )
        self.registry = registry
        self.tag = tag
        self.min_improvement = min_improvement
        self.min_records = min_records
        #: per-family veto: a candidate that improves the *mean* but drops
        #: any single stencil family's shadow τ by more than this below
        #: production is rejected (None disables the gate).  Guards against
        #: the classic continual-learning failure of trading away a quiet
        #: family's quality for the currently drifting one's.
        self.max_family_regression = max_family_regression
        #: families with fewer held-out records than this cannot veto — a
        #: one-record family is noise, not evidence
        self.min_family_records = min_family_records
        #: the displaced version keeps this tag so retention gc (which
        #: spares every tagged version) can never collect a rollback target
        self.rollback_tag = f"{tag}-rollback"
        #: (displaced version, promoted version) per promotion, oldest first
        self.history: list[tuple["str | None", str]] = []

    def current_version(self) -> "str | None":
        """The version the serving tag resolves to (None for an empty tag)."""
        try:
            return self.registry.resolve(self.tag)
        except KeyError:
            return None

    def consider(
        self,
        candidate: RankSVM,
        encoder_fingerprint: str,
        shadow: ShadowReport,
        note: str = "",
    ) -> PromotionDecision:
        """Publish + move the tag iff the shadow report clears the bar."""
        previous = self.current_version()
        if shadow.n_records < self.min_records:
            return PromotionDecision(
                promoted=False,
                version=None,
                previous=previous,
                reason=(
                    f"insufficient shadow window: {shadow.n_records} records "
                    f"< {self.min_records}"
                ),
                shadow=shadow,
            )
        if not shadow.candidate_wins(self.min_improvement):
            return PromotionDecision(
                promoted=False,
                version=None,
                previous=previous,
                reason=(
                    f"candidate tau {shadow.candidate_tau:.3f} does not clear "
                    f"production {shadow.production_tau:.3f} "
                    f"+ {self.min_improvement}"
                ),
                shadow=shadow,
            )
        if self.max_family_regression is not None:
            regressed = shadow.regressed_families(
                self.max_family_regression, self.min_family_records
            )
            if regressed:
                worst = ", ".join(
                    f"{family} ({cand:.3f} vs {prod:.3f})"
                    for family, cand, prod in regressed
                )
                return PromotionDecision(
                    promoted=False,
                    version=None,
                    previous=previous,
                    reason=(
                        f"family regression veto (tolerance "
                        f"{self.max_family_regression}): {worst}"
                    ),
                    shadow=shadow,
                )
        version = self.registry.publish(
            candidate, encoder_fingerprint, note=note or shadow.summary()
        )
        # protect the displaced version BEFORE moving the serving tag off
        # it: the instant it is untagged, a concurrent gc could collect it
        # and the rollback path would be gone while the new model serves
        if previous is not None:
            self.registry.tag(self.rollback_tag, previous)
        self.registry.tag(self.tag, version)
        self.history.append((previous, version))
        return PromotionDecision(
            promoted=True,
            version=version,
            previous=previous,
            reason=shadow.summary(),
            shadow=shadow,
        )

    def rollback(self) -> str:
        """Restore the version displaced by the most recent promotion.

        One atomic tag move; returns the version now serving.  Raises
        :class:`RuntimeError` when there is nothing to roll back to — which
        includes a history entry whose target has since been garbage-
        collected: only the *most recent* displaced version is protected
        from :meth:`~repro.service.registry.ModelRegistry.gc` (via
        ``rollback_tag``), so rollback depth beyond one promotion is
        best-effort under retention.
        """
        if not self.history:
            raise RuntimeError("no promotion to roll back")
        previous, _promoted = self.history.pop()
        if previous is None:
            raise RuntimeError(
                "the last promotion created the tag; nothing to restore"
            )
        try:
            self.registry.tag(self.tag, previous)
        except KeyError:
            self.history.append((previous, _promoted))  # undo the pop
            raise RuntimeError(
                f"rollback target {previous!r} no longer exists "
                f"(garbage-collected by the retention policy)"
            ) from None
        return previous
