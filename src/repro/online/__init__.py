"""Continual learning: the loop from serving back into training.

The paper trains its ordinal tuner once on a synthetic corpus and freezes
it.  A production ranking service cannot: traffic drifts, and every served
ranking is itself a free label — execute a few of the ranked candidates
and the observed runtimes grade (and retrain) the model.  This package
closes that loop around :mod:`repro.service`:

* :mod:`repro.online.feedback` — :class:`FeedbackCollector`: records
  served rankings via the service's response-hook API and measures
  rank-stratified ground-truth probes on a budgeted background machine;
  :class:`ClusterFeedbackCollector`: the same loop behind a
  :class:`~repro.service.cluster.ServiceCluster`, fed by the workers'
  wire-level feedback stream — one budget and one drift monitor for N
  worker processes;
* :mod:`repro.online.drift` — :class:`DriftMonitor`: rolling Kendall τ
  per stencil family plus instance-feature shift vs the training
  fingerprint;
* :mod:`repro.online.trainer` — :class:`IncrementalTrainer`: merges
  feedback (recency/importance-weighted) with the offline corpus and fits
  a candidate model, warm-started from production weights;
  :class:`FeedbackArchive`: bounded distillation of records that aged out
  of the live window, so retrains keep old signal at fixed cost;
* :mod:`repro.online.shadow` — :class:`ShadowEvaluator`: candidate vs
  production on held-out feedback, before anything serves;
* :mod:`repro.online.promotion` — :class:`PromotionPolicy`: shadow-gated
  publication, atomic serving-tag move, one-call rollback;
* :mod:`repro.online.pipeline` — :class:`ContinualLearningPipeline`: the
  orchestrated loop, pulled forward by ``step()`` calls off the serving
  path;
* :mod:`repro.online.workload` — :class:`DriftingWorkload`: deterministic
  drifting request streams for tests, the example and the benchmark.

See ``docs/continual_learning.md`` for the architecture and
``examples/continual_tuning.py`` for a runnable end-to-end episode.
"""

from repro.online.drift import DriftMonitor, DriftReport, instance_feature_slice
from repro.online.feedback import (
    ClusterFeedbackCollector,
    FeedbackCollector,
    MeasuredFeedback,
    ServedRecord,
    probe_ranks,
    stencil_family,
)
from repro.online.pipeline import ContinualConfig, ContinualLearningPipeline
from repro.online.promotion import PromotionDecision, PromotionPolicy
from repro.online.shadow import ShadowEvaluator, ShadowReport, mean_model_tau
from repro.online.trainer import FeedbackArchive, IncrementalTrainer
from repro.online.workload import DriftingWorkload, family_kernels

__all__ = [
    "ClusterFeedbackCollector",
    "ContinualConfig",
    "ContinualLearningPipeline",
    "DriftMonitor",
    "DriftReport",
    "DriftingWorkload",
    "FeedbackArchive",
    "FeedbackCollector",
    "IncrementalTrainer",
    "MeasuredFeedback",
    "PromotionDecision",
    "PromotionPolicy",
    "ServedRecord",
    "ShadowEvaluator",
    "ShadowReport",
    "family_kernels",
    "instance_feature_slice",
    "mean_model_tau",
    "probe_ranks",
    "stencil_family",
]
