"""Incremental retraining: offline corpus + weighted serving feedback.

The candidate model is never trained on feedback alone — a few dozen
feedback records would catastrophically forget the synthetic families the
offline corpus covers.  Instead the trainer assembles a merged corpus:

* the **offline anchor** — the original training set, optionally
  subsampled (:func:`repro.autotune.training.merge_corpus`) so a much
  larger static corpus cannot drown out fresh traffic;
* the **feedback groups** — each measured record becomes one ranking group
  (runtimes are only comparable within one instance), encoded in a single
  :meth:`~repro.features.encoder.FeatureEncoder.encode_many` pass across
  all records;
* **recency × importance weighting** — older records decay geometrically
  (``decay ** age``), and records the serving model already ranked well
  are relieved (a near-perfect τ carries little new constraint mass).
  Weights act by per-group point subsampling
  (:func:`~repro.autotune.training.reweight_groups`), the weighting
  mechanism a pairwise ranker actually has.

Fitting **warm-starts** from the production model's weight vector — the
objective is convex so the optimum is unchanged, but the solver converges
in a fraction of the iterations when the distribution moved incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autotune.dataset import TrainingSet
from repro.autotune.training import merge_corpus, reweight_groups
from repro.features.encoder import FeatureEncoder
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.online.feedback import MeasuredFeedback
from repro.ranking.partial import RankingGroups

__all__ = ["IncrementalTrainer"]


@dataclass
class IncrementalTrainer:
    """Builds merged corpora and fits candidate models from feedback."""

    offline: TrainingSet
    encoder: FeatureEncoder = field(default_factory=FeatureEncoder)
    config: RankSVMConfig = field(default_factory=RankSVMConfig)
    #: subsample the offline corpus to ~this many points (None = keep all)
    offline_points: "int | None" = None
    #: recency decay per record of age (newest record has weight 1)
    decay: float = 0.97
    #: weight relief for records the model already ranks well: a record
    #: with τ = 1 keeps ``1 - relief`` of its recency weight
    relief: float = 0.4
    #: most recent feedback records considered at all
    max_feedback: int = 256
    #: the merged corpus of the last :meth:`train` call (the pipeline
    #: refits the drift monitor's reference fingerprint from it after a
    #: promotion)
    last_corpus_: "RankingGroups | None" = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if not 0.0 <= self.relief < 1.0:
            raise ValueError(f"relief must be in [0, 1), got {self.relief}")
        if (
            self.offline.encoder_fingerprint
            and self.offline.encoder_fingerprint != self.encoder.fingerprint()
        ):
            raise ValueError(
                f"offline corpus was encoded with "
                f"{self.offline.encoder_fingerprint!r}, trainer encoder is "
                f"{self.encoder.fingerprint()!r}"
            )

    # -- corpus assembly -------------------------------------------------------

    def feedback_groups(self, feedback: "list[MeasuredFeedback]") -> RankingGroups:
        """Encode feedback records as ranking groups in one fused pass.

        Group ids are the records' sequence numbers — unique per record,
        remapped past the offline ids by :func:`merge_corpus`.
        """
        if not feedback:
            return RankingGroups(
                np.empty((0, self.encoder.num_features)),
                np.empty(0),
                np.empty(0, dtype=np.int64),
            )
        X = self.encoder.encode_many(
            [(fb.instance, list(fb.tunings)) for fb in feedback]
        )
        times = np.concatenate([fb.true_times for fb in feedback])
        groups = np.repeat(
            np.array([fb.seq for fb in feedback], dtype=np.int64),
            [len(fb) for fb in feedback],
        )
        return RankingGroups(X, times, groups)

    def feedback_weights(
        self, feedback: "list[MeasuredFeedback]"
    ) -> "dict[object, float]":
        """Recency × importance weight per record (keyed by group id)."""
        n = len(feedback)
        weights: dict[object, float] = {}
        for age, fb in enumerate(reversed(feedback)):
            recency = self.decay**age
            importance = 1.0 - self.relief * max(0.0, fb.tau)
            weights[fb.seq] = recency * importance
        assert len(weights) == n
        return weights

    def build_corpus(self, feedback: "list[MeasuredFeedback]") -> RankingGroups:
        """The merged, reweighted training corpus for one retraining round."""
        recent = feedback[-self.max_feedback :]
        groups = self.feedback_groups(recent)
        weighted = reweight_groups(
            groups, self.feedback_weights(recent), rng=self.config.seed
        )
        return merge_corpus(
            self.offline, weighted, self.offline_points, seed=self.config.seed
        )

    # -- fitting ---------------------------------------------------------------

    def train(
        self,
        feedback: "list[MeasuredFeedback]",
        warm_start: "RankSVM | np.ndarray | None" = None,
    ) -> RankSVM:
        """Fit a candidate model on offline + feedback data.

        ``warm_start`` may be the production model (its ``w_`` seeds the
        solver) or a raw weight vector.
        """
        w0 = warm_start.w_ if isinstance(warm_start, RankSVM) else warm_start
        corpus = self.build_corpus(feedback)
        model = RankSVM(self.config)
        model.fit(corpus, warm_start=w0)
        self.last_corpus_ = corpus
        return model
