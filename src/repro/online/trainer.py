"""Incremental retraining: offline corpus + weighted serving feedback.

The candidate model is never trained on feedback alone — a few dozen
feedback records would catastrophically forget the synthetic families the
offline corpus covers.  Instead the trainer assembles a merged corpus:

* the **offline anchor** — the original training set, optionally
  subsampled (:func:`repro.autotune.training.merge_corpus`) so a much
  larger static corpus cannot drown out fresh traffic;
* the **feedback groups** — each measured record becomes one ranking group
  (runtimes are only comparable within one instance), encoded in a single
  :meth:`~repro.features.encoder.FeatureEncoder.encode_many` pass across
  all records;
* **recency × importance weighting** — older records decay geometrically
  (``decay ** age``), and records the serving model already ranked well
  are relieved (a near-perfect τ carries little new constraint mass).
  Weights act by per-group point subsampling
  (:func:`~repro.autotune.training.reweight_groups`), the weighting
  mechanism a pairwise ranker actually has.

Fitting **warm-starts** from the production model's weight vector — the
objective is convex so the optimum is unchanged, but the solver converges
in a fraction of the iterations when the distribution moved incrementally.

A fourth corpus source closes the retention gap: the collector's measured
window is bounded (``max_measured``), so on a long-lived deployment old
feedback ages out and its signal would be lost — exactly the families
that stopped drifting and went quiet.  :class:`FeedbackArchive` receives
aged-out records (wire it to
:attr:`~repro.online.feedback.FeedbackCollector.on_age_out`) and
**distills** each (instance, family) group down to a bounded set of
representative preference points spanning the measured runtime range
(:func:`~repro.autotune.training.distill_points`), so retrains keep the
old signal at a fixed memory cost instead of forgetting it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.autotune.dataset import TrainingSet
from repro.autotune.training import (
    distill_points,
    merge_corpus,
    reweight_groups,
    stack_groups,
)
from repro.features.encoder import FeatureEncoder
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.online.feedback import MeasuredFeedback
from repro.ranking.partial import RankingGroups
from repro.stencil.execution import instance_hash

__all__ = ["FeedbackArchive", "IncrementalTrainer"]


@dataclass
class _ArchiveGroup:
    """One instance's distilled measurement history."""

    instance: object  # StencilInstance (kept opaque: only re-encoded, never run)
    family: str
    #: tuning ``content_key`` -> (tuning, measured time); insertion-ordered,
    #: newest measurement of a tuning overwrites in place
    points: "OrderedDict[object, tuple[object, float]]"
    records_absorbed: int = 0


class FeedbackArchive:
    """Bounded distillation of feedback that aged out of the live window.

    Wire :meth:`absorb` to a collector's ``on_age_out``: every record
    evicted past ``max_measured`` folds into the archive group of its
    instance instead of vanishing.  A group is a deduplicated (tuning →
    newest measured time) map, distilled after every absorb down to
    ``max_points_per_group`` representatives spanning the measured
    runtime range (:func:`~repro.autotune.training.distill_points` —
    fastest, slowest, evenly between: the subset whose preference pairs
    keep the most ordering signal per point).  Groups beyond
    ``max_groups`` evict least-recently-absorbed, so the archive's total
    footprint is a hard ``max_groups × max_points_per_group`` points no
    matter how long the deployment runs.

    Everything is deterministic: no RNG in distillation, and
    :meth:`groups` emits instances in sorted-fingerprint order, so two
    runs absorbing the same record sequence produce byte-identical
    training corpora.
    """

    def __init__(self, max_points_per_group: int = 8, max_groups: int = 256) -> None:
        if max_points_per_group < 2:
            raise ValueError(
                f"max_points_per_group must be >= 2 (pairs need two points), "
                f"got {max_points_per_group}"
            )
        if max_groups < 1:
            raise ValueError(f"max_groups must be >= 1, got {max_groups}")
        self.max_points_per_group = max_points_per_group
        self.max_groups = max_groups
        #: instance fingerprint -> distilled group, recency-ordered
        self._groups: "OrderedDict[int, _ArchiveGroup]" = OrderedDict()
        self.records_absorbed = 0
        self.evicted_groups = 0

    def __len__(self) -> int:
        """Number of (instance, family) groups currently archived."""
        return len(self._groups)

    @property
    def n_points(self) -> int:
        """Total representative points across all groups."""
        return sum(len(g.points) for g in self._groups.values())

    def absorb(self, fb: MeasuredFeedback) -> None:
        """Fold one aged-out record into its instance's distilled group."""
        key = instance_hash(fb.instance)
        group = self._groups.get(key)
        if group is None:
            group = _ArchiveGroup(fb.instance, fb.family, OrderedDict())
            self._groups[key] = group
        else:
            self._groups.move_to_end(key)
        for tuning, t in zip(fb.tunings, fb.true_times):
            group.points[tuning.content_key] = (tuning, float(t))
        group.records_absorbed += 1
        if len(group.points) > self.max_points_per_group:
            items = list(group.points.values())
            keep = distill_points(
                np.array([t for _, t in items]), self.max_points_per_group
            )
            group.points = OrderedDict(
                (items[i][0].content_key, items[i]) for i in keep.tolist()
            )
        self.records_absorbed += 1
        while len(self._groups) > self.max_groups:
            self._groups.popitem(last=False)
            self.evicted_groups += 1

    def groups(self, encoder: FeatureEncoder) -> RankingGroups:
        """The archive as ranking groups, encoded in one fused pass.

        Group ids are 0..n-1 over instances in sorted-fingerprint order —
        stable across runs and independent of absorb recency (callers
        remap ids anyway via :func:`~repro.autotune.training.stack_groups`).
        """
        if not self._groups:
            return RankingGroups(
                np.empty((0, encoder.num_features)),
                np.empty(0),
                np.empty(0, dtype=np.int64),
            )
        ordered = [self._groups[key] for key in sorted(self._groups)]
        X = encoder.encode_many(
            [(g.instance, [tuning for tuning, _ in g.points.values()]) for g in ordered]
        )
        times = np.concatenate(
            [np.array([t for _, t in g.points.values()]) for g in ordered]
        )
        ids = np.repeat(
            np.arange(len(ordered), dtype=np.int64),
            [len(g.points) for g in ordered],
        )
        return RankingGroups(X, times, ids)

    def snapshot(self) -> dict:
        """Counters for telemetry and benchmark rows."""
        return {
            "groups": len(self._groups),
            "points": self.n_points,
            "records_absorbed": self.records_absorbed,
            "evicted_groups": self.evicted_groups,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FeedbackArchive(groups={len(self._groups)}, points={self.n_points}, "
            f"absorbed={self.records_absorbed})"
        )


@dataclass
class IncrementalTrainer:
    """Builds merged corpora and fits candidate models from feedback."""

    offline: TrainingSet
    encoder: FeatureEncoder = field(default_factory=FeatureEncoder)
    config: RankSVMConfig = field(default_factory=RankSVMConfig)
    #: subsample the offline corpus to ~this many points (None = keep all)
    offline_points: "int | None" = None
    #: recency decay per record of age (newest record has weight 1)
    decay: float = 0.97
    #: weight relief for records the model already ranks well: a record
    #: with τ = 1 keeps ``1 - relief`` of its recency weight
    relief: float = 0.4
    #: most recent feedback records considered at all
    max_feedback: int = 256
    #: distilled history of aged-out records, merged into every corpus
    #: (None = aged-out feedback is simply forgotten).  The pipeline wires
    #: the collector's ``on_age_out`` to ``archive.absorb`` on attach.
    archive: "FeedbackArchive | None" = None
    #: the merged corpus of the last :meth:`train` call (the pipeline
    #: refits the drift monitor's reference fingerprint from it after a
    #: promotion)
    last_corpus_: "RankingGroups | None" = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if not 0.0 <= self.relief < 1.0:
            raise ValueError(f"relief must be in [0, 1), got {self.relief}")
        if (
            self.offline.encoder_fingerprint
            and self.offline.encoder_fingerprint != self.encoder.fingerprint()
        ):
            raise ValueError(
                f"offline corpus was encoded with "
                f"{self.offline.encoder_fingerprint!r}, trainer encoder is "
                f"{self.encoder.fingerprint()!r}"
            )

    # -- corpus assembly -------------------------------------------------------

    def feedback_groups(self, feedback: "list[MeasuredFeedback]") -> RankingGroups:
        """Encode feedback records as ranking groups in one fused pass.

        Group ids are the records' sequence numbers — unique per record,
        remapped past the offline ids by :func:`merge_corpus`.
        """
        if not feedback:
            return RankingGroups(
                np.empty((0, self.encoder.num_features)),
                np.empty(0),
                np.empty(0, dtype=np.int64),
            )
        X = self.encoder.encode_many(
            [(fb.instance, list(fb.tunings)) for fb in feedback]
        )
        times = np.concatenate([fb.true_times for fb in feedback])
        groups = np.repeat(
            np.array([fb.seq for fb in feedback], dtype=np.int64),
            [len(fb) for fb in feedback],
        )
        return RankingGroups(X, times, groups)

    def feedback_weights(
        self, feedback: "list[MeasuredFeedback]"
    ) -> "dict[object, float]":
        """Recency × importance weight per record (keyed by group id)."""
        n = len(feedback)
        weights: dict[object, float] = {}
        for age, fb in enumerate(reversed(feedback)):
            recency = self.decay**age
            importance = 1.0 - self.relief * max(0.0, fb.tau)
            weights[fb.seq] = recency * importance
        assert len(weights) == n
        return weights

    def build_corpus(self, feedback: "list[MeasuredFeedback]") -> RankingGroups:
        """The merged, reweighted training corpus for one retraining round.

        Sources, in stacking order: the (optionally subsampled) offline
        anchor, the distilled archive of aged-out feedback (already
        bounded per group — its point cap *is* its weighting), and the
        recency × importance-weighted live feedback window.  Group ids
        from the three sources never alias (:func:`stack_groups`).
        """
        recent = feedback[-self.max_feedback :]
        groups = self.feedback_groups(recent)
        weighted = reweight_groups(
            groups, self.feedback_weights(recent), rng=self.config.seed
        )
        if self.archive is not None and len(self.archive):
            weighted = stack_groups(self.archive.groups(self.encoder), weighted)
        return merge_corpus(
            self.offline, weighted, self.offline_points, seed=self.config.seed
        )

    # -- fitting ---------------------------------------------------------------

    def train(
        self,
        feedback: "list[MeasuredFeedback]",
        warm_start: "RankSVM | np.ndarray | None" = None,
    ) -> RankSVM:
        """Fit a candidate model on offline + feedback data.

        ``warm_start`` may be the production model (its ``w_`` seeds the
        solver) or a raw weight vector.
        """
        w0 = warm_start.w_ if isinstance(warm_start, RankSVM) else warm_start
        corpus = self.build_corpus(feedback)
        model = RankSVM(self.config)
        model.fit(corpus, warm_start=w0)
        self.last_corpus_ = corpus
        return model
