"""Synthetic drifting workloads for exercising the continual loop.

A continual-learning pipeline is only testable against traffic whose
distribution *moves*: :class:`DriftingWorkload` emits a deterministic
stream of ranking requests whose stencil-family mix switches at a known
request index — e.g. line/laplacian traffic (the families an offline
corpus was trained on) giving way to hypercube/hyperplane shapes the
serving model has never seen.  The end-to-end tests, the example and
``benchmarks/bench_online.py`` all drive this stream.

:func:`family_kernels` filters the paper's 60-code training corpus down to
chosen families, which is how the deliberately *partial* offline corpus
(the "frozen model" that drift will expose) is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.autotune.training import generate_training_kernels
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import TRAINING_SHAPES
from repro.tuning.space import patus_space
from repro.tuning.vector import TuningVector
from repro.util.rng import spawn

__all__ = ["DriftingWorkload", "family_kernels"]


def family_kernels(
    families: "tuple[str, ...] | list[str]",
) -> list[StencilKernel]:
    """The training-corpus kernels belonging to the given shape families.

    >>> names = {k.name for k in family_kernels(("line",))}
    >>> all("-line-" in n for n in names) and len(names) > 0
    True
    """
    unknown = set(families) - set(TRAINING_SHAPES)
    if unknown:
        raise ValueError(f"unknown families {sorted(unknown)}")
    wanted = tuple(f"-{family}-" for family in families)
    return [k for k in generate_training_kernels() if any(w in k.name for w in wanted)]


@dataclass(frozen=True)
class DriftingWorkload:
    """A deterministic request stream whose family mix shifts mid-stream.

    Requests ``0 .. shift_at-1`` draw instances from ``phase1`` families;
    request ``shift_at`` onward draws from ``phase2``.  Every request is a
    fresh ``(instance, candidate set)`` pair derived only from the seed and
    the request index, so two consumers (an adapting service and a frozen
    baseline) can replay the *identical* episode.
    """

    shift_at: int
    phase1: tuple[str, ...] = ("line", "laplacian")
    phase2: tuple[str, ...] = ("hypercube", "hyperplane")
    dims: int = 3
    radii: tuple[int, ...] = (1, 2, 3)
    sizes: tuple[tuple[int, int, int], ...] = ((64, 64, 64), (128, 128, 128))
    dtypes: tuple[str, ...] = ("float", "double")
    candidates_per_request: int = 32
    seed: int = 0

    def families_at(self, i: int) -> tuple[str, ...]:
        """The family mix in effect for request ``i``."""
        return self.phase1 if i < self.shift_at else self.phase2

    def request(self, i: int) -> tuple[StencilInstance, list[TuningVector]]:
        """The ``i``-th request: one instance plus its candidate set."""
        rng = spawn(self.seed, "drifting-workload", i)
        families = self.families_at(i)
        family = families[int(rng.integers(len(families)))]
        radius = int(self.radii[int(rng.integers(len(self.radii)))])
        size = self.sizes[int(rng.integers(len(self.sizes)))]
        dtype = self.dtypes[int(rng.integers(len(self.dtypes)))]
        pattern = TRAINING_SHAPES[family](self.dims, radius)
        # explicit space_dims: a line pattern along x must not demote a
        # 3-D kernel to the pattern's inferred dimensionality
        kernel = StencilKernel(
            f"{family}-{self.dims}d-r{radius}-{dtype}",
            (pattern,),
            dtype=dtype,
            space_dims=self.dims,
        )
        if self.dims == 2:
            size = (size[0], size[1], 1)
        instance = StencilInstance(kernel, size)
        candidates = patus_space(self.dims).random_vectors(
            self.candidates_per_request, rng=rng
        )
        return instance, candidates

    def stream(
        self, n: int, start: int = 0
    ) -> Iterator[tuple[StencilInstance, list[TuningVector]]]:
        """Requests ``start .. start+n-1`` in order."""
        for i in range(start, start + n):
            yield self.request(i)
