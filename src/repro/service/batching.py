"""Micro-batching: coalesce concurrent requests into one fused pass.

Ranking one candidate set is a single matrix-vector product, so the
dominant serving cost is per-request overhead — encoding and the Python
round trip.  Micro-batching amortizes it: requests that arrive while a
batch is in flight are queued, and the worker drains everything immediately
available (up to ``max_batch_size``), waiting at most ``max_delay_s`` after
the first item to let stragglers join.  Under heavy concurrency batches run
full and throughput approaches the fused-path limit; a lone request pays at
most the configured delay.

:class:`MicroBatcher` is policy-free plumbing: it neither knows what an
item is nor what processing means — the tuning service hands it a
``process(batch)`` callable.  That keeps the coalescing logic independently
testable.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Sequence

__all__ = ["MicroBatcher"]

Processor = Callable[[Sequence[Any]], "Awaitable[None] | None"]


class MicroBatcher:
    """Queue + worker turning a stream of items into micro-batches."""

    def __init__(
        self,
        process: Processor,
        max_batch_size: int = 64,
        max_delay_s: float = 0.002,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self._process = process
        self.max_batch_size = max_batch_size
        self.max_delay_s = max_delay_s
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._worker: "asyncio.Task | None" = None
        self._stopping = False
        #: last exception that escaped the process callback (worker survives)
        self.last_error: "BaseException | None" = None

    @property
    def running(self) -> bool:
        """Whether the worker task is active and accepting submissions."""
        return (
            self._worker is not None
            and not self._worker.done()
            and not self._stopping
        )

    async def start(self) -> None:
        """Start the worker loop (idempotent)."""
        if self._worker is None or self._worker.done():
            self._stopping = False
            self._worker = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain already-queued items, then stop the worker.

        Submissions are refused *before* the drain starts — otherwise an
        item slipping in between the drain finishing and the worker being
        cancelled would never be processed and its caller would hang.
        """
        if self._worker is None:
            return
        self._stopping = True
        await self._queue.join()
        self._worker.cancel()
        try:
            await self._worker
        except asyncio.CancelledError:
            pass
        self._worker = None

    async def submit(self, item: Any) -> None:
        """Enqueue one item for the next micro-batch."""
        if not self.running:
            raise RuntimeError("MicroBatcher is not running; call start() first")
        await self._queue.put(item)

    # -- worker ----------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            batch = [await self._queue.get()]
            self._drain_ready(batch)
            if len(batch) < self.max_batch_size and self.max_delay_s > 0:
                await self._wait_for_stragglers(batch)
            try:
                result = self._process(batch)
                if asyncio.iscoroutine(result):
                    await result
            except Exception as exc:
                # the callback owns item-level error handling; a stray
                # exception must not kill the worker and strand every
                # queued request behind a dead loop
                self.last_error = exc
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _drain_ready(self, batch: list) -> None:
        """Pull every immediately available item, up to the batch cap."""
        while len(batch) < self.max_batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                return

    async def _wait_for_stragglers(self, batch: list) -> None:
        """Give late arrivals up to ``max_delay_s`` to join the batch."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_delay_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return
            try:
                batch.append(await asyncio.wait_for(self._queue.get(), remaining))
            except asyncio.TimeoutError:
                return
            self._drain_ready(batch)
