"""Chaos injection: the faults the resilience layer is proven against.

The cluster's crash story used to be tested with exactly one weapon —
``ServiceCluster.kill_worker`` (SIGKILL).  Real fleets fail in softer,
nastier ways: workers that answer *slowly*, workers whose event loop hangs
mid-request (slow loris), replies that vanish, frames that arrive as
garbage bytes, and shared files that a sick process half-writes.  This
module packages those faults as deterministic, per-worker injections:

* :class:`ChaosConfig` — a frozen description of which faults a worker
  injects, shipped to the worker inside its
  :class:`~repro.service.worker.WorkerConfig` at spawn time;
* :class:`ChaosState` — the worker-side counter that turns the config into
  per-request decisions (every decision is a function of the request
  ordinal, so a drill replays identically);
* :func:`corrupt_registry_tags` — smash the shared ``tags.json`` with
  non-JSON bytes, the registry-corruption fault
  (:class:`~repro.service.registry.ModelRegistry` detects it by checksum
  and falls back to its mirror);
* :data:`CORRUPT_FRAME` — the byte payload a chaotic worker ships instead
  of a pickled reply; it fails to unpickle on the parent, exercising the
  reader's corrupt-frame containment.

Faults apply **only to ranking traffic**: heartbeats and probe replies
stay honest, because the point of a drill is to watch the health machinery
observe real symptoms (a slow loris stalls its own heartbeats by blocking
the loop), not to forge the instruments.  ``burst_n`` bounds every fault
to the first N requests a worker handles, so a drill can demonstrate the
full arc: degrade → quarantine → recover → readmit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing.connection import Connection
from pathlib import Path

__all__ = [
    "CORRUPT_FRAME",
    "ChaosConfig",
    "ChaosState",
    "corrupt_model_archive",
    "corrupt_registry_tags",
    "send_corrupt_frame",
]

#: bytes that can never unpickle (``\x00`` is not a pickle opcode) — what a
#: corrupt-reply injection puts on the wire in place of a real frame
CORRUPT_FRAME = b"\x00chaos-corrupt-frame"


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic fault injections for one worker.

    All ``*_every`` knobs count the worker's rank requests from 1: a value
    of ``k`` fires on requests ``k, 2k, 3k, …`` (0 never fires).  With
    ``burst_n`` set, every fault is confined to the worker's first
    ``burst_n`` requests — afterwards the worker behaves perfectly, which
    is what lets a drill assert *recovery* (readmission after quarantine),
    not just damage.
    """

    #: asyncio sleep before handling (slow but responsive worker)
    latency_s: float = 0.0
    #: apply the latency to every Nth request (1 = all; 0 = never)
    latency_every: int = 1
    #: *blocking* sleep on the event loop before handling — stalls every
    #: concurrent request AND the worker's own heartbeats (a hung worker)
    slow_loris_s: float = 0.0
    #: silently drop every Nth rank reply (0 = never)
    drop_reply_every: int = 0
    #: replace every Nth rank reply with :data:`CORRUPT_FRAME` (0 = never)
    corrupt_reply_every: int = 0
    #: confine all faults to the first N rank requests (None = forever)
    burst_n: "int | None" = None

    def __post_init__(self) -> None:
        for name in ("latency_s", "slow_loris_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in ("latency_every", "drop_reply_every", "corrupt_reply_every"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.burst_n is not None and self.burst_n < 0:
            raise ValueError(f"burst_n must be >= 0, got {self.burst_n}")

    @property
    def any_faults(self) -> bool:
        """Whether this config injects anything at all."""
        return bool(
            (self.latency_s and self.latency_every)
            or self.slow_loris_s
            or self.drop_reply_every
            or self.corrupt_reply_every
        )


class ChaosState:
    """Worker-side fault decisions, derived from the request ordinal.

    One instance per worker process.  Decisions depend only on the
    config and the order requests are *handled* in, never on wall time or
    randomness, so the same drill produces the same injections.
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self._n = 0
        self.injected_latency = 0
        self.injected_loris = 0
        self.dropped_replies = 0
        self.corrupted_replies = 0

    def next_request(self) -> int:
        """Claim the next request ordinal (1-based)."""
        self._n += 1
        return self._n

    def _active(self, n: int) -> bool:
        burst = self.config.burst_n
        return burst is None or n <= burst

    def pre_delay(self, n: int) -> "tuple[float, float]":
        """(blocking loris sleep, async latency sleep) for request ``n``."""
        if not self._active(n):
            return (0.0, 0.0)
        loris = self.config.slow_loris_s
        if loris:
            self.injected_loris += 1
        latency = 0.0
        if (
            self.config.latency_s
            and self.config.latency_every
            and n % self.config.latency_every == 0
        ):
            latency = self.config.latency_s
            self.injected_latency += 1
        return (loris, latency)

    def reply_fate(self, n: int) -> str:
        """What happens to the reply of request ``n``: send/drop/corrupt."""
        if not self._active(n):
            return "send"
        if self.config.drop_reply_every and n % self.config.drop_reply_every == 0:
            self.dropped_replies += 1
            return "drop"
        if (
            self.config.corrupt_reply_every
            and n % self.config.corrupt_reply_every == 0
        ):
            self.corrupted_replies += 1
            return "corrupt"
        return "send"

    def block(self, seconds: float) -> None:
        """The slow-loris primitive: a *blocking* sleep on the loop thread."""
        if seconds > 0:
            time.sleep(seconds)

    def snapshot(self) -> dict:
        """Injection counters (per worker, for drill reporting)."""
        return {
            "requests_seen": self._n,
            "injected_latency": self.injected_latency,
            "injected_loris": self.injected_loris,
            "dropped_replies": self.dropped_replies,
            "corrupted_replies": self.corrupted_replies,
        }


def send_corrupt_frame(conn: Connection) -> None:
    """Ship :data:`CORRUPT_FRAME` where a pickled reply was expected.

    The receiver's ``recv()`` will raise an unpickling error — exactly the
    symptom of a torn or bit-flipped frame — which the parent reader must
    contain (count + health penalty) without dying.
    """
    try:
        conn.send_bytes(CORRUPT_FRAME)
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass


def corrupt_registry_tags(root: "str | Path") -> bytes:
    """Overwrite the registry's ``tags.json`` with non-JSON garbage.

    Simulates a writer dying mid-write (or disk corruption) on the one
    *mutable* shared file in the registry.  Returns the original bytes so
    a drill can prove recovery happened through the registry's own
    checksum-and-mirror machinery, not through the test restoring the
    file.  The write is deliberately *not* atomic — that is the fault.
    """
    path = Path(root) / "tags.json"
    original = path.read_bytes() if path.exists() else b""
    path.write_bytes(b'{"chaos": this-is-not-json')
    return original


def corrupt_model_archive(root: "str | Path", version: str) -> bytes:
    """Truncate-and-garbage a version's ``.npz`` archive in place.

    The immutable-archive corruption fault:
    :meth:`~repro.service.registry.ModelRegistry.load` detects it (the
    archive fails to parse) and, for dynamic refs, falls back to the
    newest older version that still loads.  Returns the original bytes.
    """
    path = Path(root) / "models" / f"{version}.npz"
    original = path.read_bytes()
    path.write_bytes(b"\x00chaos" + original[: min(64, len(original))])
    return original
