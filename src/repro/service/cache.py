"""The LRU ranking cache.

Ranking is deterministic given (instance, candidate set, model version), so
a service answering heavy traffic should never encode the same query twice:
the cache keys on process-stable content hashes — the instance fingerprint
(:func:`repro.stencil.execution.instance_hash`), a digest of the candidate
tunings, and the resolved model version — and stores the computed ordering
plus scores.  A hit is answered without touching the encoder or the model;
eviction is LRU so hot instances (the "millions of users re-tuning the same
kernels" scenario) stay resident.
"""

from __future__ import annotations

import operator
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stencil.execution import instance_hash
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = [
    "CachedRanking",
    "EncodeCache",
    "InternedCandidates",
    "RankingCache",
    "candidate_set_hash",
    "intern_candidates",
]

#: C-level attribute fetch for the hot per-request hashing loop
_CONTENT_KEY = operator.attrgetter("content_key")

#: int domain tag mixed into every set digest.  Deliberately *not* a string:
#: str hashes are randomized per process (PYTHONHASHSEED), while int and
#: tuple-of-int hashes are build-stable — and an interned digest computed in
#: a cluster parent must equal the digest its worker would compute for the
#: same content, or repeat requests would never share cache entries.
_SET_DOMAIN = 0x63616E6473  # "cands"


def candidate_set_hash(candidates: Sequence[TuningVector]) -> int:
    """Content digest of an *ordered* candidate set.

    Order matters: the service returns scores aligned with the caller's
    candidate order, so two permutations of the same set are distinct keys.
    Combines the vectors' precomputed ``content_key`` values with one tuple
    hash — this runs once per request on the service hot path, and for a
    preset-sized set it is ~50× cheaper than re-digesting every field.
    Every input to the digest is an int, so the value is stable across
    processes and PYTHONHASHSEED draws (pinned by
    ``tests/cluster/test_hash_properties.py``) — which is what lets
    :class:`InternedCandidates` cross the cluster wire carrying its digest.
    """
    return hash((_SET_DOMAIN, tuple(map(_CONTENT_KEY, candidates))))


@dataclass(frozen=True)
class InternedCandidates:
    """A candidate set hashed **once** and reused across requests.

    Clients that re-rank the same explicit candidate set for many instances
    (a compiler driving one tuning space over a kernel suite, a sweep over
    sizes) would otherwise pay :func:`candidate_set_hash` on every request.
    Interning moves that cost to construction time: the service recognizes
    the interned object and reuses the precomputed digest, exactly like its
    own default preset sets.  The tuple is shared, never copied — responses
    never mutate candidate lists.
    """

    candidates: tuple[TuningVector, ...]
    content_hash: int

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


def intern_candidates(candidates: Sequence[TuningVector]) -> InternedCandidates:
    """Intern an ordered candidate set for repeated service requests."""
    if isinstance(candidates, InternedCandidates):
        return candidates
    frozen = tuple(candidates)
    return InternedCandidates(frozen, candidate_set_hash(frozen))


@dataclass(frozen=True)
class CachedRanking:
    """A memoized ranking answer.

    ``order[j]`` is the index (into the request's candidate list) of the
    ``j``-th best candidate; ``scores`` stays aligned with the candidate
    list.  Both are stored read-only so cache hits can share arrays safely.
    ``ranked`` optionally carries the materialized best-first candidate
    list: entries are value-identical for every request sharing this key
    (the key digests candidate content), so hits hand out shallow copies
    instead of rebuilding preset-sized lists.
    """

    order: np.ndarray
    scores: np.ndarray
    model_version: str
    ranked: "list[TuningVector] | None" = None

    def __post_init__(self) -> None:
        self.order.setflags(write=False)
        self.scores.setflags(write=False)

    def materialize(self, candidates: Sequence[TuningVector]) -> list[TuningVector]:
        """The full best-first list, built on first demand and memoized.

        Entries created by top-k-only requests skip materializing the full
        ranking; a later full-ranking request for the same key pays the
        list build once, here, and every subsequent hit shares it.
        """
        if self.ranked is None:
            object.__setattr__(
                self, "ranked", [candidates[i] for i in self.order.tolist()]
            )
        return self.ranked


class RankingCache:
    """LRU cache keyed by (instance hash, candidate-set hash, model version)."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._data: OrderedDict[tuple[int, int, str], CachedRanking] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: entries dropped by LRU pressure or version invalidation — the
        #: cluster telemetry watches this to spot undersized worker caches
        self.evictions = 0

    @staticmethod
    def key(
        instance: StencilInstance,
        candidates: Sequence[TuningVector],
        model_version: str,
    ) -> tuple[int, int, str]:
        """The cache key for one ranking query (content-based, stable)."""
        return (instance_hash(instance), candidate_set_hash(candidates), model_version)

    def get(self, key: tuple[int, int, str]) -> "CachedRanking | None":
        """Look up a key, counting the hit/miss and refreshing recency."""
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple[int, int, str], value: CachedRanking) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0 before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def invalidate_version(self, model_version: str) -> int:
        """Drop every entry computed by ``model_version``; returns the count."""
        stale = [k for k in self._data if k[2] == model_version]
        for k in stale:
            del self._data[k]
        self.evictions += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._data.clear()

    def snapshot(self) -> dict:
        """Cache statistics for telemetry reports."""
        return {
            "cache_entries": len(self._data),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_hit_rate": self.hit_rate,
            "cache_evictions": self.evictions,
        }

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RankingCache({len(self._data)}/{self.max_entries} entries, "
            f"hit_rate={self.hit_rate:.2f})"
        )


class EncodeCache:
    """Encoded feature matrices keyed by **instance hash alone**.

    The ranking cache keys on (instance, candidate set, model version), so
    a model hot-swap — the continual-learning loop's steady state — cold-
    starts every entry even though the *features* of a repeat instance are
    byte-for-byte what they were under the old version.  This cache holds
    the encoded matrix one level down: keyed by ``instance_hash`` only, a
    repeat instance skips ``encode_many`` entirely regardless of which
    model version answers.

    The candidate-set digest rides along as a guard value, not a key part:
    a request for the same instance with a *different* candidate set is a
    miss (and replaces the entry — per instance, the latest set wins,
    matching the preset-dominated traffic where one instance has one set).

    Bounded by total cached **rows** rather than entry count, since entry
    sizes vary by candidate-set size; eviction is LRU.  Stored matrices
    are read-only and owned by the cache (callers' scratch buffers are
    recycled every pass, so insertion copies).

    Insertion is **on second touch** (default): the first encode of an
    instance only records its key, and the entry is stored when the same
    encode *repeats* — a re-encode after a hot-swap or an eviction, the
    exact demand this cache exists to absorb.  A preset-sized entry is a
    ~44 MB copy (8640 rows × 637 features × float64), so paying it for
    every cold instance would tax the common serving path for a reuse
    that may never come; second-touch insertion keeps the cold path at
    the cost of one dict write.  ``second_touch=False`` stores eagerly.
    """

    #: first-touch keys remembered (ints only; ~2 MB at the cap)
    MAX_FIRST_TOUCH = 65536

    def __init__(self, max_rows: int = 262144, second_touch: bool = True) -> None:
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.max_rows = max_rows
        self.second_touch = second_touch
        self._data: "OrderedDict[int, tuple[int, np.ndarray]]" = OrderedDict()
        #: instance_key -> candidates_hash of a recorded first-touch encode
        self._first_touch: "OrderedDict[int, int]" = OrderedDict()
        self._rows = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: first-touch encodes recorded instead of stored
        self.deferred = 0

    def get(self, instance_key: int, candidates_hash: int) -> "np.ndarray | None":
        """The cached matrix for (instance, this exact candidate set) or None."""
        entry = self._data.get(instance_key)
        if entry is None or entry[0] != candidates_hash:
            self.misses += 1
            return None
        self._data.move_to_end(instance_key)
        self.hits += 1
        return entry[1]

    def put(self, instance_key: int, candidates_hash: int, X: np.ndarray) -> None:
        """Insert an owned, read-only copy; oversized matrices are skipped.

        Under second-touch insertion the first ``put`` for a given
        ``(instance, candidate set)`` records the key and returns without
        copying; the entry is stored when that exact encode repeats.
        """
        rows = int(X.shape[0])
        if rows > self.max_rows:
            return
        if self.second_touch and self._first_touch.get(instance_key) != candidates_hash:
            self._first_touch[instance_key] = candidates_hash
            self._first_touch.move_to_end(instance_key)
            while len(self._first_touch) > self.MAX_FIRST_TOUCH:
                self._first_touch.popitem(last=False)
            self.deferred += 1
            return
        # stored entries must re-prove demand after an eviction, so the
        # first-touch record is consumed, not kept
        self._first_touch.pop(instance_key, None)
        old = self._data.pop(instance_key, None)
        if old is not None:
            self._rows -= old[1].shape[0]
        owned = np.array(X)  # copy — the caller's buffer is scratch
        owned.setflags(write=False)
        self._data[instance_key] = (candidates_hash, owned)
        self._rows += rows
        while self._rows > self.max_rows:
            _, (_, evicted) = self._data.popitem(last=False)
            self._rows -= evicted.shape[0]
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._data.clear()
        self._first_touch.clear()
        self._rows = 0

    def snapshot(self) -> dict:
        return {
            "encode_cache_entries": len(self._data),
            "encode_cache_rows": self._rows,
            "encode_cache_hits": self.hits,
            "encode_cache_misses": self.misses,
            "encode_cache_hit_rate": self.hit_rate,
            "encode_cache_evictions": self.evictions,
            "encode_cache_deferred": self.deferred,
        }

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EncodeCache({len(self._data)} entries, {self._rows}/{self.max_rows} "
            f"rows, hit_rate={self.hit_rate:.2f})"
        )
