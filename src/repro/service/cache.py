"""The LRU ranking cache.

Ranking is deterministic given (instance, candidate set, model version), so
a service answering heavy traffic should never encode the same query twice:
the cache keys on process-stable content hashes — the instance fingerprint
(:func:`repro.stencil.execution.instance_hash`), a digest of the candidate
tunings, and the resolved model version — and stores the computed ordering
plus scores.  A hit is answered without touching the encoder or the model;
eviction is LRU so hot instances (the "millions of users re-tuning the same
kernels" scenario) stay resident.
"""

from __future__ import annotations

import operator
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stencil.execution import instance_hash
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = [
    "CachedRanking",
    "InternedCandidates",
    "RankingCache",
    "candidate_set_hash",
    "intern_candidates",
]

#: C-level attribute fetch for the hot per-request hashing loop
_CONTENT_KEY = operator.attrgetter("content_key")

#: int domain tag mixed into every set digest.  Deliberately *not* a string:
#: str hashes are randomized per process (PYTHONHASHSEED), while int and
#: tuple-of-int hashes are build-stable — and an interned digest computed in
#: a cluster parent must equal the digest its worker would compute for the
#: same content, or repeat requests would never share cache entries.
_SET_DOMAIN = 0x63616E6473  # "cands"


def candidate_set_hash(candidates: Sequence[TuningVector]) -> int:
    """Content digest of an *ordered* candidate set.

    Order matters: the service returns scores aligned with the caller's
    candidate order, so two permutations of the same set are distinct keys.
    Combines the vectors' precomputed ``content_key`` values with one tuple
    hash — this runs once per request on the service hot path, and for a
    preset-sized set it is ~50× cheaper than re-digesting every field.
    Every input to the digest is an int, so the value is stable across
    processes and PYTHONHASHSEED draws (pinned by
    ``tests/cluster/test_hash_properties.py``) — which is what lets
    :class:`InternedCandidates` cross the cluster wire carrying its digest.
    """
    return hash((_SET_DOMAIN, tuple(map(_CONTENT_KEY, candidates))))


@dataclass(frozen=True)
class InternedCandidates:
    """A candidate set hashed **once** and reused across requests.

    Clients that re-rank the same explicit candidate set for many instances
    (a compiler driving one tuning space over a kernel suite, a sweep over
    sizes) would otherwise pay :func:`candidate_set_hash` on every request.
    Interning moves that cost to construction time: the service recognizes
    the interned object and reuses the precomputed digest, exactly like its
    own default preset sets.  The tuple is shared, never copied — responses
    never mutate candidate lists.
    """

    candidates: tuple[TuningVector, ...]
    content_hash: int

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


def intern_candidates(candidates: Sequence[TuningVector]) -> InternedCandidates:
    """Intern an ordered candidate set for repeated service requests."""
    if isinstance(candidates, InternedCandidates):
        return candidates
    frozen = tuple(candidates)
    return InternedCandidates(frozen, candidate_set_hash(frozen))


@dataclass(frozen=True)
class CachedRanking:
    """A memoized ranking answer.

    ``order[j]`` is the index (into the request's candidate list) of the
    ``j``-th best candidate; ``scores`` stays aligned with the candidate
    list.  Both are stored read-only so cache hits can share arrays safely.
    ``ranked`` optionally carries the materialized best-first candidate
    list: entries are value-identical for every request sharing this key
    (the key digests candidate content), so hits hand out shallow copies
    instead of rebuilding preset-sized lists.
    """

    order: np.ndarray
    scores: np.ndarray
    model_version: str
    ranked: "list[TuningVector] | None" = None

    def __post_init__(self) -> None:
        self.order.setflags(write=False)
        self.scores.setflags(write=False)

    def materialize(self, candidates: Sequence[TuningVector]) -> list[TuningVector]:
        """The full best-first list, built on first demand and memoized.

        Entries created by top-k-only requests skip materializing the full
        ranking; a later full-ranking request for the same key pays the
        list build once, here, and every subsequent hit shares it.
        """
        if self.ranked is None:
            object.__setattr__(
                self, "ranked", [candidates[i] for i in self.order.tolist()]
            )
        return self.ranked


class RankingCache:
    """LRU cache keyed by (instance hash, candidate-set hash, model version)."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._data: OrderedDict[tuple[int, int, str], CachedRanking] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: entries dropped by LRU pressure or version invalidation — the
        #: cluster telemetry watches this to spot undersized worker caches
        self.evictions = 0

    @staticmethod
    def key(
        instance: StencilInstance,
        candidates: Sequence[TuningVector],
        model_version: str,
    ) -> tuple[int, int, str]:
        """The cache key for one ranking query (content-based, stable)."""
        return (instance_hash(instance), candidate_set_hash(candidates), model_version)

    def get(self, key: tuple[int, int, str]) -> "CachedRanking | None":
        """Look up a key, counting the hit/miss and refreshing recency."""
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple[int, int, str], value: CachedRanking) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0 before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def invalidate_version(self, model_version: str) -> int:
        """Drop every entry computed by ``model_version``; returns the count."""
        stale = [k for k in self._data if k[2] == model_version]
        for k in stale:
            del self._data[k]
        self.evictions += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._data.clear()

    def snapshot(self) -> dict:
        """Cache statistics for telemetry reports."""
        return {
            "cache_entries": len(self._data),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_hit_rate": self.hit_rate,
            "cache_evictions": self.evictions,
        }

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RankingCache({len(self._data)}/{self.max_entries} entries, "
            f"hit_rate={self.hit_rate:.2f})"
        )
