"""The socket transport: framed connections that duck-type a worker pipe.

Everything cluster-side — reader threads, dispatch, chaos injection,
shutdown — talks to a worker through four methods: ``send(obj)``,
``send_bytes(buf)``, ``recv_bytes()`` and ``close()``.
:class:`SocketConnection` implements exactly that contract over a TCP
(or any stream) socket using the length-prefixed codec in
:mod:`repro.service.frames`, so the coordinator and worker run the same
code whether the peer is a forked process on a pipe, a forked process on
a loopback socket, or a worker on another host:

* ``send(obj)`` pickles and writes one frame (one ``sendall`` under a
  lock, so concurrent senders never interleave frame bytes);
* ``send_bytes(buf)`` frames *raw payload bytes* — which is what keeps
  the chaos drill's ``send_corrupt_frame`` honest on sockets: the frame
  header stays valid, the garbage is confined to the payload, and the
  receiver classifies it as payload corruption (one lost frame) instead
  of destroying the stream's framing;
* ``recv_bytes()`` returns one frame's payload, raising the decoder's
  deterministic error ladder (clean :class:`EOFError` at a boundary,
  :class:`~repro.service.ipc.CorruptFrameError` for truncation or a
  corrupt header, EOF forever after poison) — the same exceptions every
  existing pipe reader loop already handles;
* errors from a dying peer surface as ``EOFError``/``OSError``, exactly
  like a pipe, so crash rerouting and circuit breaking work unchanged.

Address helpers (:func:`parse_address`, :func:`listen`, :func:`dial`,
:func:`accept_connection`) keep the socket minutiae — ``SO_REUSEADDR``,
``TCP_NODELAY`` (a reply frame must not sit in Nagle's buffer behind a
40 ms timer), accept/dial timeouts — out of the cluster.
"""

from __future__ import annotations

import socket
import threading

from repro.service.frames import FrameDecoder, frame_bytes

__all__ = [
    "SocketConnection",
    "accept_connection",
    "dial",
    "format_address",
    "listen",
    "parse_address",
]

#: per-recv read size: large enough to drain a coalesced ReplyBatch in
#: few syscalls, small enough not to bloat per-connection buffers
_RECV_CHUNK = 1 << 16


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (bracketed IPv6 supported)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"address must look like 'host:port', got {address!r}")
    return host.strip("[]") or "127.0.0.1", int(port)


def format_address(host: str, port: int) -> str:
    """``(host, port)`` → the ``"host:port"`` form configs and logs use."""
    return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"


def listen(host: str = "127.0.0.1", port: int = 0, backlog: int = 16) -> socket.socket:
    """A bound, listening TCP socket (``port=0`` picks a free one)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


def dial(address: "str | tuple[str, int]", timeout_s: float = 10.0) -> "SocketConnection":
    """Connect to a listener; raises :class:`OSError` on refusal/timeout."""
    host, port = parse_address(address) if isinstance(address, str) else address
    sock = socket.create_connection((host, port), timeout=timeout_s)
    return SocketConnection(sock)


def accept_connection(listener: socket.socket, timeout_s: float = 10.0) -> "SocketConnection":
    """Accept one framed connection; raises :class:`OSError` on timeout."""
    listener.settimeout(timeout_s)
    try:
        sock, _ = listener.accept()
    except socket.timeout as exc:  # normalize: callers catch OSError
        raise TimeoutError(
            f"no connection accepted within {timeout_s}s"
        ) from exc
    return SocketConnection(sock)


class SocketConnection:
    """One framed stream connection, pipe-shaped for the cluster's code."""

    def __init__(self, sock: socket.socket) -> None:
        sock.settimeout(None)  # blocking reads; close()/shutdown() unblocks
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (a socketpair in tests): latency knob N/A
        self._sock = sock
        self._decoder = FrameDecoder()
        self._send_lock = threading.Lock()
        self._closed = False

    # -- sending ---------------------------------------------------------------

    def send(self, obj: object) -> None:
        """Pickle ``obj`` and write it as one frame."""
        import pickle

        self.send_bytes(pickle.dumps(obj))

    def send_bytes(self, payload: bytes) -> None:
        """Frame and write raw payload bytes (one atomic sendall)."""
        if self._closed:
            raise OSError("connection is closed")
        frame = frame_bytes(bytes(payload))
        with self._send_lock:
            self._sock.sendall(frame)

    # -- receiving -------------------------------------------------------------

    def recv_bytes(self) -> bytes:
        """Block for one frame's payload bytes.

        Raises the frame layer's deterministic ladder: ``EOFError`` for a
        clean peer close (or any read after poison),
        :class:`~repro.service.ipc.CorruptFrameError` for truncation or a
        corrupt header, ``OSError`` for transport-level failures.
        """
        decoder = self._decoder
        while True:
            payload = decoder.next_payload()  # raises at/after stream end
            if payload is not None:
                return payload
            if self._closed:
                raise EOFError("connection closed locally")
            try:
                data = self._sock.recv(_RECV_CHUNK)
            except OSError:
                if self._closed:
                    # a concurrent close() raced the blocking read: that
                    # is shutdown, not a transport fault
                    raise EOFError("connection closed locally") from None
                raise
            if not data:
                decoder.feed_eof()
            else:
                decoder.feed(data)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close both directions (idempotent); unblocks a pending recv."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # peer already gone
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def fileno(self) -> int:
        return self._sock.fileno()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            peer = self._sock.getpeername()
        except OSError:
            peer = "<disconnected>"
        return f"SocketConnection(peer={peer}, closed={self._closed})"
