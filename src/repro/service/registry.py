"""The versioned model registry.

Training is the expensive phase; serving reuses its artifact many times —
possibly across machines and across model generations.  The registry gives
trained models a home with the operations a serving layer needs:

* **versions** — every published model gets a monotonically increasing id
  (``v0001``, ``v0002``, …) and an immutable archive + metadata pair;
* **tags** — mutable names (``prod``, ``canary``) mapping to versions, so a
  running service can be repointed without restarting (``latest`` is a
  built-in dynamic tag for the newest version);
* **fingerprint validation** — the encoder fingerprint is stored in both
  the archive and the metadata, and checked on load, so a registry shared
  by several encoder layouts can never hand out a mismatched model;
* **atomic writes** — archives ride :func:`repro.learn.model_io.save_model`
  (temp file + ``os.replace``), and metadata/tag files are replaced the
  same way, so concurrent readers never observe torn state.

* **corruption containment** — ``tags.json`` (the one *mutable* shared
  file) is written as a checksummed envelope and mirrored to
  ``tags.json.bak``; a reader that finds the primary torn or bit-flipped
  (checksum mismatch, non-JSON bytes) counts the corruption and answers
  from the mirror, and the next tag write repairs the primary.  Archives
  are immutable, so a corrupted one cannot be repaired — but a dynamic
  ``latest`` load that hits one falls back to the newest older version
  that still loads (``corruption_fallbacks`` counts these), keeping a
  serving worker answering instead of erroring on every request.

Layout under the registry root::

    root/
      models/v0001.npz     immutable model archive
      models/v0001.json    metadata (version, fingerprint, note, counts)
      tags.json            mutable tag -> version map (checksummed envelope)
      tags.json.bak        last-good mirror of tags.json
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import re
import time
from pathlib import Path

from repro.learn.model_io import load_model, save_model
from repro.learn.ranksvm import RankSVM

__all__ = ["ModelRegistry"]

_VERSION_RE = re.compile(r"^v(\d{4,})$")
#: dynamic built-in tag: always the highest published version
LATEST = "latest"
#: format marker of the checksummed tags envelope
_TAGS_FORMAT = "tags-v2"


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _tags_digest(tags: "dict[str, str]") -> str:
    """Content checksum of a tag map (canonical JSON, key-sorted)."""
    canon = json.dumps(tags, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def _encode_tags(tags: "dict[str, str]") -> dict:
    """The checksummed on-disk envelope of a tag map."""
    return {"format": _TAGS_FORMAT, "sha256": _tags_digest(tags), "tags": tags}


def _decode_tags(raw: bytes) -> "dict[str, str]":
    """Parse + verify a tags file; raises :class:`ValueError` on corruption.

    Accepts both the checksummed envelope and the legacy plain
    ``{tag: version}`` map (registries written before the envelope
    existed have no checksum to verify — they upgrade on their next tag
    write).
    """
    data = json.loads(raw)  # JSONDecodeError is a ValueError
    if not isinstance(data, dict):
        raise ValueError("tags file is not a JSON object")
    if data.get("format") == _TAGS_FORMAT:
        tags = data.get("tags")
        if not isinstance(tags, dict) or _tags_digest(tags) != data.get("sha256"):
            raise ValueError("tags checksum mismatch")
        return tags
    if all(isinstance(k, str) and isinstance(v, str) for k, v in data.items()):
        return data  # legacy plain map
    raise ValueError("unrecognized tags payload")


#: load_model error prefixes that mean "the bytes are bad", as opposed to
#: a fingerprint mismatch (which is a *policy* error and must propagate)
_CORRUPTION_PREFIXES = ("corrupted or unreadable model archive", "unsupported model format")


def _is_corruption_error(exc: Exception) -> bool:
    if isinstance(exc, json.JSONDecodeError):
        return True  # metadata file itself is garbage
    return isinstance(exc, ValueError) and str(exc).startswith(_CORRUPTION_PREFIXES)


class ModelRegistry:
    """Versioned, tagged, fingerprint-validated store of trained models."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.models_dir = self.root / "models"
        self.models_dir.mkdir(parents=True, exist_ok=True)
        self._tags_path = self.root / "tags.json"
        self._bak_path = self.root / "tags.json.bak"
        #: (raw bytes, parsed map) of the last tags.json read — a serving
        #: worker re-resolves its tag on *every* micro-batch, so the poll
        #: must cost a small read, not a JSON parse (see tags())
        self._tags_cache: "tuple[bytes, dict[str, str]] | None" = None
        self._bak_cache: "tuple[bytes, dict[str, str]] | None" = None
        #: last corrupt primary bytes seen (so one corruption counts once,
        #: not once per poll)
        self._last_corrupt_raw: "bytes | None" = None
        #: distinct corrupted tags.json contents this handle detected
        self.corruption_detected = 0
        #: dynamic loads served by an older version after archive corruption
        self.corruption_fallbacks = 0
        #: optional observer called as ``on_tag(name, version)`` after every
        #: successful tag write (``AuditJournal.attach_registry`` sets it)
        self.on_tag = None

    # -- publishing ------------------------------------------------------------

    def publish(
        self,
        model: RankSVM,
        encoder_fingerprint: str,
        tags: "tuple[str, ...] | list[str]" = (),
        note: str = "",
    ) -> str:
        """Store a fitted model as the next version; returns its id.

        The version id is reserved with an exclusive-create claim file, so
        concurrent publishers (several trainers sharing one registry root)
        can never allocate the same id and overwrite each other.  The
        archive lands atomically before the metadata, and the metadata
        before any tag moves — a crash can leave an orphaned archive or a
        stale claim (which just skips that id) but never a resolvable
        version without its model.
        """
        version, claim = self._reserve_version()
        try:
            archive = save_model(
                model, self.models_dir / f"{version}.npz", encoder_fingerprint
            )
            meta = {
                "version": version,
                "encoder_fingerprint": encoder_fingerprint,
                "note": note,
                "num_pairs": model.num_pairs_,
                "num_features": int(model.w_.size),
                "created_unix_s": time.time(),
                "archive": archive.name,
            }
            _atomic_write_json(self.models_dir / f"{version}.json", meta)
        finally:
            # the metadata (if written) now holds the id; drop the claim
            # only on success so a failed publish keeps the id burned
            # rather than reusable mid-flight
            if (self.models_dir / f"{version}.json").exists():
                claim.unlink(missing_ok=True)
        for tag in tags:
            self.tag(tag, version)
        return version

    def _next_version(self) -> str:
        """Smallest unused id, counting published, claimed and orphaned files."""
        taken = [0]
        for path in self.models_dir.glob("v*"):
            m = _VERSION_RE.match(path.stem)
            if m and path.suffix in (".json", ".claim", ".npz"):
                taken.append(int(m.group(1)))
        return f"v{max(taken) + 1:04d}"

    def _reserve_version(self) -> "tuple[str, Path]":
        """Atomically allocate the next version id via an exclusive create."""
        while True:
            version = self._next_version()
            claim = self.models_dir / f"{version}.claim"
            try:
                claim.touch(exist_ok=False)
            except FileExistsError:  # raced by another publisher; rescan
                continue
            return version, claim

    # -- resolution ------------------------------------------------------------

    def versions(self) -> list[str]:
        """All published version ids, oldest first."""
        found = []
        for path in self.models_dir.glob("v*.json"):
            m = _VERSION_RE.match(path.stem)
            if m:
                found.append((int(m.group(1)), path.stem))
        return [name for _, name in sorted(found)]

    def tags(self) -> dict[str, str]:
        """The current tag → version map (excluding the dynamic ``latest``).

        The parse is memoized against the file's raw bytes: the file is a
        few dozen bytes, so re-reading it is a cheap syscall, and keying
        the cache on content (rather than a stat signature, which can
        alias when an inode is recycled within one filesystem timestamp
        tick) means a moved tag can never be served stale — this is the
        cross-process poll that lets every cluster worker observe a
        promotion within one micro-batch.

        A corrupted primary (torn write, flipped bits — the envelope's
        checksum or the JSON itself fails) is counted
        (``corruption_detected``) and answered from the ``tags.json.bak``
        mirror, *read-only*: repairing here would need the tag lock, and a
        reader racing a writer holding it must never block or clobber the
        writer's update — the next :meth:`tag` write rewrites both files
        and thereby repairs the primary.
        """
        try:
            raw = self._tags_path.read_bytes()
        except FileNotFoundError:
            return {}
        cached = self._tags_cache
        if cached is not None and cached[0] == raw:
            return dict(cached[1])
        try:
            parsed = _decode_tags(raw)
        except ValueError:
            if raw != self._last_corrupt_raw:
                self.corruption_detected += 1
                self._last_corrupt_raw = raw
            return self._tags_from_backup()
        self._tags_cache = (raw, parsed)
        return dict(parsed)

    def _tags_from_backup(self) -> "dict[str, str]":
        """Last-good tags from the mirror ({} when it is absent or bad too)."""
        try:
            raw = self._bak_path.read_bytes()
        except FileNotFoundError:
            return {}
        cached = self._bak_cache
        if cached is None or cached[0] != raw:
            try:
                cached = (raw, _decode_tags(raw))
            except ValueError:  # both copies bad: resolve tags as unknown
                return {}
            self._bak_cache = cached
        return dict(cached[1])

    def tag(self, name: str, ref: str) -> str:
        """Point tag ``name`` at the version ``ref`` resolves to.

        The read-modify-write of ``tags.json`` runs under an advisory file
        lock, so concurrent publishers tagging different names cannot lose
        each other's updates.  The map is written as a checksummed
        envelope and mirrored to ``tags.json.bak`` (primary first): a
        crash between the two leaves a valid primary and a stale mirror,
        which only matters if the primary *also* corrupts before the next
        write — and then the mirror still serves the last-good map.  A
        corrupted primary found here is repaired by this write.
        """
        if _VERSION_RE.match(name) or name == LATEST:
            raise ValueError(f"tag name {name!r} is reserved")
        with open(self.root / "tags.lock", "w") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            # resolve under the lock: gc() holds the same lock while it
            # deletes, so the target cannot vanish between the existence
            # check and the tag write (no dangling tags)
            version = self.resolve(ref)
            tags = self.tags()
            tags[name] = version
            payload = _encode_tags(tags)
            _atomic_write_json(self._tags_path, payload)
            _atomic_write_json(self._bak_path, payload)
        if self.on_tag is not None:
            self.on_tag(name, version)
        return version

    def resolve(self, ref: str) -> str:
        """Resolve a version id, a tag, or ``latest`` to a version id."""
        if ref == LATEST:
            versions = self.versions()
            if not versions:
                raise KeyError("registry is empty; publish a model first")
            return versions[-1]
        if _VERSION_RE.match(ref):
            if not (self.models_dir / f"{ref}.json").exists():
                raise KeyError(f"unknown model version {ref!r}")
            return ref
        tags = self.tags()
        if ref in tags:
            return tags[ref]
        raise KeyError(
            f"unknown model reference {ref!r}; "
            f"versions: {self.versions()}, tags: {sorted(tags)}"
        )

    # -- retention -------------------------------------------------------------

    def gc(self, keep_last: int = 3, dry_run: bool = False) -> list[str]:
        """Delete old, untagged versions; returns the (would-be) victims.

        Retention policy: the newest ``keep_last`` versions and every
        tagged version survive; everything else is removed.  Continual
        promotion publishes a version per retraining round, so without gc
        the store grows unboundedly — this is the bound.

        * ``dry_run=True`` reports the victims without touching anything.
        * Runs under the same advisory lock as :meth:`tag`, so a concurrent
          ``tag()`` cannot grab a version mid-deletion, and gc never races
          another gc.
        * Metadata is deleted before the archive: a crash between the two
          leaves an orphaned ``.npz``, which is unresolvable (resolution
          goes through metadata) and — like claim files — keeps its id
          burned, so version ids are never reused.
        """
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        with open(self.root / "tags.lock", "w") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            versions = self.versions()
            protected = set(versions[-keep_last:]) | set(self.tags().values())
            victims = [v for v in versions if v not in protected]
            if not dry_run:
                for version in victims:
                    (self.models_dir / f"{version}.json").unlink(missing_ok=True)
                    (self.models_dir / f"{version}.npz").unlink(missing_ok=True)
        return victims

    # -- loading ---------------------------------------------------------------

    def describe(self, ref: str) -> dict:
        """Metadata of the version ``ref`` resolves to."""
        version = self.resolve(ref)
        return json.loads((self.models_dir / f"{version}.json").read_text())

    def load(self, ref: str = LATEST, expect_fingerprint: "str | None" = None) -> RankSVM:
        """Load the model ``ref`` resolves to, validating the fingerprint.

        The check runs against both the registry metadata and the
        fingerprint embedded in the archive itself, so neither a stale
        metadata file nor a swapped archive can slip through.

        Resolution and the file reads are not one atomic step, so a
        concurrent ``tag()`` + :meth:`gc` in another process can delete
        the resolved version between them.  A tag or ``latest`` ref
        retries against a fresh resolution (the mover's lock ordering
        guarantees the *new* target exists, so each retry fails only if a
        whole further move+gc cycle lands inside the read window); a
        vanished concrete version id surfaces as :class:`KeyError`, same
        as one never published.

        Corruption fallback: a **dynamic** ``latest`` load whose resolved
        archive (or metadata) turns out corrupted falls back to the
        newest *older* version that still loads and validates — serving
        yesterday's model beats serving nothing, and
        ``corruption_fallbacks`` counts every such save.  A concrete
        version id or a tag gets no such silent substitution: the caller
        named a specific model (or an operator pinned a tag to one), and
        handing back a different version would be a lie — the
        :class:`ValueError` propagates.
        """
        attempts = 3
        for attempt in range(attempts):
            version = self.resolve(ref)
            try:
                return self._load_version(version, expect_fingerprint)
            except FileNotFoundError:
                if attempt == attempts - 1 or ref == version:
                    raise KeyError(
                        f"model version {version!r} disappeared while loading "
                        f"(garbage-collected by a concurrent retention pass)"
                    ) from None
            except ValueError as exc:
                if ref == LATEST and _is_corruption_error(exc):
                    fallback = self._load_last_good(version, expect_fingerprint)
                    if fallback is not None:
                        self.corruption_fallbacks += 1
                        return fallback
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _load_version(self, version: str, expect_fingerprint: "str | None") -> RankSVM:
        """Load one concrete version, validating metadata + archive."""
        meta = json.loads((self.models_dir / f"{version}.json").read_text())
        if (
            expect_fingerprint is not None
            and meta.get("encoder_fingerprint") != expect_fingerprint
        ):
            raise ValueError(
                f"encoder fingerprint mismatch for {version}: registry has "
                f"{meta.get('encoder_fingerprint')!r}, expected {expect_fingerprint!r}"
            )
        return load_model(
            self.models_dir / f"{version}.npz",
            expect_fingerprint=expect_fingerprint,
        )

    def _load_last_good(
        self, bad_version: str, expect_fingerprint: "str | None"
    ) -> "RankSVM | None":
        """The newest version older than ``bad_version`` that still loads."""
        bad = int(bad_version[1:])
        older = [v for v in self.versions() if int(v[1:]) < bad]
        for version in reversed(older):
            try:
                return self._load_version(version, expect_fingerprint)
            except (FileNotFoundError, ValueError):
                continue  # also bad (or incompatible): keep descending
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelRegistry({str(self.root)!r}, versions={self.versions()})"
