"""Multi-process serving: a cluster of tuning-service workers behind one registry.

A single :class:`~repro.service.server.TuningService` is one core of
encode+score.  :class:`ServiceCluster` is the scale-out unit the serving
docs promised: N worker processes, each running its own service (own event
loop, own :class:`~repro.service.cache.RankingCache`, own telemetry), all
reading the **same on-disk**
:class:`~repro.service.registry.ModelRegistry`.

::

     submit(instance, …)                     ┌───────────────────────────┐
          │   instance_hash ── ShardRouter ──▶ worker 0  TuningService   │
          │   (rendezvous,      │            │ worker 1  TuningService   │──┐
          ▼    affine)          └───────────▶│ worker …  (per-worker     │  │
     Future[ClusterResponse] ◀── replies ────│            cache+stats)   │  │
                                             └─────────────┬─────────────┘  │
                                                 ModelRegistry (shared root,│
                                                 tags.json re-resolved per  │
                                                 batch → cluster-wide hot   │
                                                 swap on one tag move) ◀────┘

Properties the ``tests/cluster/`` suites pin:

* **bit-identical rankings** — every worker loads the same archive bytes
  and runs the same fused encode + ``X @ w`` + stable argsort, so a
  cluster answer equals ``OrdinalAutotuner.rank_candidates`` exactly, for
  any worker count;
* **instance affinity** — routing is rendezvous hashing over the alive
  set (:class:`~repro.service.routing.ShardRouter`), so one instance
  always hits one worker and per-worker caches stay hot;
* **atomic hot swap** — a promotion is one atomic tag write; each worker
  re-resolves tags per micro-batch, so every in-flight answer is computed
  end-to-end by exactly one version (old or new, never a mixture);
* **crash containment** — a killed worker's unanswered requests are
  requeued to the surviving shards (ranking is pure, so re-execution is
  safe), the router stops sending it traffic, and (by default) a
  replacement process is spawned; the registry and the other workers'
  caches are untouched;
* **feedback rides the wire** — with ``feedback_every >= 1`` each worker
  streams every Nth successful answer back as a
  :class:`~repro.service.ipc.FeedbackRecord`; the parent rehydrates
  preset candidate sets from its own memo and fans records out to
  :meth:`add_feedback_listener` observers, which is how one
  coordinator-side continual-learning collector (one probing budget, one
  drift monitor) sees the whole cluster's traffic.

The parent API is thread-friendly (``submit`` returns a
``concurrent.futures.Future``) with an async adapter (:meth:`rank`), so
both sync drivers and asyncio applications can use the cluster directly.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing as mp
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.service.cache import InternedCandidates
from repro.service.ipc import (
    ErrorReply,
    FeedbackRecord,
    RankReply,
    RankRequest,
    Shutdown,
    StatsReply,
    StatsRequest,
)
from repro.service.registry import LATEST
from repro.service.routing import ShardRouter
from repro.service.telemetry import merge_stats
from repro.service.worker import WorkerConfig, worker_main
from repro.stencil.execution import instance_hash
from repro.stencil.instance import StencilInstance
from repro.tuning.presets import preset_candidates
from repro.tuning.vector import TuningVector

__all__ = ["ClusterResponse", "ServiceCluster"]


def _settle(future: "concurrent.futures.Future", value=None, error: "Exception | None" = None) -> None:
    """Resolve a future, tolerating a client cancelling it concurrently.

    ``submit()`` hands out plain futures, so a caller may ``cancel()``
    one at any moment — including between a ``done()`` check and the
    ``set_result`` call.  The resulting ``InvalidStateError`` must never
    escape into a reader thread: a dead reader would leave its worker
    routed but unread, hanging the whole shard.
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)
    except concurrent.futures.InvalidStateError:
        pass  # cancelled (or already settled) by the caller: drop the answer


@dataclass(frozen=True)
class ClusterResponse:
    """One answered cluster query."""

    #: candidates best-first (truncated to ``top_k`` when requested)
    ranked: list[TuningVector]
    #: full score array aligned with the request's candidate order
    #: (None when the request set ``include_scores=False``)
    scores: "np.ndarray | None"
    #: the concrete model version that produced the answer
    model_version: str
    #: whether the owning worker's ranking cache answered
    cached: bool
    #: parent-observed submit-to-answer latency, in seconds
    latency_s: float
    #: queue-to-answer latency inside the worker's service
    service_latency_s: float
    #: which worker answered (affinity: stable per instance)
    worker_id: int
    #: how many times the request was (re)dispatched (1 = no crash on its path)
    attempts: int

    @property
    def best(self) -> TuningVector:
        """The top-ranked configuration."""
        return self.ranked[0]


@dataclass
class _PendingReq:
    """A dispatched request awaiting its reply (or a re-dispatch)."""

    req_id: int
    instance: StencilInstance
    candidates: "Sequence[TuningVector] | InternedCandidates | None"
    model_ref: str
    top_k: "int | None"
    include_scores: bool
    future: "concurrent.futures.Future[ClusterResponse]"
    submitted_at: float
    attempts: int = 0


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    worker_id: int
    process: "mp.process.BaseProcess"
    conn: object  # multiprocessing.connection.Connection
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    pending: "dict[int, _PendingReq]" = field(default_factory=dict)
    stats_pending: "dict[int, concurrent.futures.Future]" = field(default_factory=dict)
    reader: "threading.Thread | None" = None
    dead: bool = False
    restarts: int = 0


class ServiceCluster:
    """Instance-affine, crash-tolerant multi-process tuning service.

    Usage::

        with ServiceCluster(registry_root, n_workers=4) as cluster:
            future = cluster.submit(instance)          # thread-friendly
            best = future.result().best
            response = await cluster.rank(instance)    # or async
    """

    def __init__(
        self,
        registry_root: "str | Path",
        n_workers: int = 4,
        default_model: str = LATEST,
        start_method: "str | None" = None,
        restart_workers: bool = True,
        max_restarts: int = 3,
        max_batch_size: int = 64,
        max_batch_delay_s: float = 0.002,
        cache_entries: int = 4096,
        latency_window: int = 4096,
        max_cached_models: int = 8,
        max_rows_per_pass: int = 32768,
        feedback_every: int = 0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if feedback_every < 0:
            raise ValueError(f"feedback_every must be >= 0, got {feedback_every}")
        self.registry_root = str(registry_root)
        self.n_workers = n_workers
        self.restart_workers = restart_workers
        self.max_restarts = max_restarts
        self.config = WorkerConfig(
            default_model=default_model,
            max_batch_size=max_batch_size,
            max_batch_delay_s=max_batch_delay_s,
            cache_entries=cache_entries,
            latency_window=latency_window,
            max_cached_models=max_cached_models,
            max_rows_per_pass=max_rows_per_pass,
            feedback_every=feedback_every,
        )
        self._ctx = _context(start_method)
        self.router = ShardRouter(range(n_workers))
        for worker_id in range(n_workers):  # routable only once spawned
            self.router.mark_dead(worker_id)
        self._workers: dict[int, _WorkerHandle] = {}
        self._lock = threading.RLock()
        self._req_ids = iter(range(1, 1 << 62)).__next__
        self._started = False
        self._stopping = False
        #: worker exits observed outside a clean stop
        self.crashes = 0
        #: chronological worker lifecycle events (spawn/exit/restart)
        self.events: list[dict] = []
        #: observers called with (instance, candidates, record) per
        #: worker-streamed FeedbackRecord — the cluster-level analogue of
        #: TuningService.add_response_hook
        self._feedback_listeners: list[
            Callable[[StencilInstance, Sequence[TuningVector], FeedbackRecord], None]
        ] = []
        #: FeedbackRecords received from workers (all listeners included)
        self.feedback_received = 0
        #: exceptions swallowed from feedback listeners (serving never breaks)
        self.feedback_errors = 0
        self.last_feedback_error: "Exception | None" = None
        #: dims -> regenerated preset list for candidates=None records
        #: (same content the workers serve, regenerated once per parent)
        self._preset_sets: dict[int, list[TuningVector]] = {}

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ServiceCluster":
        """Spawn the worker processes (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._stopping = False
            self._started = True
        for worker_id in range(self.n_workers):
            self._spawn(worker_id)
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        """Drain every accepted request, then stop all workers."""
        with self._lock:
            if not self._started:
                return
            self._stopping = True
            handles = list(self._workers.values())
        for handle in handles:
            try:
                with handle.send_lock:
                    handle.conn.send(Shutdown())
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout_s
        for handle in handles:
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():  # pragma: no cover - hung worker
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            # the dead process's pipe EOF wakes the reader; joining it
            # before closing the connection keeps close() and recv() from
            # ever running concurrently
            if handle.reader is not None:
                handle.reader.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._lock:
            stranded = [
                p for h in self._workers.values() for p in h.pending.values()
            ]
            self._workers.clear()
            for worker_id in self.router.alive():
                self.router.mark_dead(worker_id)
            self._started = False
        for pending in stranded:  # pragma: no cover - drain failed
            _settle(
                pending.future,
                error=RuntimeError("cluster stopped before the request was answered"),
            )

    def __enter__(self) -> "ServiceCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the cluster is accepting requests."""
        return self._started and not self._stopping

    def alive_workers(self) -> tuple[int, ...]:
        """Worker ids currently routable."""
        return self.router.alive()

    # -- request API -----------------------------------------------------------

    def submit(
        self,
        instance: StencilInstance,
        candidates: "Sequence[TuningVector] | InternedCandidates | None" = None,
        model: "str | None" = None,
        top_k: "int | None" = None,
        include_scores: bool = True,
    ) -> "concurrent.futures.Future[ClusterResponse]":
        """Route one ranking query to its shard; returns a future.

        ``candidates=None`` uses the owning worker's preset set (nothing
        preset-sized crosses the wire); an
        :class:`~repro.service.cache.InternedCandidates` set ships its
        precomputed digest, which stays valid across the process boundary.
        """
        if not self.running:
            raise RuntimeError("ServiceCluster is not running; call start() first")
        if top_k is not None and top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        pending = _PendingReq(
            req_id=self._req_ids(),
            instance=instance,
            candidates=candidates,
            model_ref=model or self.config.default_model,
            top_k=top_k,
            include_scores=include_scores,
            future=concurrent.futures.Future(),
            submitted_at=time.perf_counter(),
        )
        self._dispatch(pending)
        return pending.future

    async def rank(
        self,
        instance: StencilInstance,
        candidates: "Sequence[TuningVector] | InternedCandidates | None" = None,
        model: "str | None" = None,
        top_k: "int | None" = None,
        include_scores: bool = True,
    ) -> ClusterResponse:
        """Async adapter over :meth:`submit` for asyncio applications."""
        import asyncio

        return await asyncio.wrap_future(
            self.submit(instance, candidates, model, top_k, include_scores)
        )

    def rank_sync(self, instance: StencilInstance, **kwargs: object) -> ClusterResponse:
        """Blocking convenience wrapper: submit and wait."""
        return self.submit(instance, **kwargs).result()  # type: ignore[arg-type]

    # -- feedback stream -------------------------------------------------------

    def add_feedback_listener(
        self,
        listener: Callable[
            [StencilInstance, Sequence[TuningVector], FeedbackRecord], None
        ],
    ) -> None:
        """Register an observer for worker-streamed feedback records.

        Listeners receive ``(instance, candidates, record)`` — candidates
        in the request's order, aligned with ``record.scores`` (preset
        requests are rehydrated from the parent's memo, so the list is
        always concrete).  They run on the owning worker's reader thread
        and must be cheap and thread-safe (append to an intake queue;
        process later) — this is the attachment point for
        :class:`~repro.online.feedback.ClusterFeedbackCollector`.  A
        raising listener is counted (``feedback_errors``) and never
        disturbs the reply path.

        The stream only carries records when the cluster was built with
        ``feedback_every >= 1`` — listeners on a cluster that never armed
        worker-side streaming observe nothing.
        """
        self._feedback_listeners.append(listener)

    def remove_feedback_listener(self, listener: Callable) -> None:
        """Unregister a previously added feedback listener (no-op if absent)."""
        try:
            self._feedback_listeners.remove(listener)
        except ValueError:
            pass

    def _on_feedback(self, record: FeedbackRecord) -> None:
        """Rehydrate one streamed record and fan it out to the listeners.

        Runs on the owning worker's reader thread: counters are guarded
        by the cluster lock (a bare ``+=`` would lose increments between
        concurrent readers), listeners are called outside it.
        """
        with self._lock:
            self.feedback_received += 1
        candidates = (
            self._presets(record.instance.dims)
            if record.candidates is None
            else record.candidates
        )
        for listener in list(self._feedback_listeners):
            try:
                listener(record.instance, candidates, record)
            except Exception as exc:
                with self._lock:
                    self.feedback_errors += 1
                    self.last_feedback_error = exc

    def _presets(self, dims: int) -> list[TuningVector]:
        """The preset candidate list for ``dims``, regenerated + memoized.

        Bit-identical to every worker's own preset set (both sides call
        :func:`~repro.tuning.presets.preset_candidates`), so a record that
        shipped ``candidates=None`` grades against exactly the list the
        worker scored.
        """
        cached = self._preset_sets.get(dims)
        if cached is None:
            # no lock: two reader threads racing here both generate the
            # identical list; setdefault keeps one winner and the loser's
            # copy is content-equal anyway
            cached = self._preset_sets.setdefault(dims, preset_candidates(dims))
        return cached

    # -- telemetry -------------------------------------------------------------

    def stats(self, timeout_s: float = 10.0) -> dict:
        """Aggregated cluster telemetry plus each worker's own snapshot.

        ``cluster`` merges every worker's counters (summed totals, merged
        hit rate, cluster-wide p50/p99 over the concatenated latency
        windows — see :func:`repro.service.telemetry.merge_stats`);
        ``workers`` maps worker id to its raw ``service.stats()``.
        """
        futures: dict[int, concurrent.futures.Future] = {}
        with self._lock:
            handles = [
                self._workers[w] for w in self.router.alive() if w in self._workers
            ]
            for handle in handles:
                req_id = self._req_ids()
                fut: concurrent.futures.Future = concurrent.futures.Future()
                handle.stats_pending[req_id] = fut
                futures[handle.worker_id] = fut
                try:
                    with handle.send_lock:
                        handle.conn.send(StatsRequest(req_id=req_id))
                except (BrokenPipeError, OSError):
                    handle.stats_pending.pop(req_id, None)
                    _settle(fut, error=RuntimeError("worker pipe closed"))
        replies: dict[int, StatsReply] = {}
        for worker_id, fut in futures.items():
            try:
                replies[worker_id] = fut.result(timeout=timeout_s)
            except Exception:  # dead mid-question: exclude from the merge
                continue
        merged = merge_stats(
            [r.stats for r in replies.values()],
            [r.latency_window for r in replies.values()],
        )
        return {
            "cluster": merged,
            "workers": {w: r.stats for w, r in sorted(replies.items())},
            "alive_workers": list(self.router.alive()),
            "crashes": self.crashes,
            "feedback_received": self.feedback_received,
        }

    # -- fault injection (tests and drills) ------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker — the crash-injection hook the test harness uses."""
        with self._lock:
            handle = self._workers.get(worker_id)
        if handle is None:
            raise KeyError(f"no such worker {worker_id}")
        handle.process.kill()

    # -- internals -------------------------------------------------------------

    def _spawn(self, worker_id: int, restarts: int = 0) -> "_WorkerHandle | None":
        """Start one worker process and register it for routing.

        The expensive part — forking/spawning the process — runs *outside*
        the cluster lock, so a restart never stalls the healthy shards'
        traffic; only the registration (worker map, router, events) is
        locked.  Returns None when the cluster stopped mid-spawn (the
        orphan process is torn down).
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.registry_root, child_conn, self.config),
            name=f"tuning-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # the parent must drop its copy of the child end, or reads on
        # parent_conn would never see EOF when the worker dies
        child_conn.close()
        handle = _WorkerHandle(
            worker_id=worker_id, process=process, conn=parent_conn, restarts=restarts
        )
        handle.reader = threading.Thread(
            target=self._read_replies,
            args=(handle,),
            name=f"cluster-reader-{worker_id}",
            daemon=True,
        )
        with self._lock:
            if self._stopping or not self._started:
                parent_conn.close()
                process.terminate()
                process.join(timeout=5.0)
                return None
            self._workers[worker_id] = handle
            self.router.mark_alive(worker_id)
            self.events.append(
                {
                    "type": "spawn",
                    "worker": worker_id,
                    "restarts": restarts,
                    "pid": process.pid,
                }
            )
        handle.reader.start()
        return handle

    def _read_replies(self, handle: _WorkerHandle) -> None:
        """Reader thread: resolve futures for one worker until its pipe closes."""
        while True:
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                break
            except TypeError:
                # CPython's Connection surfaces a concurrent close() from
                # another thread (stop(), or a crash handler reacting to a
                # failed send) as TypeError from the raw read — treat it
                # exactly like the EOF it is
                break
            if isinstance(msg, (RankReply, ErrorReply)):
                with self._lock:
                    pending = handle.pending.pop(msg.req_id, None)
                if pending is None:
                    continue
                if isinstance(msg, ErrorReply):
                    _settle(pending.future, error=msg.error)
                else:
                    _settle(
                        pending.future,
                        ClusterResponse(
                            ranked=msg.ranked,
                            scores=msg.scores,
                            model_version=msg.model_version,
                            cached=msg.cached,
                            latency_s=time.perf_counter() - pending.submitted_at,
                            service_latency_s=msg.service_latency_s,
                            worker_id=msg.worker_id,
                            attempts=pending.attempts,
                        ),
                    )
            elif isinstance(msg, StatsReply):
                with self._lock:
                    fut = handle.stats_pending.pop(msg.req_id, None)
                if fut is not None:
                    _settle(fut, msg)
            elif isinstance(msg, FeedbackRecord):
                self._on_feedback(msg)
        self._on_worker_exit(handle)

    def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        """Crash path: unroute, requeue the dead worker's shard, maybe restart."""
        with self._lock:
            if handle.dead or self._stopping:
                return
            handle.dead = True
            self.crashes += 1
            self.router.mark_dead(handle.worker_id)
            orphans = list(handle.pending.values())
            handle.pending.clear()
            stats_orphans = list(handle.stats_pending.values())
            handle.stats_pending.clear()
            if self._workers.get(handle.worker_id) is handle:
                del self._workers[handle.worker_id]
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            restart = self.restart_workers and handle.restarts < self.max_restarts
            self.events.append(
                {
                    "type": "worker-exit",
                    "worker": handle.worker_id,
                    "requeued": len(orphans),
                    "restarted": restart,
                }
            )
        handle.process.join(timeout=5.0)  # reap; already exited
        for fut in stats_orphans:
            _settle(fut, error=RuntimeError("worker died before answering stats"))
        if restart:  # outside the lock: a restart must not stall other shards
            self._spawn(handle.worker_id, restarts=handle.restarts + 1)
        # requeue after the replacement is routable: ranking is pure, so
        # re-executing an orphaned request on another shard is safe
        for pending in orphans:
            self._dispatch(pending)

    def _dispatch(self, pending: _PendingReq) -> None:
        """Route and send one request; crashes during send trigger requeue."""
        pending.attempts += 1
        if pending.attempts > self.n_workers + self.max_restarts + 1:
            _settle(  # pragma: no cover - repeated crashes
                pending.future,
                error=RuntimeError(
                    f"request gave up after {pending.attempts - 1} dispatch attempts"
                ),
            )
            return
        with self._lock:
            try:
                worker_id = self.router.route(instance_hash(pending.instance))
            except RuntimeError as exc:  # no alive workers
                _settle(pending.future, error=exc)
                return
            handle = self._workers.get(worker_id)
            if handle is None:  # stop() won the race with this dispatch
                _settle(
                    pending.future,
                    error=RuntimeError("cluster stopped before the request was routed"),
                )
                return
            handle.pending[pending.req_id] = pending
        request = RankRequest(
            req_id=pending.req_id,
            instance=pending.instance,
            candidates=pending.candidates,
            model_ref=pending.model_ref,
            top_k=pending.top_k,
            include_scores=pending.include_scores,
        )
        try:
            with handle.send_lock:
                handle.conn.send(request)
        except (BrokenPipeError, OSError):
            # the worker died under our pen: the crash path requeues
            # everything in its pending map, including this request
            self._on_worker_exit(handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceCluster({self.registry_root!r}, "
            f"alive={self.router.alive()}, crashes={self.crashes})"
        )


#: whether this process's (interpreter-wide) forkserver was asked to
#: preload the worker module.  ``mp.get_context("forkserver")`` returns a
#: process-global singleton, so the preload is configured exactly once —
#: and only if the forkserver has not already been started by earlier
#: code, in which case a late preload request would be silently ignored
#: and workers would simply pay the numpy/scipy import themselves.
_forkserver_preload_requested = False


def _context(start_method: "str | None") -> "mp.context.BaseContext":
    """The multiprocessing context to spawn workers with.

    Default is ``forkserver`` (clean children — no inherited threads or
    event loops — forked from a preloaded server, so per-worker startup
    does not pay the numpy/scipy import) with the worker module preloaded;
    platforms without it fall back to ``spawn``.  ``fork`` remains
    selectable for tests that want millisecond spawns.
    """
    global _forkserver_preload_requested
    if start_method is not None:
        return mp.get_context(start_method)
    try:
        ctx = mp.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return mp.get_context("spawn")
    if not _forkserver_preload_requested:
        _forkserver_preload_requested = True
        try:
            ctx.set_forkserver_preload(["repro.service.worker"])
        except Exception:  # pragma: no cover - server already running
            pass
    return ctx
