"""Multi-process serving: a cluster of tuning-service workers behind one registry.

A single :class:`~repro.service.server.TuningService` is one core of
encode+score.  :class:`ServiceCluster` is the scale-out unit the serving
docs promised: N worker processes, each running its own service (own event
loop, own :class:`~repro.service.cache.RankingCache`, own telemetry), all
reading the **same on-disk**
:class:`~repro.service.registry.ModelRegistry`.

::

     submit(instance, …)                     ┌───────────────────────────┐
          │   instance_hash ── ShardRouter ──▶ worker 0  TuningService   │
          │   (rendezvous,      │            │ worker 1  TuningService   │──┐
          ▼    affine)          └───────────▶│ worker …  (per-worker     │  │
     Future[ClusterResponse] ◀── replies ────│            cache+stats)   │  │
                                             └─────────────┬─────────────┘  │
                                                 ModelRegistry (shared root,│
                                                 tags.json re-resolved per  │
                                                 batch → cluster-wide hot   │
                                                 swap on one tag move) ◀────┘

Properties the ``tests/cluster/`` suites pin:

* **bit-identical rankings** — every worker loads the same archive bytes
  and runs the same fused encode + ``X @ w`` + stable argsort, so a
  cluster answer equals ``OrdinalAutotuner.rank_candidates`` exactly, for
  any worker count;
* **instance affinity** — routing is rendezvous hashing over the alive
  set (:class:`~repro.service.routing.ShardRouter`), so one instance
  always hits one worker and per-worker caches stay hot;
* **atomic hot swap** — a promotion is one atomic tag write; each worker
  re-resolves tags per micro-batch, so every in-flight answer is computed
  end-to-end by exactly one version (old or new, never a mixture);
* **crash containment** — a killed worker's unanswered requests are
  requeued to the surviving shards (ranking is pure, so re-execution is
  safe), the router stops sending it traffic, and (by default) a
  replacement process is spawned; the registry and the other workers'
  caches are untouched;
* **feedback rides the wire** — with ``feedback_every >= 1`` each worker
  streams every Nth successful answer back as a
  :class:`~repro.service.ipc.FeedbackRecord`; the parent rehydrates
  preset candidate sets from its own memo and fans records out to
  :meth:`add_feedback_listener` observers, which is how one
  coordinator-side continual-learning collector (one probing budget, one
  drift monitor) sees the whole cluster's traffic.

A SIGKILL is the *easy* failure (the pipe EOFs and everyone knows).  The
resilience layer (``tests/cluster/test_resilience.py``) covers the
partial ones:

* **deadlines + bounded retry** — ``submit(..., deadline_s=…)`` gives a
  request a total time budget; an attempt that outlives its per-dispatch
  timeout is re-dispatched to another worker with jittered exponential
  backoff (deterministic per request: the jitter is hashed from the
  request id), at most ``ResilienceConfig.max_retries`` times.  A hung
  worker can therefore delay a request, never strand it.
* **health-state routing** — a per-worker
  :class:`~repro.service.health.CircuitBreaker` (healthy → suspect →
  quarantined) is fed by attempt timeouts, corrupted reply frames,
  crashes, and heartbeat silence (workers beat from their event loop, so
  a blocked loop goes quiet — the slow-loris signature).  Dispatch
  prefers healthy workers, tolerates suspects as a last resort, and
  unroutes quarantined ones entirely (their pending work is requeued).
  Quarantined workers are probed with
  :class:`~repro.service.ipc.Ping`; a :class:`~repro.service.ipc.Pong`
  readmits them — shard and warm cache restored.
* **graceful degradation** — with ``degraded_answers=True``, a request no
  healthy worker can answer before its deadline is answered by the
  coordinator itself (a remembered full ranking, else an in-coordinator
  scorer that is bit-identical to a worker) with an explicit
  ``degraded=True``; past ``max_queue_depth`` undispatched requests,
  ``submit`` sheds deterministically with
  :class:`~repro.service.degrade.ClusterOverloadedError`.

The parent API is thread-friendly (``submit`` returns a
``concurrent.futures.Future``) with an async adapter (:meth:`rank`), so
both sync drivers and asyncio applications can use the cluster directly.

**Transports.**  Workers attach over one of three links, all speaking the
same :mod:`~repro.service.ipc` frames (so everything above — routing,
health, retries, chaos — is transport-blind):

* ``"pipe"`` (default) — a forked process on a duplex pipe, with
  shared-memory score slabs when ``score_transport="shm"``;
* ``"socket"`` — a forked process that dials back into a coordinator
  loopback listener and talks the length-prefixed frame codec
  (:mod:`~repro.service.frames`): the cross-host wire, exercised
  locally.  Scores ride the wire (pickles), never slabs — this is the
  remote posture, and ``tests/cluster/test_socket_transport.py`` pins
  that its answers are *bit-identical* to pipe answers anyway;
* ``remote_workers=["host:port", ...]`` — workers on other machines
  behind a :class:`~repro.service.remote.RemoteWorkerHost`; the
  coordinator dials out, opens with :class:`~repro.service.ipc.Hello`,
  and a failed dial parks the worker in ``missing_workers`` instead of
  failing the cluster.

``worker_weights`` feeds the router's weighted rendezvous election: a
weight-2 host takes ~2× the shards of a weight-1 host, weight 0 drains.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import itertools
import multiprocessing as mp
import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.obs.audit import AuditJournal
from repro.obs.trace import ROOT_SPAN, Span, TraceConfig, TraceContext, Tracer, write_jsonl
from repro.service.cache import InternedCandidates
from repro.service.chaos import ChaosConfig
from repro.service.degrade import (
    ClusterOverloadedError,
    DeadlineExceededError,
    FallbackScorer,
    FallbackStore,
)
from repro.service.health import CircuitBreaker, HealthState, ResilienceConfig
from repro.service.ipc import (
    CorruptFrameError,
    ErrorReply,
    FeedbackRecord,
    Heartbeat,
    Hello,
    Ping,
    Pong,
    RankReply,
    RankRequest,
    ReplyBatch,
    Shutdown,
    StatsReply,
    StatsRequest,
    recv_frame,
)
from repro.service.registry import LATEST
from repro.service.routing import ShardRouter
from repro.service.shm import ScoreSlabRing, SlabRef
from repro.service.telemetry import merge_stats
from repro.service.transport import accept_connection, dial, listen
from repro.service.worker import WorkerConfig, socket_worker_main, worker_main
from repro.stencil.execution import instance_hash
from repro.stencil.instance import StencilInstance
from repro.tuning.presets import preset_candidates
from repro.tuning.vector import TuningVector
from repro.util.rng import hash_bits

__all__ = ["ClusterResponse", "ServiceCluster"]

#: per-process ordinal distinguishing the slab segments of multiple
#: clusters living in one coordinator process (test suites routinely run
#: several); the pid in the name handles multiple coordinator processes
_CLUSTER_TAGS = itertools.count()


def _settle(future: "concurrent.futures.Future", value=None, error: "Exception | None" = None) -> None:
    """Resolve a future, tolerating a client cancelling it concurrently.

    ``submit()`` hands out plain futures, so a caller may ``cancel()``
    one at any moment — including between a ``done()`` check and the
    ``set_result`` call.  The resulting ``InvalidStateError`` must never
    escape into a reader thread: a dead reader would leave its worker
    routed but unread, hanging the whole shard.  (It also makes duplicate
    settles benign — a request that was retried *and* then answered by
    its first, written-off worker keeps the first settle and drops the
    straggler.)
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)
    except concurrent.futures.InvalidStateError:
        pass  # cancelled (or already settled) by the caller: drop the answer


class _SlabLease:
    """One response's claim on a shared-memory score slot.

    Releasing (idempotently) hands the slot back to the worker's slab
    ring; the response's ``scores`` view must not be read afterwards.
    Garbage collection releases as a safety net — a caller that drops its
    response without calling :meth:`release` degrades ring occupancy only
    until the collector runs, never permanently.

    The safety net is a ``weakref.finalize``, **not** ``__del__``: the
    finalizer registry keeps the ring (and its mapping) strongly alive
    until every lease has released, so even when a response ends up in a
    garbage cycle the cycle collector cannot unmap the segment before
    the release callback writes its flag byte.
    """

    __slots__ = ("_finalizer", "__weakref__")

    def __init__(self, ring: ScoreSlabRing, ref: SlabRef) -> None:
        self._finalizer = weakref.finalize(self, ring.release, ref)

    def release(self) -> None:
        self._finalizer()


@dataclass(frozen=True)
class ClusterResponse:
    """One answered cluster query."""

    #: candidates best-first (truncated to ``top_k`` when requested)
    ranked: list[TuningVector]
    #: full score array aligned with the request's candidate order
    #: (None when the request set ``include_scores=False``; a degraded
    #: answer may also lack scores when the remembered reply had none)
    scores: "np.ndarray | None"
    #: the concrete model version that produced the answer
    model_version: str
    #: whether the owning worker's ranking cache answered
    cached: bool
    #: parent-observed submit-to-answer latency, in seconds
    latency_s: float
    #: queue-to-answer latency inside the worker's service
    service_latency_s: float
    #: which worker answered (affinity: stable per instance; -1 = the
    #: coordinator itself answered, which only happens when degraded)
    worker_id: int
    #: how many times the request was (re)dispatched (1 = no crash or
    #: timeout on its path)
    attempts: int
    #: True when no healthy worker could answer in time and the
    #: coordinator served a fallback (cache replay or local scoring);
    #: ``model_version`` still names exactly the model that computed it
    degraded: bool = False
    #: when ``scores`` is a zero-copy view into the worker's slab ring,
    #: the lease guarding its slot; None means the scores (if any) are an
    #: ordinary owned array.  Not part of equality — two answers with the
    #: same content are the same answer regardless of transport.
    slab_lease: "_SlabLease | None" = field(default=None, compare=False, repr=False)

    @property
    def best(self) -> TuningVector:
        """The top-ranked configuration."""
        return self.ranked[0]

    def release(self) -> None:
        """Return this answer's slab slot to its worker (idempotent).

        After release ``scores`` must not be read — copy first if the
        array outlives the answer.  A no-op for pickle-transported or
        score-free responses, so callers can release unconditionally.
        """
        if self.slab_lease is not None:
            self.slab_lease.release()


@dataclass
class _PendingReq:
    """A dispatched request awaiting its reply (or a re-dispatch)."""

    req_id: int
    instance: StencilInstance
    candidates: "Sequence[TuningVector] | InternedCandidates | None"
    model_ref: str
    top_k: "int | None"
    include_scores: bool
    future: "concurrent.futures.Future[ClusterResponse]"
    submitted_at: float
    attempts: int = 0
    #: absolute monotonic deadline (None = no time budget)
    deadline_at: "float | None" = None
    #: per-dispatch timeout before the monitor retries elsewhere
    attempt_timeout_s: "float | None" = None
    #: timeout-triggered re-dispatches so far (crash requeues not counted)
    retries: int = 0
    #: current dispatch target and when it was sent there
    worker_id: "int | None" = None
    attempt_started: "float | None" = None
    #: earliest monotonic time the next retry may dispatch (backoff gate)
    not_before: float = 0.0
    #: workers that already timed this request out (avoided while any
    #: other worker can take it)
    excluded: set = field(default_factory=set)
    #: trace identity when this request is sampled (None: untraced)
    trace_ctx: "TraceContext | None" = None
    #: monotonic submit time (root-span clock; submitted_at is perf_counter)
    submitted_mono: float = 0.0
    #: monotonic time the current dispatch's pipe write returned
    sent_at: "float | None" = None
    #: monotonic time this request entered the retry backoff queue
    backoff_queued_at: "float | None" = None


class _RemoteProcess:
    """A process-shaped stub for a worker living on another host.

    The coordinator does not own a remote worker's process — it owns a
    *connection* to it — but every lifecycle path (stop, crash reap,
    restart bookkeeping) is written against the ``mp.Process`` surface.
    This stub answers that surface with no-ops: ``join`` returns at once,
    ``is_alive`` is False (there is nothing to terminate locally), and
    the signal methods do nothing — severing the link is how a remote
    worker is "killed" (see :meth:`ServiceCluster.kill_worker`).
    """

    def __init__(self, address: str) -> None:
        self.address = address
        self.pid: "int | None" = None

    def is_alive(self) -> bool:
        return False

    def join(self, timeout: "float | None" = None) -> None:
        pass

    def terminate(self) -> None:
        pass

    def kill(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_RemoteProcess(address={self.address!r})"


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    worker_id: int
    process: "mp.process.BaseProcess"
    conn: object  # multiprocessing.connection.Connection
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    pending: "dict[int, _PendingReq]" = field(default_factory=dict)
    stats_pending: "dict[int, concurrent.futures.Future]" = field(default_factory=dict)
    reader: "threading.Thread | None" = None
    dead: bool = False
    restarts: int = 0


class ServiceCluster:
    """Instance-affine, crash-tolerant multi-process tuning service.

    Usage::

        with ServiceCluster(registry_root, n_workers=4) as cluster:
            future = cluster.submit(instance)          # thread-friendly
            best = future.result().best
            response = await cluster.rank(instance)    # or async
    """

    def __init__(
        self,
        registry_root: "str | Path",
        n_workers: int = 4,
        default_model: str = LATEST,
        start_method: "str | None" = None,
        restart_workers: bool = True,
        max_restarts: int = 3,
        max_batch_size: int = 64,
        max_batch_delay_s: float = 0.002,
        cache_entries: int = 4096,
        latency_window: int = 4096,
        max_cached_models: int = 8,
        max_rows_per_pass: int = 32768,
        feedback_every: int = 0,
        resilience: "ResilienceConfig | None" = None,
        chaos: "ChaosConfig | dict[int, ChaosConfig] | None" = None,
        trace: "TraceConfig | None" = None,
        audit: "AuditJournal | None" = None,
        score_transport: str = "shm",
        dtype: str = "float64",
        encode_cache_rows: int = 32768,
        transport: "str | dict[int, str]" = "pipe",
        worker_weights: "dict[int, float] | None" = None,
        remote_workers: "Sequence[str] | None" = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if feedback_every < 0:
            raise ValueError(f"feedback_every must be >= 0, got {feedback_every}")
        if score_transport not in ("shm", "pickle"):
            raise ValueError(
                f"score_transport must be 'shm' or 'pickle', got {score_transport!r}"
            )
        named = (
            transport.values() if isinstance(transport, dict) else (transport,)
        )
        for kind in named:
            if kind not in ("pipe", "socket"):
                raise ValueError(
                    f"transport must be 'pipe' or 'socket', got {kind!r}"
                )
        self.registry_root = str(registry_root)
        self.n_workers = n_workers
        #: local transport selection: one kind for every forked worker, or
        #: a {worker_id: kind} map (unlisted ids default to "pipe") — the
        #: mixed-fleet posture the conformance suite exercises
        self._transport: "str | dict[int, str]" = (
            dict(transport) if isinstance(transport, dict) else transport
        )
        #: remote workers take the ids *after* the local ones, so local
        #: routing/health/chaos indexing is unchanged by adding remotes
        self._remote_addrs: dict[int, str] = {
            n_workers + i: str(addr)
            for i, addr in enumerate(remote_workers or ())
        }
        #: fleet size: local forked workers + configured remote addresses
        self.n_total = n_workers + len(self._remote_addrs)
        #: workers with no live connection because their dial (or re-dial)
        #: failed: reported via ``stats()['missing_workers']`` and merged
        #: as None snapshots — a dead address degrades, never raises
        self._dial_failed: dict[int, str] = {}
        self.restart_workers = restart_workers
        self.max_restarts = max_restarts
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        #: per-worker fault injections for chaos drills: one config for
        #: every worker, or a {worker_id: config} map for targeted faults
        self._chaos: "dict[int, ChaosConfig]" = (
            dict(chaos)
            if isinstance(chaos, dict)
            else {w: chaos for w in range(self.n_total)}
            if chaos is not None
            else {}
        )
        self.config = WorkerConfig(
            default_model=default_model,
            max_batch_size=max_batch_size,
            max_batch_delay_s=max_batch_delay_s,
            cache_entries=cache_entries,
            latency_window=latency_window,
            max_cached_models=max_cached_models,
            max_rows_per_pass=max_rows_per_pass,
            feedback_every=feedback_every,
            heartbeat_interval_s=self.resilience.heartbeat_interval_s,
            dtype=dtype,
            encode_cache_rows=encode_cache_rows,
        )
        #: "shm" parks score arrays in per-worker shared-memory slab rings
        #: (zero-copy views on the answer path); "pickle" forces the plain
        #: pipe transport everywhere — the cross-host posture, and what
        #: "shm" itself degrades to per-array when a ring is full
        self.score_transport = score_transport
        self._cluster_tag = next(_CLUSTER_TAGS)
        #: per-spawn ordinal so a restarted worker gets a fresh segment
        #: name (its predecessor's, possibly still mapped by late views,
        #: is already unlinked)
        self._slab_gen = itertools.count()
        #: every ring this cluster ever created, by segment name — late
        #: replies can reference a replaced worker's ring, so rings stay
        #: resolvable (already unlinked, mappings valid) until stop()
        self._slab_rings: "dict[str, ScoreSlabRing]" = {}
        #: the ring each live worker currently writes into
        self._worker_ring: "dict[int, ScoreSlabRing]" = {}
        self._ctx = _context(start_method)
        self.router = ShardRouter(range(self.n_total), weights=worker_weights)
        for worker_id in range(self.n_total):  # routable only once spawned
            self.router.mark_dead(worker_id)
        self._workers: dict[int, _WorkerHandle] = {}
        self._lock = threading.RLock()
        # data-plane ids are pure submission ordinals: control-plane
        # traffic (stats, probes) draws from a disjoint high range so
        # timing-dependent probe counts never shift request numbering —
        # the audit journal's req_id→version replay stays run-stable
        self._req_ids = iter(range(1, 1 << 62)).__next__
        self._ctl_ids = iter(range(1 << 62, 1 << 63)).__next__
        self._started = False
        self._stopping = False
        #: worker exits observed outside a clean stop
        self.crashes = 0
        #: chronological worker lifecycle events
        #: (spawn/exit/restart/quarantine/readmit)
        self.events: list[dict] = []
        #: per-worker health state machines (kept across restarts; reset
        #: when a replacement process takes the worker id over)
        self._health: dict[int, CircuitBreaker] = {
            w: CircuitBreaker.from_config(self.resilience)
            for w in range(self.n_total)
        }
        #: monotonic receipt time of the last frame heard per worker.
        #: Written lock-free from reader threads (dict stores are atomic
        #: under the GIL); the monitor tolerates a one-tick-stale read.
        self._last_heard: dict[int, float] = {}
        self._spawned_at: dict[int, float] = {}
        #: workers currently past heartbeat_stale_s (monitor-thread only;
        #: makes the suspect penalty fire once per silence, not per tick)
        self._hb_flagged: set[int] = set()
        #: timeout-retried requests waiting out their backoff
        self._retry_queue: list[_PendingReq] = []
        self._monitor: "threading.Thread | None" = None
        self._monitor_stop = threading.Event()
        #: coordinator-side fallback machinery (degraded answers)
        self._fallback_store: "FallbackStore | None" = (
            FallbackStore(self.resilience.fallback_cache_entries)
            if self.resilience.degraded_answers
            else None
        )
        self._fallback_scorer: "FallbackScorer | None" = None
        #: resilience counters
        self.timeouts = 0
        self.retries_scheduled = 0
        self.degraded_served = 0
        self.shed_requests = 0
        self.corrupted_frames = 0
        #: inbound frames whose *payload code* raised while materializing
        #: — bugs surfaced, not frame loss (see ipc.CorruptFrameError)
        self.frame_decode_bugs = 0
        self.quarantines = 0
        self.readmissions = 0
        #: observers called with (instance, candidates, record) per
        #: worker-streamed FeedbackRecord — the cluster-level analogue of
        #: TuningService.add_response_hook
        self._feedback_listeners: list[
            Callable[[StencilInstance, Sequence[TuningVector], FeedbackRecord], None]
        ] = []
        #: FeedbackRecords received from workers (all listeners included)
        self.feedback_received = 0
        #: exceptions swallowed from feedback listeners (serving never breaks)
        self.feedback_errors = 0
        self.last_feedback_error: "Exception | None" = None
        #: dims -> regenerated preset list for candidates=None records
        #: (same content the workers serve, regenerated once per parent)
        self._preset_sets: dict[int, list[TuningVector]] = {}
        #: distributed tracing (None: fully off — submit/dispatch/reply
        #: paths pay only ``None`` checks).  Sampled requests carry a
        #: TraceContext over the wire; workers return their stage spans on
        #: the reply and the coordinator merges them into this recorder,
        #: synthesizing the two transport stages from same-host monotonic
        #: timestamps.
        self.tracer: "Tracer | None" = (
            Tracer(trace, process="coordinator") if trace is not None else None
        )
        #: model-lifecycle / fleet-health audit journal (None: fully off —
        #: every audit point pays only a ``None`` check).  Fleet events
        #: (spawn/worker-exit/quarantine/readmit/shed/degrade, breaker
        #: transitions) and per-request ``answer`` events land here with
        #: the trace ids in flight at event time.
        self.audit: "AuditJournal | None" = audit
        if audit is not None:
            for worker_id, breaker in self._health.items():
                breaker.on_transition = self._breaker_auditor(worker_id)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ServiceCluster":
        """Spawn the worker processes and the health monitor (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._stopping = False
            self._started = True
        for worker_id in range(self.n_total):
            self._spawn(worker_id)
        self._monitor_stop.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        """Drain every accepted request, then stop all workers."""
        with self._lock:
            if not self._started:
                return
            self._stopping = True
            handles = list(self._workers.values())
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for handle in handles:
            try:
                with handle.send_lock:
                    handle.conn.send(Shutdown())
            except (BrokenPipeError, OSError, TypeError, ValueError):
                pass
        deadline = time.monotonic() + timeout_s
        for handle in handles:
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():  # pragma: no cover - hung worker
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            # the dead process's pipe EOF wakes the reader; joining it
            # before closing the connection keeps close() and recv() from
            # ever running concurrently
            if handle.reader is not None:
                handle.reader.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._lock:
            stranded = [
                p for h in self._workers.values() for p in h.pending.values()
            ]
            stranded += self._retry_queue
            self._retry_queue = []
            self._workers.clear()
            for worker_id in self.router.alive():
                self.router.mark_dead(worker_id)
            self._started = False
            rings = list(self._slab_rings.values())
            self._slab_rings.clear()
            self._worker_ring.clear()
        # every reader is joined by now, so no new slab views can be
        # handed out; unlink removes the names (workers are gone) and
        # close drops our mapping unless an outstanding response still
        # exports it — in which case GC finishes the job, safely, because
        # the segment no longer has a name to leak
        for ring in rings:
            ring.unlink()
            ring.close()
        for pending in stranded:
            _settle(
                pending.future,
                error=RuntimeError("cluster stopped before the request was answered"),
            )

    def __enter__(self) -> "ServiceCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the cluster is accepting requests."""
        return self._started and not self._stopping

    def alive_workers(self) -> tuple[int, ...]:
        """Worker ids currently routable (quarantined workers excluded)."""
        return self.router.alive()

    def worker_health(self, worker_id: int) -> HealthState:
        """The health state of one worker."""
        return self._health[worker_id].state

    # -- request API -----------------------------------------------------------

    def submit(
        self,
        instance: StencilInstance,
        candidates: "Sequence[TuningVector] | InternedCandidates | None" = None,
        model: "str | None" = None,
        top_k: "int | None" = None,
        include_scores: bool = True,
        deadline_s: "float | None" = None,
    ) -> "concurrent.futures.Future[ClusterResponse]":
        """Route one ranking query to its shard; returns a future.

        ``candidates=None`` uses the owning worker's preset set (nothing
        preset-sized crosses the wire); an
        :class:`~repro.service.cache.InternedCandidates` set ships its
        precomputed digest, which stays valid across the process boundary.

        ``deadline_s`` caps the request's total wall time (default:
        ``ResilienceConfig.default_deadline_s``).  A deadlined request
        whose worker attempt stalls is retried on another shard (bounded,
        jitter-backed-off); at the deadline it either degrades (when
        ``degraded_answers`` is on) or fails with
        :class:`~repro.service.degrade.DeadlineExceededError`.  Raises
        :class:`~repro.service.degrade.ClusterOverloadedError` *here* —
        not on the future — when the backlog is past ``max_queue_depth``:
        shed load fails fast at the front door.
        """
        if not self.running:
            raise RuntimeError("ServiceCluster is not running; call start() first")
        if top_k is not None and top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        resil = self.resilience
        if resil.max_queue_depth is not None:
            with self._lock:
                depth = self._queue_depth_locked()
            if depth >= resil.max_queue_depth:
                self.shed_requests += 1
                if self.tracer is not None:
                    self.tracer.record_event("shed", attrs={"depth": depth})
                if self.audit is not None:
                    self.audit.record(
                        "shed", {"depth": depth}, self._inflight_trace_ids()
                    )
                raise ClusterOverloadedError(
                    f"cluster backlog ({depth}) at max_queue_depth "
                    f"({resil.max_queue_depth}); request shed"
                )
        effective_deadline = (
            deadline_s if deadline_s is not None else resil.default_deadline_s
        )
        attempt_timeout = resil.attempt_timeout_s
        if attempt_timeout is None and effective_deadline is not None:
            # split the budget so every allowed retry fits inside it
            attempt_timeout = effective_deadline / (resil.max_retries + 1)
        req_id = self._req_ids()
        pending = _PendingReq(
            req_id=req_id,
            instance=instance,
            candidates=candidates,
            model_ref=model or self.config.default_model,
            top_k=top_k,
            include_scores=include_scores,
            future=concurrent.futures.Future(),
            submitted_at=time.perf_counter(),
            deadline_at=(
                time.monotonic() + effective_deadline
                if effective_deadline is not None
                else None
            ),
            attempt_timeout_s=attempt_timeout,
            trace_ctx=(
                self.tracer.context_for(req_id) if self.tracer is not None else None
            ),
            submitted_mono=time.monotonic(),
        )
        self._dispatch(pending)
        return pending.future

    async def rank(
        self,
        instance: StencilInstance,
        candidates: "Sequence[TuningVector] | InternedCandidates | None" = None,
        model: "str | None" = None,
        top_k: "int | None" = None,
        include_scores: bool = True,
        deadline_s: "float | None" = None,
    ) -> ClusterResponse:
        """Async adapter over :meth:`submit` for asyncio applications."""
        import asyncio

        return await asyncio.wrap_future(
            self.submit(instance, candidates, model, top_k, include_scores, deadline_s)
        )

    def rank_sync(self, instance: StencilInstance, **kwargs: object) -> ClusterResponse:
        """Blocking convenience wrapper: submit and wait."""
        return self.submit(instance, **kwargs).result()  # type: ignore[arg-type]

    # -- feedback stream -------------------------------------------------------

    def add_feedback_listener(
        self,
        listener: Callable[
            [StencilInstance, Sequence[TuningVector], FeedbackRecord], None
        ],
    ) -> None:
        """Register an observer for worker-streamed feedback records.

        Listeners receive ``(instance, candidates, record)`` — candidates
        in the request's order, aligned with ``record.scores`` (preset
        requests are rehydrated from the parent's memo, so the list is
        always concrete).  They run on the owning worker's reader thread
        and must be cheap and thread-safe (append to an intake queue;
        process later) — this is the attachment point for
        :class:`~repro.online.feedback.ClusterFeedbackCollector`.  A
        raising listener is counted (``feedback_errors``) and never
        disturbs the reply path.

        The stream only carries records when the cluster was built with
        ``feedback_every >= 1`` — listeners on a cluster that never armed
        worker-side streaming observe nothing.
        """
        self._feedback_listeners.append(listener)

    def remove_feedback_listener(self, listener: Callable) -> None:
        """Unregister a previously added feedback listener (no-op if absent)."""
        try:
            self._feedback_listeners.remove(listener)
        except ValueError:
            pass

    def _on_feedback(self, record: FeedbackRecord) -> None:
        """Rehydrate one streamed record and fan it out to the listeners.

        Runs on the owning worker's reader thread: counters are guarded
        by the cluster lock (a bare ``+=`` would lose increments between
        concurrent readers), listeners are called outside it.
        """
        with self._lock:
            self.feedback_received += 1
        candidates = (
            self._presets(record.instance.dims)
            if record.candidates is None
            else record.candidates
        )
        for listener in list(self._feedback_listeners):
            try:
                listener(record.instance, candidates, record)
            except Exception as exc:
                with self._lock:
                    self.feedback_errors += 1
                    self.last_feedback_error = exc

    def _presets(self, dims: int) -> list[TuningVector]:
        """The preset candidate list for ``dims``, regenerated + memoized.

        Bit-identical to every worker's own preset set (both sides call
        :func:`~repro.tuning.presets.preset_candidates`), so a record that
        shipped ``candidates=None`` grades against exactly the list the
        worker scored.
        """
        cached = self._preset_sets.get(dims)
        if cached is None:
            # no lock: two reader threads racing here both generate the
            # identical list; setdefault keeps one winner and the loser's
            # copy is content-equal anyway
            cached = self._preset_sets.setdefault(dims, preset_candidates(dims))
        return cached

    # -- telemetry -------------------------------------------------------------

    def stats(self, timeout_s: float = 10.0) -> dict:
        """Aggregated cluster telemetry plus each worker's own snapshot.

        ``cluster`` merges every worker's counters (summed totals, merged
        hit rate, cluster-wide p50/p99 over the concatenated latency
        windows — see :func:`repro.service.telemetry.merge_stats`);
        ``workers`` maps worker id to its raw ``service.stats()``.

        Every non-dead worker is asked — including quarantined ones (a
        hung worker simply will not answer).  Workers that miss the
        shared ``timeout_s`` are listed in ``missing_workers``, their
        orphaned stats futures are cleaned up (not leaked), and the merge
        proceeds over the answers that did arrive — partial stats beat no
        stats during an incident.  ``health`` carries each worker's
        circuit-breaker snapshot; ``resilience`` the coordinator's
        failure-handling counters.
        """
        requests: "list[tuple[int, _WorkerHandle, int, concurrent.futures.Future]]" = []
        with self._lock:
            # workers whose dial failed never produced a connection to
            # ask; they are missing by construction, and merge as None
            # snapshots so the aggregate still counts the whole fleet
            never_connected = sorted(self._dial_failed)
            for handle in self._workers.values():
                if handle.dead:
                    continue
                req_id = self._ctl_ids()
                fut: concurrent.futures.Future = concurrent.futures.Future()
                handle.stats_pending[req_id] = fut
                requests.append((handle.worker_id, handle, req_id, fut))
        for worker_id, handle, req_id, fut in requests:
            try:
                with handle.send_lock:
                    handle.conn.send(StatsRequest(req_id=req_id))
            except (BrokenPipeError, OSError, TypeError, ValueError):
                with self._lock:
                    handle.stats_pending.pop(req_id, None)
                _settle(fut, error=RuntimeError("worker pipe closed"))
        deadline = time.monotonic() + timeout_s
        replies: dict[int, StatsReply] = {}
        missing: list[int] = list(never_connected)
        for worker_id, handle, req_id, fut in requests:
            try:
                replies[worker_id] = fut.result(
                    timeout=max(0.0, deadline - time.monotonic())
                )
            except Exception:  # dead or hung mid-question
                # clean up the orphaned future so a worker that answers
                # *after* the timeout finds nothing to resolve (and the
                # handle's stats_pending map does not grow forever)
                with self._lock:
                    handle.stats_pending.pop(req_id, None)
                missing.append(worker_id)
        merged = merge_stats(
            [r.stats for r in replies.values()] + [None] * len(never_connected),
            [r.latency_window for r in replies.values()]
            + [None] * len(never_connected),
        )
        with self._lock:
            health = {w: b.snapshot() for w, b in sorted(self._health.items())}
            resilience = {
                "timeouts": self.timeouts,
                "retries_scheduled": self.retries_scheduled,
                "degraded_served": self.degraded_served,
                "shed_requests": self.shed_requests,
                "corrupted_frames": self.corrupted_frames,
                "frame_decode_bugs": self.frame_decode_bugs,
                "quarantines": self.quarantines,
                "readmissions": self.readmissions,
                "retry_queue_depth": len(self._retry_queue),
                "fallback_cache_entries": (
                    len(self._fallback_store)
                    if self._fallback_store is not None
                    else 0
                ),
                "fallback_scored": (
                    self._fallback_scorer.scored
                    if self._fallback_scorer is not None
                    else 0
                ),
                "fallback_cache_hits": (
                    self._fallback_store.hits
                    if self._fallback_store is not None
                    else 0
                ),
                "fallback_cache_misses": (
                    self._fallback_store.misses
                    if self._fallback_store is not None
                    else 0
                ),
            }
            # trace-ring accounting: recorded vs honestly dropped spans
            # (the ring is bounded; silent loss would corrupt attribution)
            trace_ring = (
                {
                    "recorded": self.tracer.recorder.recorded,
                    "dropped": self.tracer.recorder.dropped,
                }
                if self.tracer is not None
                else {"recorded": 0, "dropped": 0}
            )
            # degraded answers and sheds happen in the coordinator, never
            # inside a worker — fold them into the first-class telemetry
            # counters so merged stats and resilience state agree
            merged["degraded_total"] = (
                merged.get("degraded_total", 0) + self.degraded_served
            )
            merged["shed_total"] = merged.get("shed_total", 0) + self.shed_requests
            # surface every coordinator counter in the merged dict under
            # exposition-friendly names, so ``exposition(stats["cluster"])``
            # exports the whole fleet story (no counter is scrape-invisible)
            merged["crashes_total"] = self.crashes
            merged["timeouts_total"] = self.timeouts
            merged["retries_scheduled_total"] = self.retries_scheduled
            merged["quarantines_total"] = self.quarantines
            merged["readmissions_total"] = self.readmissions
            merged["corrupted_frames_total"] = self.corrupted_frames
            # workers count decode bugs on their inbound direction too —
            # add, don't overwrite, so neither side's count disappears
            merged["frame_decode_bugs_total"] = (
                merged.get("frame_decode_bugs_total", 0) + self.frame_decode_bugs
            )
            merged["feedback_received_total"] = self.feedback_received
            merged["feedback_errors_total"] = self.feedback_errors
            merged["fallback_cache_hits_total"] = resilience["fallback_cache_hits"]
            merged["fallback_cache_misses_total"] = resilience["fallback_cache_misses"]
            merged["fallback_scored_total"] = resilience["fallback_scored"]
            merged["trace_spans_recorded_total"] = trace_ring["recorded"]
            merged["trace_spans_dropped_total"] = trace_ring["dropped"]
        return {
            "cluster": merged,
            "workers": {w: r.stats for w, r in sorted(replies.items())},
            "alive_workers": list(self.router.alive()),
            "crashes": self.crashes,
            "feedback_received": self.feedback_received,
            "feedback_errors": self.feedback_errors,
            "missing_workers": sorted(missing),
            "health": health,
            "resilience": resilience,
            "trace": trace_ring,
            "audit_entries": len(self.audit) if self.audit is not None else 0,
        }

    def trace_spans(self) -> "list[Span]":
        """Every span in the coordinator's recorder (worker spans merged).

        Empty when the cluster was built without a
        :class:`~repro.obs.trace.TraceConfig`.
        """
        return [] if self.tracer is None else self.tracer.spans()

    def dump_trace(self, path: "str | Path") -> int:
        """Write the merged span buffer as JSONL; returns spans written."""
        return write_jsonl(path, self.trace_spans())

    # -- audit journal ----------------------------------------------------------

    def _inflight_trace_ids(self, limit: int = 32) -> "tuple[str, ...]":
        """Trace ids of requests in flight right now (bounded, sorted).

        Stamped onto every audit entry: the join key from a fleet event
        to the requests it may have affected.  Empty without tracing.
        """
        if self.tracer is None:
            return ()
        ids: set[str] = set()
        with self._lock:
            for handle in self._workers.values():
                for pending in handle.pending.values():
                    if pending.trace_ctx is not None:
                        ids.add(pending.trace_ctx.trace_id)
            for pending in self._retry_queue:
                if pending.trace_ctx is not None:
                    ids.add(pending.trace_ctx.trace_id)
        return tuple(sorted(ids)[:limit])

    def _audit(self, event: str, attrs: "dict | None" = None) -> None:
        """Record one fleet event in the audit journal (no-op without one)."""
        if self.audit is not None:
            self.audit.record(event, attrs, self._inflight_trace_ids())

    def _breaker_auditor(self, worker_id: int):
        """An ``on_transition`` observer auditing one worker's breaker."""

        def observe(origin: str, to: str, reason: str) -> None:
            self._audit(
                "breaker-transition",
                {"worker": worker_id, "from": origin, "to": to, "reason": reason},
            )

        return observe

    # -- fault injection (tests and drills) ------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker — the crash-injection hook the test harness uses.

        A remote worker has no local process to signal; severing its
        connection is the same event from the coordinator's point of view
        (the reader EOFs and runs the crash path).
        """
        with self._lock:
            handle = self._workers.get(worker_id)
        if handle is None:
            raise KeyError(f"no such worker {worker_id}")
        if isinstance(handle.process, _RemoteProcess):
            handle.conn.close()
            return
        handle.process.kill()

    # -- internals -------------------------------------------------------------

    def _transport_for(self, worker_id: int) -> str:
        """Which link a worker attaches over: pipe, socket, or remote."""
        if worker_id in self._remote_addrs:
            return "remote"
        if isinstance(self._transport, dict):
            return self._transport.get(worker_id, "pipe")
        return self._transport

    def _spawn(self, worker_id: int, restarts: int = 0) -> "_WorkerHandle | None":
        """Start one worker process and register it for routing.

        The expensive part — forking/spawning the process — runs *outside*
        the cluster lock, so a restart never stalls the healthy shards'
        traffic; only the registration (worker map, router, events) is
        locked.  Returns None when the cluster stopped mid-spawn (the
        orphan process is torn down) — or, for a remote worker, when the
        dial failed (recorded, not raised; the fleet serves without it).
        """
        kind = self._transport_for(worker_id)
        if kind == "remote":
            return self._connect_remote(worker_id, restarts)
        config = self.config
        chaos = self._chaos.get(worker_id)
        if chaos is not None:
            config = dataclasses.replace(config, chaos=chaos)
        ring: "ScoreSlabRing | None" = None
        if self.score_transport == "shm" and kind == "pipe":
            # slab rings are the pipe transport's zero-copy reply path;
            # socket workers deliberately run the cross-host posture —
            # scores ride the wire — so a remote fleet behaves exactly
            # like the locally tested one.  short name: macOS caps shm
            # names at 31 bytes.  pid + cluster tag + worker id + spawn
            # generation is unique per segment
            name = (
                f"rsl-{os.getpid()}-{self._cluster_tag}"
                f"-{worker_id}-{next(self._slab_gen)}"
            )
            try:
                ring = ScoreSlabRing.create(
                    name, config.slab_slots, config.slab_slot_bytes
                )
            except Exception:
                # no shared memory on this platform/container: the worker
                # gets no slab_name and pickles every score array
                ring = None
        if ring is not None:
            config = dataclasses.replace(config, slab_name=ring.name)
        if kind == "socket":
            # the worker dials *back*: the coordinator listens on an
            # ephemeral loopback port and ships only the port number into
            # the child (an int survives any start method)
            listener = listen()
            port = listener.getsockname()[1]
            process = self._ctx.Process(
                target=socket_worker_main,
                args=(worker_id, self.registry_root, port, config),
                name=f"tuning-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            try:
                parent_conn = accept_connection(
                    listener,
                    timeout_s=max(self.resilience.dial_timeout_s, 30.0),
                )
            except OSError:
                # the child never dialed (died importing, wedged): there
                # is no link to serve on — reap it and surface the fault
                process.terminate()
                process.join(timeout=5.0)
                if ring is not None:
                    ring.unlink()
                    ring.close()
                raise
            finally:
                listener.close()
        else:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=worker_main,
                args=(worker_id, self.registry_root, child_conn, config),
                name=f"tuning-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            # the parent must drop its copy of the child end, or reads on
            # parent_conn would never see EOF when the worker dies
            child_conn.close()
        handle = _WorkerHandle(
            worker_id=worker_id, process=process, conn=parent_conn, restarts=restarts
        )
        handle.reader = threading.Thread(
            target=self._read_replies,
            args=(handle,),
            name=f"cluster-reader-{worker_id}",
            daemon=True,
        )
        with self._lock:
            if self._stopping or not self._started:
                parent_conn.close()
                process.terminate()
                process.join(timeout=5.0)
                if ring is not None:
                    ring.unlink()
                    ring.close()
                return None
            if ring is not None:
                self._slab_rings[ring.name] = ring
                self._worker_ring[worker_id] = ring
            self._workers[worker_id] = handle
            self.router.mark_alive(worker_id)
            # a fresh process takes the worker id over with a clean slate:
            # its predecessor's failures are not its own
            self._health[worker_id].reset()
            self._spawned_at[worker_id] = time.monotonic()
            self._last_heard.pop(worker_id, None)
            self._hb_flagged.discard(worker_id)
            self.events.append(
                {
                    "type": "spawn",
                    "worker": worker_id,
                    "restarts": restarts,
                    "pid": process.pid,
                }
            )
        # pid is run-specific provenance the replay fold ignores
        self._audit("spawn", {"worker": worker_id, "restarts": restarts})
        handle.reader.start()
        return handle

    def _connect_remote(
        self, worker_id: int, restarts: int = 0
    ) -> "_WorkerHandle | None":
        """Dial one remote worker host and register it for routing.

        A failed dial is an *operational* condition, not a programming
        error: the address may be down, partitioned, or not started yet.
        The worker is recorded in ``_dial_failed`` (surfaced through
        ``stats()['missing_workers']`` and merged as a None snapshot),
        an event/audit entry lands, and the cluster serves on without the
        shard — exactly how it treats a crashed-and-unrestartable local
        worker.
        """
        config = self.config  # slab_name stays None: shm cannot cross hosts
        chaos = self._chaos.get(worker_id)
        if chaos is not None:
            config = dataclasses.replace(config, chaos=chaos)
        address = self._remote_addrs[worker_id]
        try:
            conn = dial(address, timeout_s=self.resilience.dial_timeout_s)
            # the handshake names the worker and ships its config — the
            # remote host runs the same _serve loop a forked worker does
            conn.send(Hello(worker_id=worker_id, config=config))
        except OSError as exc:
            with self._lock:
                self._dial_failed[worker_id] = f"{type(exc).__name__}: {exc}"
                self.events.append(
                    {
                        "type": "dial-failed",
                        "worker": worker_id,
                        "address": address,
                    }
                )
            self._audit(
                "dial-failed", {"worker": worker_id, "address": address}
            )
            return None
        handle = _WorkerHandle(
            worker_id=worker_id,
            process=_RemoteProcess(address),
            conn=conn,
            restarts=restarts,
        )
        handle.reader = threading.Thread(
            target=self._read_replies,
            args=(handle,),
            name=f"cluster-reader-{worker_id}",
            daemon=True,
        )
        with self._lock:
            if self._stopping or not self._started:
                conn.close()
                return None
            self._dial_failed.pop(worker_id, None)
            self._workers[worker_id] = handle
            self.router.mark_alive(worker_id)
            self._health[worker_id].reset()
            self._spawned_at[worker_id] = time.monotonic()
            self._last_heard.pop(worker_id, None)
            self._hb_flagged.discard(worker_id)
            self.events.append(
                {
                    "type": "spawn",
                    "worker": worker_id,
                    "restarts": restarts,
                    "pid": None,
                    "address": address,
                }
            )
        self._audit(
            "spawn", {"worker": worker_id, "restarts": restarts, "remote": True}
        )
        handle.reader.start()
        return handle

    def _read_replies(self, handle: _WorkerHandle) -> None:
        """Reader thread: resolve futures for one worker until its pipe closes."""
        while True:
            try:
                msg = recv_frame(handle.conn)
            except (EOFError, OSError):
                break
            except TypeError:
                # CPython's Connection surfaces a concurrent close() from
                # another thread (stop(), or a crash handler reacting to a
                # failed send) as TypeError from the raw read — treat it
                # exactly like the EOF it is
                break
            except CorruptFrameError as exc:
                # the pipe still frames messages, so only this frame is
                # lost — but *why* it was lost matters.  Garbage bytes are
                # wire corruption: penalize the worker's breaker.  A
                # payload whose own reconstruction code raised is a bug in
                # that payload: surface it, and do not smear the worker.
                # Either way the answered request is recovered by its
                # attempt timeout (or by quarantine requeue).
                if exc.genuine_bug:
                    with self._lock:
                        self.frame_decode_bugs += 1
                    self._audit(
                        "frame-decode-bug",
                        {"worker": handle.worker_id, "cause": exc.cause_type},
                    )
                else:
                    with self._lock:
                        self.corrupted_frames += 1
                    self._note_failure(handle.worker_id, "corrupt-frame")
                continue
            self._last_heard[handle.worker_id] = time.monotonic()
            if isinstance(msg, ReplyBatch):
                for part in msg.messages:
                    self._handle_frame(handle, part)
            else:
                self._handle_frame(handle, msg)
        self._on_worker_exit(handle)

    def _handle_frame(self, handle: _WorkerHandle, msg: object) -> None:
        """Process one worker frame (possibly unpacked from a ReplyBatch)."""
        if isinstance(msg, (RankReply, ErrorReply)):
            with self._lock:
                pending = handle.pending.pop(msg.req_id, None)
                # any reply proves the loop is serving: heal a suspect
                self._health[handle.worker_id].record_success()
            if pending is None:
                # a late reply for a request already retried, expired or
                # requeued: nobody will consume it, so its slab slot (if
                # any) must go straight back to the worker
                if isinstance(msg, RankReply):
                    self._release_ref(msg.scores)
                return
            if isinstance(msg, ErrorReply):
                _settle(pending.future, error=msg.error)
            else:
                ranked, scores, lease = self._materialize_reply(pending, msg)
                if self._fallback_store is not None and pending.top_k is None:
                    # the store outlives the lease: hand it owned bytes,
                    # never a view into a slot about to be recycled
                    self._fallback_store.remember(
                        pending.instance,
                        pending.candidates,
                        ranked,
                        scores if lease is None or scores is None else np.array(scores),
                        msg.model_version,
                    )
                if self.tracer is not None and pending.trace_ctx is not None:
                    self._record_reply_trace(pending, msg)
                if self.audit is not None:
                    # the request's own trace id only — answer events
                    # are per-request, not fleet-wide, and must stay
                    # off the lock (one per reply)
                    self.audit.record(
                        "answer",
                        {
                            "req_id": pending.req_id,
                            "model_version": msg.model_version,
                            "worker": msg.worker_id,
                            "cached": msg.cached,
                            "attempts": pending.attempts,
                            "why": "routed",
                        },
                        (pending.trace_ctx.trace_id,)
                        if pending.trace_ctx is not None
                        else (),
                    )
                _settle(
                    pending.future,
                    ClusterResponse(
                        ranked=ranked,
                        scores=scores,
                        model_version=msg.model_version,
                        cached=msg.cached,
                        latency_s=time.perf_counter() - pending.submitted_at,
                        service_latency_s=msg.service_latency_s,
                        worker_id=msg.worker_id,
                        attempts=pending.attempts,
                        slab_lease=lease,
                    ),
                )
        elif isinstance(msg, Heartbeat):
            pass  # receipt time (recorded by the reader) is the signal
        elif isinstance(msg, Pong):
            self._on_pong(handle)
        elif isinstance(msg, StatsReply):
            with self._lock:
                fut = handle.stats_pending.pop(msg.req_id, None)
            if fut is not None:
                _settle(fut, msg)
        elif isinstance(msg, FeedbackRecord):
            if isinstance(msg.scores, SlabRef):
                ring = self._slab_rings.get(msg.scores.name)
                if ring is None:  # pragma: no cover - stop raced the record
                    return
                # copy out and release immediately: records fan out to
                # listeners that buffer them far beyond the slot's life
                scores = np.array(ring.view(msg.scores))
                ring.release(msg.scores)
                msg = dataclasses.replace(msg, scores=scores)
            self._on_feedback(msg)

    def _reply_candidates(self, pending: _PendingReq) -> "Sequence[TuningVector]":
        """The candidate list a reply's indices point into.

        The coordinator always holds it: explicit lists ride the pending
        entry, interned sets carry their tuple, and preset requests
        (``candidates=None``) rehydrate from the parent memo —
        bit-identical to the worker's own preset set.
        """
        candidates = pending.candidates
        if candidates is None:
            return self._presets(pending.instance.dims)
        if isinstance(candidates, InternedCandidates):
            return candidates.candidates
        return candidates

    def _materialize_reply(
        self, pending: _PendingReq, msg: RankReply
    ) -> "tuple[list[TuningVector], np.ndarray | None, _SlabLease | None]":
        """Turn a wire reply into (ranked list, scores, slab lease).

        ``ranked_idx`` replies are rehydrated against the coordinator's
        own candidate list; slab-transported scores become read-only
        zero-copy views guarded by a lease the caller must release.
        """
        if msg.ranked_idx is not None:
            candidates = self._reply_candidates(pending)
            ranked = [candidates[i] for i in msg.ranked_idx.tolist()]
        else:
            ranked = list(msg.ranked or ())
        scores = msg.scores
        lease: "_SlabLease | None" = None
        if isinstance(scores, SlabRef):
            ring = self._slab_rings.get(scores.name)
            if ring is None:  # pragma: no cover - stop raced the reply
                scores = None
            else:
                lease = _SlabLease(ring, scores)
                scores = ring.view(scores)
        return ranked, scores, lease

    def _release_ref(self, scores: object) -> None:
        """Return an unconsumed reply's slab slot (no-op for arrays/None)."""
        if isinstance(scores, SlabRef):
            ring = self._slab_rings.get(scores.name)
            if ring is not None:
                ring.release(scores)

    def _record_reply_trace(self, pending: _PendingReq, msg: RankReply) -> None:
        """Merge a traced reply's worker spans and close the trace.

        All processes share the host's monotonic clock, so the two
        transport stages are synthesized from the gaps around the worker's
        span block: ``worker-ingress`` (pipe transit + inbox/loop wait
        before the service saw the request) and ``reply-egress`` (reply
        pickle + transit + this reader thread's wake-up).  Clock skew
        between processes is sub-microsecond but not zero; negative gaps
        clamp to zero inside :meth:`Tracer.span`.
        """
        ctx = pending.trace_ctx
        now = time.monotonic()
        spans = msg.spans or ()
        if spans:
            self.tracer.recorder.record_many(spans)
            first = min(s.start_s for s in spans)
            last = max(s.end_s for s in spans)
            if pending.sent_at is not None:
                self.tracer.span(
                    ctx,
                    "worker-ingress",
                    pending.sent_at,
                    first,
                    {"worker": msg.worker_id},
                )
            self.tracer.span(
                ctx, "reply-egress", last, now, {"worker": msg.worker_id}
            )
        self.tracer.span(
            ctx,
            ROOT_SPAN,
            pending.submitted_mono,
            now,
            {
                "worker": msg.worker_id,
                "attempts": pending.attempts,
                "cached": msg.cached,
            },
        )

    def _on_pong(self, handle: _WorkerHandle) -> None:
        """A probe round-tripped: close the breaker and readmit the shard."""
        with self._lock:
            breaker = self._health[handle.worker_id]
            was = breaker.state
            breaker.record_probe_ok()
            if was is HealthState.QUARANTINED and not handle.dead and not self._stopping:
                self.router.mark_alive(handle.worker_id)
                self._hb_flagged.discard(handle.worker_id)
                self.readmissions += 1
                self.events.append(
                    {"type": "readmit", "worker": handle.worker_id}
                )
                if self.tracer is not None:
                    self.tracer.record_event(
                        "readmit", attrs={"worker": handle.worker_id}
                    )
                self._audit("readmit", {"worker": handle.worker_id})

    def _note_failure(self, worker_id: int, kind: str) -> None:
        """Feed one failure to a worker's breaker; act on a trip."""
        requeue: list[_PendingReq] = []
        with self._lock:
            breaker = self._health.get(worker_id)
            if breaker is None:
                return
            was = breaker.state
            now = breaker.record_failure(kind)
            if now is HealthState.QUARANTINED and was is not HealthState.QUARANTINED:
                requeue = self._quarantine_locked(worker_id, kind)
        for pending in requeue:
            self._dispatch(pending)

    def _quarantine_locked(self, worker_id: int, reason: str) -> "list[_PendingReq]":
        """Unroute a quarantined worker and strip its pending work (caller
        holds the lock and re-dispatches the returned requests outside it)."""
        self.router.mark_dead(worker_id)
        self.quarantines += 1
        # a quarantined worker may be hung forever: unlink its slab
        # segment *now* so a chaos run can never leak /dev/shm entries.
        # Unlink only removes the name — both sides' mappings stay valid,
        # so a worker that is later readmitted keeps writing into the
        # same (now anonymous) ring without noticing
        ring = self._worker_ring.get(worker_id)
        if ring is not None:
            ring.unlink()
        handle = self._workers.get(worker_id)
        orphans: list[_PendingReq] = []
        if handle is not None:
            orphans = list(handle.pending.values())
            handle.pending.clear()
        self.events.append(
            {
                "type": "quarantine",
                "worker": worker_id,
                "reason": reason,
                "requeued": len(orphans),
            }
        )
        self._audit(
            "quarantine",
            {"worker": worker_id, "reason": reason, "requeued": len(orphans)},
        )
        if self.tracer is not None:
            self.tracer.record_event(
                "quarantine",
                attrs={"worker": worker_id, "reason": reason, "requeued": len(orphans)},
            )
            now = time.monotonic()
            for p in orphans:
                if p.trace_ctx is not None:
                    self.tracer.span(
                        p.trace_ctx, "requeue", now, now, {"from_worker": worker_id}
                    )
        return orphans

    def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        """Crash path: unroute, requeue the dead worker's shard, maybe restart."""
        with self._lock:
            if handle.dead or self._stopping:
                return
            handle.dead = True
            self.crashes += 1
            self.router.mark_dead(handle.worker_id)
            self._health[handle.worker_id].record_failure("crash")
            self._hb_flagged.discard(handle.worker_id)
            # the dead worker's segment loses its name immediately (a
            # SIGKILLed worker never cleans up; the coordinator owns the
            # lifecycle).  The ring object stays in _slab_rings so views
            # already handed out — and any reply bytes still in the pipe —
            # keep resolving; the replacement spawn creates a fresh ring
            ring = self._worker_ring.pop(handle.worker_id, None)
            if ring is not None:
                ring.unlink()
            orphans = list(handle.pending.values())
            handle.pending.clear()
            stats_orphans = list(handle.stats_pending.values())
            handle.stats_pending.clear()
            if self._workers.get(handle.worker_id) is handle:
                del self._workers[handle.worker_id]
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            restart = self.restart_workers and handle.restarts < self.max_restarts
            self.events.append(
                {
                    "type": "worker-exit",
                    "worker": handle.worker_id,
                    "requeued": len(orphans),
                    "restarted": restart,
                }
            )
        self._audit(
            "worker-exit",
            {
                "worker": handle.worker_id,
                "requeued": len(orphans),
                "restarted": restart,
            },
        )
        if self.tracer is not None:
            self.tracer.record_event(
                "worker-exit",
                attrs={
                    "worker": handle.worker_id,
                    "requeued": len(orphans),
                    "restarted": restart,
                },
            )
            now = time.monotonic()
            for p in orphans:
                if p.trace_ctx is not None:
                    self.tracer.span(
                        p.trace_ctx, "requeue", now, now, {"from_worker": handle.worker_id}
                    )
        handle.process.join(timeout=5.0)  # reap; already exited
        for fut in stats_orphans:
            _settle(fut, error=RuntimeError("worker died before answering stats"))
        if restart:  # outside the lock: a restart must not stall other shards
            self._spawn(handle.worker_id, restarts=handle.restarts + 1)
        # requeue after the replacement is routable: ranking is pure, so
        # re-executing an orphaned request on another shard is safe
        for pending in orphans:
            self._dispatch(pending)

    def _dispatch(self, pending: _PendingReq) -> None:
        """Route and send one request; crashes during send trigger requeue.

        Routing is health-aware and widens in rings: healthy workers the
        request has not timed out on, then any alive worker it has not
        timed out on (suspects as a last resort), then any alive worker
        at all (better a worker it already distrusts than nobody).
        Quarantined workers are not in the alive set and take no traffic.
        """
        pending.attempts += 1
        if pending.attempts > (
            self.n_workers + self.max_restarts + 1 + self.resilience.max_retries
        ):
            self._degrade_or_fail(  # pragma: no cover - repeated crashes
                pending,
                RuntimeError(
                    f"request gave up after {pending.attempts - 1} dispatch attempts"
                ),
            )
            return
        tracing = self.tracer is not None and pending.trace_ctx is not None
        t_route = time.monotonic() if tracing else 0.0
        if tracing and pending.backoff_queued_at is not None:
            # the jittered wait this retry just served, as a detour stage
            self.tracer.span(
                pending.trace_ctx,
                "retry-backoff",
                pending.backoff_queued_at,
                t_route,
                {"retry": pending.retries},
            )
            pending.backoff_queued_at = None
        key = instance_hash(pending.instance)
        with self._lock:
            alive = set(self.router.alive())
            healthy = {
                w for w in alive if self._health[w].state is HealthState.HEALTHY
            }
            worker_id: "int | None" = None
            for pool in (
                healthy - pending.excluded,
                alive - pending.excluded,
                alive,
            ):
                if pool:
                    worker_id = self.router.route(key, within=pool)
                    break
            if worker_id is None:  # nothing alive at all
                self._degrade_or_fail(
                    pending, RuntimeError("no alive workers to route to")
                )
                return
            handle = self._workers.get(worker_id)
            if handle is None:  # stop() won the race with this dispatch
                _settle(
                    pending.future,
                    error=RuntimeError("cluster stopped before the request was routed"),
                )
                return
            pending.worker_id = worker_id
            pending.attempt_started = time.monotonic()
            handle.pending[pending.req_id] = pending
        request = RankRequest(
            req_id=pending.req_id,
            instance=pending.instance,
            candidates=pending.candidates,
            model_ref=pending.model_ref,
            top_k=pending.top_k,
            include_scores=pending.include_scores,
            trace=pending.trace_ctx,
        )
        try:
            with handle.send_lock:
                handle.conn.send(request)
        except (BrokenPipeError, OSError, TypeError, ValueError):
            # the worker died under our pen: the crash path requeues
            # everything in its pending map, including this request.
            # TypeError/ValueError cover a concurrent close() nulling the
            # pipe handle between send()'s closed-check and the write.
            self._on_worker_exit(handle)
            return
        if tracing:
            pending.sent_at = time.monotonic()
            # route + pickle + pipe write, per attempt
            self.tracer.span(
                pending.trace_ctx,
                "dispatch",
                t_route,
                pending.sent_at,
                {"worker": worker_id, "attempt": pending.attempts},
            )

    # -- the monitor: deadlines, retries, heartbeats, probes -------------------

    def _monitor_loop(self) -> None:
        """The coordinator's failure-domain heartbeat, one small thread.

        Every tick: release backed-off retries whose time has come,
        expire attempts and deadlines, judge heartbeat silence, and probe
        unhealthy workers.  All decisions happen under the cluster lock;
        all resulting sends/dispatches happen outside it.
        """
        interval = self.resilience.monitor_interval_s
        while not self._monitor_stop.wait(interval):
            if self._stopping:
                return
            try:
                self._tick()
            except Exception:  # pragma: no cover - monitor must survive
                # a monitor crash would silently disable every deadline;
                # nothing it does is worth dying for
                continue

    def _tick(self) -> None:
        now = time.monotonic()
        self._release_retries(now)
        self._expire_attempts(now)
        self._judge_heartbeats(now)
        self._probe_unhealthy()

    def _release_retries(self, now: float) -> None:
        """Dispatch backed-off retries that are due; expire dead-on-arrival ones."""
        due: list[_PendingReq] = []
        expired: list[_PendingReq] = []
        with self._lock:
            if not self._retry_queue:
                return
            waiting: list[_PendingReq] = []
            for pending in self._retry_queue:
                if pending.deadline_at is not None and now >= pending.deadline_at:
                    expired.append(pending)
                elif now >= pending.not_before:
                    due.append(pending)
                else:
                    waiting.append(pending)
            self._retry_queue = waiting
        for pending in expired:
            self._degrade_or_fail(
                pending,
                DeadlineExceededError(
                    f"deadline exceeded after {pending.attempts} attempts"
                ),
            )
        for pending in due:
            self._dispatch(pending)

    def _expire_attempts(self, now: float) -> None:
        """Time out stalled dispatches; retry, degrade, or fail each one."""
        victims: "list[tuple[int, _PendingReq]]" = []
        with self._lock:
            for handle in self._workers.values():
                for pending in list(handle.pending.values()):
                    timeout = pending.attempt_timeout_s
                    started = pending.attempt_started
                    overdue = (
                        timeout is not None
                        and started is not None
                        and now - started > timeout
                    )
                    past_deadline = (
                        pending.deadline_at is not None
                        and now >= pending.deadline_at
                    )
                    if overdue or past_deadline:
                        handle.pending.pop(pending.req_id, None)
                        victims.append((handle.worker_id, pending))
        for worker_id, pending in victims:
            with self._lock:
                self.timeouts += 1
            # the stall is evidence against the worker regardless of what
            # happens to the request
            self._note_failure(worker_id, "timeout")
            if pending.deadline_at is not None and now >= pending.deadline_at:
                self._degrade_or_fail(
                    pending,
                    DeadlineExceededError(
                        f"deadline exceeded after {pending.attempts} attempts"
                    ),
                )
            elif pending.retries < self.resilience.max_retries:
                self._queue_retry(pending, worker_id, now)
            else:
                self._degrade_or_fail(
                    pending,
                    RuntimeError(
                        f"request timed out on {pending.attempts} dispatch attempts"
                    ),
                )

    def _queue_retry(self, pending: _PendingReq, timed_out_on: int, now: float) -> None:
        """Schedule a timed-out request for re-dispatch with jittered backoff.

        The jitter is hashed from (request id, retry ordinal) — spread
        like randomness, reproducible like everything else in this repo.
        """
        pending.retries += 1
        pending.excluded.add(timed_out_on)
        u = hash_bits("cluster-retry", pending.req_id, pending.retries)[0] / 2**64
        backoff = self.resilience.retry_backoff_s * (2 ** (pending.retries - 1))
        pending.not_before = now + backoff * (0.5 + u)
        if self.tracer is not None and pending.trace_ctx is not None:
            pending.backoff_queued_at = now  # closed by the next dispatch
        with self._lock:
            self.retries_scheduled += 1
            self._retry_queue.append(pending)

    def _judge_heartbeats(self, now: float) -> None:
        """Turn heartbeat silence into health state.

        Crossing ``heartbeat_stale_s`` costs one breaker failure (suspect);
        crossing twice that quarantines outright — a loop silent that long
        is hung, not busy.  Workers that have never spoken get
        ``boot_grace_s`` (model load + imports happen before the first
        beat).  Hearing the worker again clears the flag and heals a
        suspect.
        """
        if self.config.heartbeat_interval_s <= 0:
            return
        resil = self.resilience
        actions: "list[tuple[str, int]]" = []
        with self._lock:
            for worker_id, handle in self._workers.items():
                if handle.dead:
                    continue
                heard = self._last_heard.get(worker_id)
                if heard is None:
                    born = self._spawned_at.get(worker_id, now)
                    if now - born <= resil.boot_grace_s:
                        continue
                    silence = now - born
                else:
                    silence = now - heard
                breaker = self._health[worker_id]
                if silence > 2 * resil.heartbeat_stale_s:
                    if breaker.state is not HealthState.QUARANTINED:
                        breaker.quarantine("heartbeat")
                        actions.append(("quarantine", worker_id))
                elif silence > resil.heartbeat_stale_s:
                    if worker_id not in self._hb_flagged:
                        self._hb_flagged.add(worker_id)
                        was = breaker.state
                        state = breaker.record_failure("heartbeat")
                        if (
                            state is HealthState.QUARANTINED
                            and was is not HealthState.QUARANTINED
                        ):
                            actions.append(("quarantine", worker_id))
                elif worker_id in self._hb_flagged:
                    self._hb_flagged.discard(worker_id)
                    breaker.record_success()  # heard again: heal a suspect
            requeue: list[_PendingReq] = []
            for kind, worker_id in actions:
                requeue += self._quarantine_locked(worker_id, "heartbeat")
        for pending in requeue:
            self._dispatch(pending)

    def _probe_unhealthy(self) -> None:
        """Ping suspect/quarantined workers that are due for a probe."""
        probes: "list[tuple[_WorkerHandle, Ping]]" = []
        with self._lock:
            for worker_id, handle in self._workers.items():
                if handle.dead:
                    continue
                breaker = self._health[worker_id]
                if breaker.should_probe():
                    breaker.record_probe_sent()
                    probes.append((handle, Ping(req_id=self._ctl_ids())))
        for handle, ping in probes:
            try:
                with handle.send_lock:
                    handle.conn.send(ping)
            except (BrokenPipeError, OSError, TypeError, ValueError):
                pass  # the reader's EOF will run the crash path

    # -- degradation -----------------------------------------------------------

    def _degrade_or_fail(self, pending: _PendingReq, error: Exception) -> None:
        """The request's ending when no worker answered in time."""
        if self.resilience.degraded_answers:
            t_fallback = time.monotonic()
            response = self._fallback_response(pending)
            if response is not None:
                with self._lock:
                    self.degraded_served += 1
                if self.audit is not None:
                    why = "degraded-cache" if response.cached else "degraded-scored"
                    self.audit.record(
                        "answer",
                        {
                            "req_id": pending.req_id,
                            "model_version": response.model_version,
                            "worker": -1,
                            "cached": response.cached,
                            "attempts": pending.attempts,
                            "why": why,
                            "degraded": True,
                        },
                        (pending.trace_ctx.trace_id,)
                        if pending.trace_ctx is not None
                        else (),
                    )
                    self.audit.record(
                        "degrade",
                        {"req_id": pending.req_id, "why": why},
                        self._inflight_trace_ids(),
                    )
                if self.tracer is not None and pending.trace_ctx is not None:
                    now = time.monotonic()
                    self.tracer.span(
                        pending.trace_ctx,
                        "degraded-score",
                        t_fallback,
                        now,
                        {"cached": response.cached},
                    )
                    self.tracer.span(
                        pending.trace_ctx,
                        ROOT_SPAN,
                        pending.submitted_mono,
                        now,
                        {"worker": -1, "attempts": pending.attempts, "degraded": True},
                    )
                _settle(pending.future, response)
                return
        _settle(pending.future, error=error)

    def _fallback_response(self, pending: _PendingReq) -> "ClusterResponse | None":
        """A coordinator-side answer: remembered ranking, else local scoring."""
        answer = None
        if self._fallback_store is not None:
            answer = self._fallback_store.lookup(pending.instance, pending.candidates)
        if answer is None:
            try:
                candidates = pending.candidates
                if candidates is None:
                    candidates = self._presets(pending.instance.dims)
                elif isinstance(candidates, InternedCandidates):
                    candidates = list(candidates.candidates)
                answer = self._scorer().score(
                    pending.instance, candidates, pending.model_ref
                )
            except Exception:
                return None  # degradation also failed: the strict error stands
        ranked = (
            answer.ranked[: pending.top_k]
            if pending.top_k is not None
            else list(answer.ranked)
        )
        return ClusterResponse(
            ranked=ranked,
            scores=answer.scores if pending.include_scores else None,
            model_version=answer.model_version,
            cached=answer.cached,
            latency_s=time.perf_counter() - pending.submitted_at,
            service_latency_s=0.0,
            worker_id=-1,
            attempts=pending.attempts,
            degraded=True,
        )

    def _scorer(self) -> FallbackScorer:
        """The lazily built in-coordinator scorer (first degradation pays)."""
        with self._lock:
            if self._fallback_scorer is None:
                self._fallback_scorer = FallbackScorer(self.registry_root)
            return self._fallback_scorer

    def _queue_depth_locked(self) -> int:
        """Requests accepted but not yet answered (dispatched + backed off)."""
        return (
            sum(len(h.pending) for h in self._workers.values())
            + len(self._retry_queue)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceCluster({self.registry_root!r}, "
            f"alive={self.router.alive()}, crashes={self.crashes})"
        )


#: whether this process's (interpreter-wide) forkserver was asked to
#: preload the worker module.  ``mp.get_context("forkserver")`` returns a
#: process-global singleton, so the preload is configured exactly once —
#: and only if the forkserver has not already been started by earlier
#: code, in which case a late preload request would be silently ignored
#: and workers would simply pay the numpy/scipy import themselves.
_forkserver_preload_requested = False


def _context(start_method: "str | None") -> "mp.context.BaseContext":
    """The multiprocessing context to spawn workers with.

    Default is ``forkserver`` (clean children — no inherited threads or
    event loops — forked from a preloaded server, so per-worker startup
    does not pay the numpy/scipy import) with the worker module preloaded;
    platforms without it fall back to ``spawn``.  ``fork`` remains
    selectable for tests that want millisecond spawns.
    """
    global _forkserver_preload_requested
    if start_method is not None:
        return mp.get_context(start_method)
    try:
        ctx = mp.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return mp.get_context("spawn")
    if not _forkserver_preload_requested:
        _forkserver_preload_requested = True
        try:
            ctx.set_forkserver_preload(["repro.service.worker"])
        except Exception:  # pragma: no cover - server already running
            pass
    return ctx
