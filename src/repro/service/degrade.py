"""Graceful degradation: what the coordinator answers when workers cannot.

A deadline-missed request has two honest endings.  The *strict* one is an
exception; the *degraded* one — opted into with
``ResilienceConfig(degraded_answers=True)`` — is a coordinator-side answer
carrying an explicit ``degraded=True`` flag, produced without any worker:

1. :class:`FallbackStore` — an LRU of full rankings the coordinator
   remembers from successful worker replies.  A hit replays the exact
   bytes a worker served for the same (instance, candidate set), possibly
   under a model version that has since moved on — stale but correct for
   the version it names, which is precisely what the ``degraded`` flag
   communicates.
2. :class:`FallbackScorer` — an in-coordinator encode+score identical to
   the workers' pipeline (same encoder rows, same ``X @ w``, same stable
   argsort), used when the store has never seen the query.  Slower than a
   worker (no micro-batching, runs on the monitor thread) and therefore a
   last resort, but bit-identical to what a healthy worker would answer.

Degradation is answer-shaped load shedding; queue-shaped shedding is
:class:`ClusterOverloadedError`, raised by ``submit()`` when the cluster's
undispatched backlog exceeds ``max_queue_depth`` — deterministic
backpressure at the front door instead of a collapse under an unbounded
queue.  :class:`DeadlineExceededError` is the strict ending: the request's
time budget ran out and degradation was off (or also failed).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.features.encoder import FeatureEncoder
from repro.service.cache import InternedCandidates, candidate_set_hash
from repro.service.registry import ModelRegistry
from repro.stencil.execution import instance_hash
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = [
    "ClusterOverloadedError",
    "DeadlineExceededError",
    "FallbackAnswer",
    "FallbackScorer",
    "FallbackStore",
]


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed with no worker answer (strict mode)."""


class ClusterOverloadedError(RuntimeError):
    """Submission refused: the cluster's backlog is past ``max_queue_depth``."""


@dataclass(frozen=True)
class FallbackAnswer:
    """One coordinator-produced answer (cache replay or local scoring)."""

    #: full best-first candidate list (callers slice for top-k)
    ranked: list[TuningVector]
    #: full score array aligned with the request's candidate order
    #: (None when the remembered reply never carried scores)
    scores: "np.ndarray | None"
    model_version: str
    #: True when replayed from the store, False when scored locally
    cached: bool


def _candidates_key(
    dims: int,
    candidates: "Sequence[TuningVector] | InternedCandidates | None",
) -> "tuple[object, ...]":
    """A stable digest of a request's candidate set, preset-aware.

    Preset requests (``candidates=None``) key on the dimensionality alone —
    every worker serves the identical preset list for one ``dims``, so the
    coordinator never needs the materialized set to match them.  Interned
    sets reuse their precomputed hash; explicit lists pay one
    :func:`~repro.service.cache.candidate_set_hash` (only on the
    degradation paths, never on the normal dispatch path).
    """
    if candidates is None:
        return ("preset", dims)
    if isinstance(candidates, InternedCandidates):
        return ("explicit", candidates.content_hash)
    return ("explicit", candidate_set_hash(list(candidates)))


class FallbackStore:
    """LRU of full rankings remembered from successful worker replies.

    Keyed on (instance fingerprint, candidate-set key) — deliberately
    *not* on model version: a degraded answer's contract is "the best
    ranking the coordinator has", and the stored ``model_version`` tells
    the caller exactly which model that was.  Thread-safe: replies arrive
    on per-worker reader threads while the monitor thread consumes.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._data: "OrderedDict[tuple, FallbackAnswer]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        instance: StencilInstance,
        candidates: "Sequence[TuningVector] | InternedCandidates | None",
    ) -> tuple:
        return (instance_hash(instance), _candidates_key(instance.dims, candidates))

    def remember(
        self,
        instance: StencilInstance,
        candidates: "Sequence[TuningVector] | InternedCandidates | None",
        ranked: "Sequence[TuningVector]",
        scores: "np.ndarray | None",
        model_version: str,
    ) -> None:
        """Record one *full* ranking (top-k replies are not remembered —
        a truncated list cannot answer an arbitrary later request)."""
        answer = FallbackAnswer(
            ranked=list(ranked),
            scores=None if scores is None else np.asarray(scores),
            model_version=model_version,
            cached=True,
        )
        with self._lock:
            key = self.key(instance, candidates)
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = answer
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)

    def lookup(
        self,
        instance: StencilInstance,
        candidates: "Sequence[TuningVector] | InternedCandidates | None",
    ) -> "FallbackAnswer | None":
        key = self.key(instance, candidates)
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class FallbackScorer:
    """In-coordinator scoring, bit-identical to a worker's pipeline.

    Owns its encoder and a small LRU of loaded models; every call is
    serialized under one lock (degradation is the rare path — simplicity
    over concurrency).  Raises whatever the registry or encoder raises:
    the cluster treats a scorer failure as "degradation also failed" and
    falls through to the strict error.
    """

    def __init__(self, registry_root: str, max_cached_models: int = 4) -> None:
        self.registry = ModelRegistry(registry_root)
        self.encoder = FeatureEncoder()
        self.max_cached_models = max_cached_models
        self._models: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.scored = 0

    def score(
        self,
        instance: StencilInstance,
        candidates: Sequence[TuningVector],
        model_ref: str,
    ) -> FallbackAnswer:
        """Resolve, encode and score one query exactly as a worker would."""
        with self._lock:
            version = self.registry.resolve(model_ref)
            model = self._models.get(version)
            if model is None:
                model = self.registry.load(
                    version, expect_fingerprint=self.encoder.fingerprint()
                )
                self._models[version] = model
                while len(self._models) > self.max_cached_models:
                    self._models.popitem(last=False)
            else:
                self._models.move_to_end(version)
            candidates = list(candidates)
            X = self.encoder.encode_many([(instance, candidates)])
            scores = model.decision_function(X)
            self.scored += 1
        order = np.argsort(-scores, kind="stable")
        return FallbackAnswer(
            ranked=[candidates[i] for i in order.tolist()],
            scores=np.asarray(scores),
            model_version=version,
            cached=False,
        )
