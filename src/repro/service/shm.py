"""Zero-copy score transport: per-worker shared-memory slab rings.

Replies carrying dense score arrays used to pickle them through the
worker pipe — for a preset-sized 3-D request that is ~69 KB serialized,
copied, framed, read and deserialized *per reply*.  This module replaces
that with one :class:`ScoreSlabRing` per worker: a
``multiprocessing.shared_memory`` segment split into fixed-size slots,
each guarded by a one-byte in-use flag.  The worker writes a score array
into a free slot and ships a tiny :class:`SlabRef` (name, slot, length,
dtype) over the pipe; the coordinator maps the same segment once and
hands out **read-only views** — the scores never cross the pipe and are
never copied on the answer path.

Slot protocol (lock-free by single-writer discipline):

* the **worker** is the only writer of ``1`` — it claims a free slot,
  memcpys the scores, *then* sends the ref (the pipe write is the
  happens-before edge: the coordinator only looks at a slot after
  receiving its ref);
* the **coordinator** is the only writer of ``0`` — it releases a slot
  when the answer is consumed (``ClusterResponse.release()``), when a
  late reply arrives for an already-written-off request, or when a
  feedback record's scores have been copied out.

A full ring or an oversized array degrades gracefully: ``write`` returns
``None`` and the caller falls back to pickling the array — the path
cross-host futures will keep using, so it stays exercised.

Lifecycle (crash-safe by construction): the **coordinator** creates and
unlinks every segment; the worker only attaches.  Python registers
attached segments with the ``resource_tracker`` exactly as created ones,
but every multiprocessing child shares the *parent's* tracker process
(the tracker fd is inherited / passed at spawn), so the worker's attach
just re-registers the same name in the same tracker — a set, hence a
no-op — and the coordinator's unlink unregisters it once.  A SIGKILLed
worker therefore never triggers tracker cleanup of a segment the
coordinator still maps, and anything the coordinator itself fails to
unlink is swept by the shared tracker at process exit.  On Linux an
unlink only removes the *name*; existing mappings stay valid, which is
why the coordinator can unlink at worker exit or quarantine (chaos runs
must not leak ``/dev/shm`` entries) while outstanding score views keep
reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ScoreSlabRing", "SlabRef", "leaked_segments"]

#: flag bytes live at the head of the segment, slot data after this many
#: bytes (page-aligned so slot 0 starts cache-line clean)
_HEADER_BYTES = 4096

#: default slot size: one preset-sized 3-D score array (8640 × float64)
DEFAULT_SLOT_BYTES = 8640 * 8

#: default slots per ring (~4.4 MB per worker at the default slot size)
DEFAULT_SLOTS = 64


@dataclass(frozen=True)
class SlabRef:
    """A pipe-sized handle to one score array parked in a slab slot."""

    #: shared-memory segment name (the ring identity)
    name: str
    slot: int
    #: element count of the parked 1-D array
    count: int
    #: numpy dtype name ("float64" / "float32")
    dtype: str


class ScoreSlabRing:
    """A fixed-slot shared-memory ring for one worker's score arrays."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slots: int,
        slot_bytes: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.slots = slots
        self.slot_bytes = slot_bytes
        #: True on the coordinator side (created the segment, may unlink)
        self.owner = owner
        self._flags: "np.ndarray | None" = np.ndarray(
            (slots,), dtype=np.uint8, buffer=shm.buf
        )
        self._cursor = 0
        self._unlinked = False
        self._closed = False
        self._close_pending = False
        #: arrays parked (worker side)
        self.writes = 0
        #: arrays that could not be parked (ring full / oversized)
        self.fallbacks = 0
        #: slots returned (coordinator side)
        self.releases = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        name: str,
        slots: int = DEFAULT_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> "ScoreSlabRing":
        """Coordinator side: create (and own) a zeroed ring segment."""
        if slots < 1 or slots > _HEADER_BYTES:
            raise ValueError(f"slots must be in [1, {_HEADER_BYTES}], got {slots}")
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=_HEADER_BYTES + slots * slot_bytes
        )
        ring = cls(shm, slots, slot_bytes, owner=True)
        ring._flags[:] = 0
        return ring

    @classmethod
    def attach(
        cls,
        name: str,
        slots: int = DEFAULT_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> "ScoreSlabRing":
        """Worker side: map an existing ring (never unlinks it)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- slot protocol ---------------------------------------------------------

    def write(self, arr: np.ndarray) -> "SlabRef | None":
        """Park a 1-D array in a free slot; None means "pickle it instead".

        Scans from a rotating cursor so consecutive writes spread over the
        ring instead of hammering slot 0's flag line.
        """
        arr = np.ascontiguousarray(arr).reshape(-1)
        if self._closed or arr.nbytes > self.slot_bytes:
            self.fallbacks += 1
            return None
        flags = self._flags
        for i in range(self.slots):
            slot = (self._cursor + i) % self.slots
            if flags[slot] == 0:
                flags[slot] = 1
                self._cursor = (slot + 1) % self.slots
                dst = np.ndarray(
                    arr.shape,
                    dtype=arr.dtype,
                    buffer=self._shm.buf,
                    offset=_HEADER_BYTES + slot * self.slot_bytes,
                )
                dst[...] = arr
                self.writes += 1
                return SlabRef(self.name, slot, arr.size, arr.dtype.name)
        self.fallbacks += 1
        return None

    def view(self, ref: SlabRef) -> np.ndarray:
        """A read-only zero-copy view of a parked array (coordinator side)."""
        if self._closed:
            raise ValueError(f"ring {self.name!r} is closed")
        if ref.slot < 0 or ref.slot >= self.slots:
            raise ValueError(f"slot {ref.slot} outside ring of {self.slots}")
        out = np.ndarray(
            (ref.count,),
            dtype=np.dtype(ref.dtype),
            buffer=self._shm.buf,
            offset=_HEADER_BYTES + ref.slot * self.slot_bytes,
        )
        out.setflags(write=False)
        return out

    def release(self, ref: SlabRef) -> None:
        """Return a slot to the worker; views of it must not be read after."""
        if self._closed:
            return
        if 0 <= ref.slot < self.slots:
            self._flags[ref.slot] = 0
            self.releases += 1
        if self._close_pending and self.in_use() == 0:
            self._do_close()

    def in_use(self) -> int:
        """Slots currently holding unreleased arrays."""
        if self._closed:
            return 0
        return int(np.count_nonzero(self._flags))

    # -- lifecycle -------------------------------------------------------------

    def unlink(self) -> None:
        """Remove the segment name (owner only; mappings stay valid)."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def close(self) -> None:
        """Unmap the segment, deferring while score slots are outstanding.

        ``SharedMemory.close`` unmaps immediately even when numpy views
        of the buffer still exist (the views do not export-lock the
        mapping), so closing under a live :class:`SlabRef` lease would
        turn its next flag write or score read into a use-after-unmap
        crash.  Instead the close is deferred: while any slot is in use
        the ring only marks itself close-pending, and the **last**
        ``release`` performs the real unmap.  Callers must treat score
        views as dead once their slot is released — that was already the
        slot-protocol contract.
        """
        if self._closed:
            return
        if self.in_use():
            self._close_pending = True
            return
        self._do_close()

    def _do_close(self) -> None:
        self._closed = True
        self._flags = None  # drop our own view before unmapping
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exporting buffers exist
            pass

    def stats(self) -> dict:
        return {
            "slab_slots": self.slots,
            "slab_in_use": self.in_use(),
            "slab_writes_total": self.writes,
            "slab_fallbacks_total": self.fallbacks,
            "slab_releases_total": self.releases,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScoreSlabRing({self.name!r}, {self.in_use()}/{self.slots} in use, "
            f"owner={self.owner})"
        )


def leaked_segments(prefix: str) -> list[str]:
    """Shared-memory segment names starting with ``prefix`` (Linux only).

    The chaos soak asserts this is empty after a run full of SIGKILLs —
    the crash-safety claim of the unlink-at-exit/quarantine protocol.
    Returns ``[]`` on platforms without a visible ``/dev/shm``.
    """
    from pathlib import Path

    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in shm_dir.glob(f"{prefix}*"))
