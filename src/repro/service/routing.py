"""Instance-affine routing: which worker owns which instance.

A cluster of tuning-service workers only scales if each worker's ranking
cache stays hot, and a per-worker cache stays hot only if the *same*
instance always lands on the *same* worker.  :class:`ShardRouter` maps an
instance fingerprint (:func:`repro.stencil.execution.instance_hash`) to a
worker id with rendezvous (highest-random-weight) hashing:

* **deterministic & process-stable** — the weight of (key, worker) is a
  BLAKE2b hash (:func:`repro.util.rng.hash_seed`), so every process —
  parents, workers, a test asserting affinity — computes the identical
  route for the same alive set;
* **balanced** — weights are uniform, so keys spread evenly across
  workers (pinned over 10k synthetic instances in
  ``tests/cluster/test_hash_properties.py``);
* **minimal movement** — when a worker dies, only *its* keys move (each
  key falls to its second-highest worker); every other instance keeps its
  worker and therefore its warm cache.  Mod-N routing would reshuffle
  nearly everything on a membership change.

The router is pure bookkeeping over an alive-set — it neither talks to
processes nor owns sockets, which keeps it independently testable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.util.rng import hash_seed

__all__ = ["ShardRouter"]


class ShardRouter:
    """Rendezvous-hash routing of instance fingerprints to worker ids."""

    def __init__(self, worker_ids: "Sequence[int] | Iterable[int]") -> None:
        self._all = tuple(sorted(set(worker_ids)))
        if not self._all:
            raise ValueError("ShardRouter needs at least one worker id")
        self._alive = set(self._all)

    # -- membership ------------------------------------------------------------

    @property
    def worker_ids(self) -> tuple[int, ...]:
        """Every worker id ever registered, dead or alive, sorted."""
        return self._all

    def alive(self) -> tuple[int, ...]:
        """Currently routable worker ids, sorted."""
        return tuple(sorted(self._alive))

    def mark_dead(self, worker_id: int) -> None:
        """Remove a worker from routing (no-op if already dead)."""
        self._alive.discard(worker_id)

    def mark_alive(self, worker_id: int) -> None:
        """(Re-)admit a worker to routing — e.g. after a restart."""
        if worker_id not in self._all:
            self._all = tuple(sorted(self._all + (worker_id,)))
        self._alive.add(worker_id)

    # -- routing ---------------------------------------------------------------

    @staticmethod
    def weight(key: int, worker_id: int) -> int:
        """The rendezvous weight of (key, worker) — process-stable."""
        return hash_seed("shard", key, worker_id)

    def route(self, key: int, within: "Iterable[int] | None" = None) -> int:
        """The alive worker owning ``key`` (an instance fingerprint).

        ``within`` restricts the election to a subset of the alive set —
        the health-aware dispatch path routes over *healthy* workers first
        and widens only when that pool is empty.  Rendezvous hashing makes
        subsetting safe: the route over a subset is the highest-weight
        member of that subset, so keys whose owner is in the subset do not
        move, exactly as if the excluded workers had died.

        Raises :class:`RuntimeError` when the pool is empty — the caller
        decides whether that fails the request or waits for a restart.
        """
        pool = self._alive if within is None else self._alive & set(within)
        if not pool:
            raise RuntimeError("no alive workers to route to")
        # ties are impossible in practice (64-bit uniform weights), but the
        # worker-id tiebreak keeps the route a total function regardless
        return max(pool, key=lambda w: (self.weight(key, w), w))

    def shards(self, keys: Iterable[int]) -> dict[int, list[int]]:
        """Group keys by their routed worker (diagnostics and tests)."""
        out: dict[int, list[int]] = {w: [] for w in self.alive()}
        for key in keys:
            out[self.route(key)].append(key)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(alive={self.alive()}, all={self._all})"
