"""Instance-affine routing: which worker owns which instance.

A cluster of tuning-service workers only scales if each worker's ranking
cache stays hot, and a per-worker cache stays hot only if the *same*
instance always lands on the *same* worker.  :class:`ShardRouter` maps an
instance fingerprint (:func:`repro.stencil.execution.instance_hash`) to a
worker id with rendezvous (highest-random-weight) hashing:

* **deterministic & process-stable** — the weight of (key, worker) is a
  BLAKE2b hash (:func:`repro.util.rng.hash_seed`), so every process —
  parents, workers, a test asserting affinity — computes the identical
  route for the same alive set;
* **balanced, proportionally** — each worker carries a *capacity weight*
  (default 1.0).  Equal weights spread keys evenly (pinned over 10k
  synthetic instances in ``tests/cluster/test_hash_properties.py``); a
  weight-2 worker takes ~2× the shard share of a weight-1 worker
  (``tests/cluster/test_weighted_routing.py``) — the heterogeneous-fleet
  knob for a big host behind the socket transport;
* **minimal movement** — when a worker dies *or its weight changes*,
  only keys involving that worker move; every other instance keeps its
  worker and therefore its warm cache.  Mod-N routing would reshuffle
  nearly everything on a membership change.

Weighted election uses the standard logarithmic form: each worker scores
``-weight / ln(u)`` where ``u ∈ (0, 1)`` is derived from the 64-bit
(key, worker) hash, and the highest score wins.  The score is strictly
monotonic in the hash at equal weights, so **uniform-weight routing
elects exactly the worker the classic integer-hash argmax always did** —
every affinity pin in the cluster suites survives the weighted upgrade
bit-for-bit (the uniform case literally runs the classic argmax).  A
weight of 0 *drains* a worker: it stops receiving new shards while it
stays alive to finish what it has — unless every candidate is draining,
in which case serving beats draining and the classic election applies.

The router is pure bookkeeping over an alive-set — it neither talks to
processes nor owns sockets, which keeps it independently testable.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.util.rng import hash_seed

__all__ = ["ShardRouter"]


class ShardRouter:
    """Rendezvous-hash routing of instance fingerprints to worker ids."""

    def __init__(
        self,
        worker_ids: "Sequence[int] | Iterable[int]",
        weights: "Mapping[int, float] | None" = None,
    ) -> None:
        self._all = tuple(sorted(set(worker_ids)))
        if not self._all:
            raise ValueError("ShardRouter needs at least one worker id")
        self._alive = set(self._all)
        self._weights: dict[int, float] = {w: 1.0 for w in self._all}
        if weights is not None:
            for worker_id, weight in weights.items():
                self.set_weight(worker_id, weight)

    # -- membership ------------------------------------------------------------

    @property
    def worker_ids(self) -> tuple[int, ...]:
        """Every worker id ever registered, dead or alive, sorted."""
        return self._all

    def alive(self) -> tuple[int, ...]:
        """Currently routable worker ids, sorted."""
        return tuple(sorted(self._alive))

    def mark_dead(self, worker_id: int) -> None:
        """Remove a worker from routing (no-op if already dead)."""
        self._alive.discard(worker_id)

    def mark_alive(self, worker_id: int) -> None:
        """(Re-)admit a worker to routing — e.g. after a restart."""
        if worker_id not in self._all:
            self._all = tuple(sorted(self._all + (worker_id,)))
            self._weights.setdefault(worker_id, 1.0)
        self._alive.add(worker_id)

    # -- capacity weights ------------------------------------------------------

    def set_weight(self, worker_id: int, weight: float) -> None:
        """Set one worker's capacity weight (>= 0, finite; 0 = draining)."""
        if worker_id not in self._weights:
            raise KeyError(f"unknown worker id {worker_id}")
        weight = float(weight)
        if not (weight >= 0.0) or math.isinf(weight):  # also rejects NaN
            raise ValueError(
                f"weight must be finite and >= 0, got {weight!r} "
                f"for worker {worker_id}"
            )
        self._weights[worker_id] = weight

    def weight_of(self, worker_id: int) -> float:
        """One worker's current capacity weight."""
        return self._weights[worker_id]

    @property
    def weights(self) -> dict[int, float]:
        """A copy of the capacity-weight map (diagnostics and tests)."""
        return dict(self._weights)

    # -- routing ---------------------------------------------------------------

    @staticmethod
    def weight(key: int, worker_id: int) -> int:
        """The rendezvous hash of (key, worker) — process-stable.

        (Historically named; this is the 64-bit election hash, not the
        capacity weight — see :meth:`weight_of` for that.)
        """
        return hash_seed("shard", key, worker_id)

    def _score(self, key: int, worker_id: int) -> float:
        """The weighted rendezvous score: ``-capacity / ln(u)``.

        ``u = (hash + 0.5) / 2**64`` lies strictly inside (0, 1) — never
        0 or 1, so the log is finite and nonzero — and is monotonic in
        the hash, which is what makes equal-weight elections agree with
        the classic integer argmax.
        """
        u = (self.weight(key, worker_id) + 0.5) / 2.0**64
        return -self._weights[worker_id] / math.log(u)

    def route(self, key: int, within: "Iterable[int] | None" = None) -> int:
        """The alive worker owning ``key`` (an instance fingerprint).

        ``within`` restricts the election to a subset of the alive set —
        the health-aware dispatch path routes over *healthy* workers first
        and widens only when that pool is empty.  Rendezvous hashing makes
        subsetting safe: the route over a subset is the highest-score
        member of that subset, so keys whose owner is in the subset do not
        move, exactly as if the excluded workers had died.

        Raises :class:`RuntimeError` when the pool is empty — the caller
        decides whether that fails the request or waits for a restart.
        """
        pool = self._alive if within is None else self._alive & set(within)
        if not pool:
            raise RuntimeError("no alive workers to route to")
        first = self._weights[next(iter(pool))]
        if all(self._weights[w] == first for w in pool):
            # uniform capacities (the default, and the all-draining
            # fallback): the classic integer-hash election, bit-identical
            # to the pre-weighted router.  Ties are impossible in practice
            # (64-bit uniform hashes), but the worker-id tiebreak keeps
            # the route a total function regardless.
            return max(pool, key=lambda w: (self.weight(key, w), w))
        # drop draining (weight-0) workers; the uniform branch above
        # already handled the everyone-draining case, so this never empties
        eligible = [w for w in pool if self._weights[w] > 0.0]
        return max(eligible, key=lambda w: (self._score(key, w), w))

    def shards(self, keys: Iterable[int]) -> dict[int, list[int]]:
        """Group keys by their routed worker (diagnostics and tests)."""
        out: dict[int, list[int]] = {w: [] for w in self.alive()}
        for key in keys:
            out[self.route(key)].append(key)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardRouter(alive={self.alive()}, all={self._all}, "
            f"weights={self._weights})"
        )
