"""Length-prefixed frame codec: the byte layer of the socket transport.

``multiprocessing.Pipe`` frames messages for free — every ``send_bytes``
arrives as exactly one ``recv_bytes``.  A TCP stream does not: bytes
arrive split and coalesced arbitrarily, so cross-host serving needs an
explicit wire format.  This module is that format, and nothing else — no
pickling, no sockets — which keeps it independently fuzzable
(``tests/service/test_frame_codec.py``):

::

    +------+----------+----------------------+
    | RSF1 | length   | payload (pickled     |
    | (4B) | (u32 BE) |  ipc.py message)     |
    +------+----------+----------------------+

:class:`FrameDecoder` is the incremental parser: feed it whatever chunk
the socket produced and pop complete payloads out.  Its error mapping is
deterministic, the property the conformance suite pins:

* a peer close **at a frame boundary** is a clean :class:`EOFError` —
  the ordinary shutdown signal every reader thread already handles;
* a close **mid-frame** is a truncated stream:
  :class:`~repro.service.ipc.CorruptFrameError` (``genuine_bug=False``)
  once, then EOF;
* a **corrupt header** (bad magic, oversized or negative length) is
  unrecoverable on a stream transport — unlike a pipe, there is no next
  frame boundary to resynchronize on — so the decoder raises
  ``CorruptFrameError`` once and then *poisons itself*: every later read
  is EOF, and the connection owner tears the link down through the same
  crash path a dead peer takes;
* **payload corruption** (garbage bytes inside a well-formed frame) is
  not this layer's business: the frame delimits correctly, the decode
  failure is classified by :func:`repro.service.ipc.decode_frame_payload`
  and costs only that frame.
"""

from __future__ import annotations

import struct
from collections import deque

from repro.service.ipc import CorruptFrameError

__all__ = [
    "FrameDecoder",
    "HEADER_BYTES",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "frame_bytes",
]

#: frame preamble — rejects cross-protocol garbage (an HTTP probe, a
#: stray health checker) before a single payload byte is trusted
MAGIC = b"RSF1"

#: magic + big-endian u32 payload length
HEADER_BYTES = len(MAGIC) + 4

#: refuse frames beyond this (256 MB): a corrupt length prefix must never
#: turn into a multi-gigabyte buffer allocation waiting for bytes that
#: are not coming.  Real frames top out near one pickled preset-sized
#: score array (~69 KB) plus slack for explicit candidate lists.
MAX_FRAME_BYTES = 256 << 20

_LEN = struct.Struct(">I")


def frame_bytes(payload: bytes) -> bytes:
    """Wrap an already-serialized payload in one wire frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"payload of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return MAGIC + _LEN.pack(len(payload)) + payload


def encode_frame(message: object) -> bytes:
    """One ipc message as wire bytes (pickle payload + frame header)."""
    import pickle

    return frame_bytes(pickle.dumps(message))


class FrameDecoder:
    """Incremental frame parser over an arbitrarily chunked byte stream.

    ``feed`` never raises — it buffers, parses every complete frame into
    an internal ready queue, and records (rather than throws) a header
    corruption.  All error delivery happens in :meth:`next_payload`, in
    order: buffered payloads first, then the stored corruption exactly
    once, then EOF forever — so a reader loop observes the same sequence
    regardless of how the bytes were chunked.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._ready: deque[bytes] = deque()
        #: the recorded header corruption, raised once by next_payload
        self._poison: "CorruptFrameError | None" = None
        self._poison_raised = False
        self._eof = False

    # -- intake ----------------------------------------------------------------

    def feed(self, data: bytes) -> None:
        """Buffer one received chunk and parse every complete frame."""
        if self._poison is not None or self._eof:
            return  # framing is gone (or the peer is); nothing to parse into
        self._buf += data
        while len(self._buf) >= HEADER_BYTES:
            if self._buf[: len(MAGIC)] != MAGIC:
                self._poison = CorruptFrameError(
                    f"bad frame magic {bytes(self._buf[:len(MAGIC)])!r}: "
                    "stream framing lost",
                )
                self._buf.clear()
                return
            (length,) = _LEN.unpack_from(self._buf, len(MAGIC))
            if length > MAX_FRAME_BYTES:
                self._poison = CorruptFrameError(
                    f"frame length {length} exceeds MAX_FRAME_BYTES "
                    f"({MAX_FRAME_BYTES}): corrupt length prefix",
                )
                self._buf.clear()
                return
            end = HEADER_BYTES + length
            if len(self._buf) < end:
                return  # incomplete frame: wait for more bytes
            self._ready.append(bytes(self._buf[HEADER_BYTES:end]))
            del self._buf[:end]

    def feed_eof(self) -> None:
        """The peer closed: classify what (if anything) was left behind."""
        self._eof = True

    # -- delivery --------------------------------------------------------------

    def next_payload(self) -> "bytes | None":
        """The next complete payload; None means "feed me more bytes".

        After a header corruption: every payload parsed *before* the
        corruption is still delivered, then the stored
        :class:`~repro.service.ipc.CorruptFrameError` is raised exactly
        once, then :class:`EOFError` forever.  After a clean peer close:
        remaining payloads, then ``EOFError``; a close mid-frame raises
        ``CorruptFrameError`` (truncated stream) once first.
        """
        if self._ready:
            return self._ready.popleft()
        if self._poison is not None:
            if not self._poison_raised:
                self._poison_raised = True
                raise self._poison
            raise EOFError("frame stream poisoned by an earlier corrupt header")
        if self._eof:
            if self._buf:
                pending, self._buf = len(self._buf), bytearray()
                raise CorruptFrameError(
                    f"stream truncated mid-frame ({pending} bytes of an "
                    "incomplete frame at EOF)",
                )
            raise EOFError("clean end of frame stream")
        return None

    # -- introspection ---------------------------------------------------------

    @property
    def poisoned(self) -> bool:
        """Whether a corrupt header destroyed the stream's framing."""
        return self._poison is not None

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes not yet forming a complete frame."""
        return len(self._buf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameDecoder(ready={len(self._ready)}, "
            f"pending={len(self._buf)}B, poisoned={self.poisoned}, "
            f"eof={self._eof})"
        )
