"""Service telemetry: request counters, batch shapes and latency quantiles.

The tuning service records enough to answer the operational questions a
ranking service gets asked: how many requests, how well micro-batching is
coalescing them (batches formed, mean/max batch size), how often the
ranking cache answers without re-encoding, and where the latency quantiles
sit.  Latencies are kept in a bounded sliding window so a long-lived
service node reports *recent* p50/p99, not all-time averages.

A multi-process cluster has one telemetry object **per worker**;
:func:`merge_stats` folds those snapshots into one cluster view — summed
counters, a hit rate recomputed over the summed lookups (never an average
of per-worker rates, which would weight an idle worker like a busy one),
and cluster-wide latency percentiles.  Each telemetry object now also
feeds a fixed-bucket :class:`~repro.obs.metrics.Histogram` that rides the
snapshot (``latency_hist``): when every snapshot carries one, merged
percentiles come from the **exactly merged** histogram (error bounded by
one bucket width, never by window eviction); otherwise the pooled
sliding-window computation is preserved unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.obs.metrics import Histogram, merge_histograms, percentile_from_hist

__all__ = ["ServiceTelemetry", "merge_stats"]


class ServiceTelemetry:
    """Counters and quantiles for one :class:`~repro.service.TuningService`."""

    def __init__(self, latency_window: int = 4096) -> None:
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        self.requests_total = 0
        self.completed_total = 0
        self.failed_total = 0
        self.batches_total = 0
        self.batched_requests_total = 0
        self.max_batch_size = 0
        self.scored_candidates_total = 0
        self.degraded_total = 0
        self.shed_total = 0
        self._latencies: deque[float] = deque(maxlen=latency_window)
        # unbounded companion to the window: buckets never evict, so the
        # cluster merge stays exact over the full service lifetime
        self._latency_hist = Histogram()

    # -- recording -------------------------------------------------------------

    def record_request(self) -> None:
        """A request was accepted into the queue."""
        self.requests_total += 1

    def record_batch(self, size: int) -> None:
        """A micro-batch of ``size`` requests was formed."""
        self.batches_total += 1
        self.batched_requests_total += size
        self.max_batch_size = max(self.max_batch_size, size)

    def record_scored(self, num_candidates: int) -> None:
        """``num_candidates`` rows went through encode+score (cache misses)."""
        self.scored_candidates_total += num_candidates

    def record_completion(self, latency_s: float, failed: bool = False) -> None:
        """A request finished (successfully or not) after ``latency_s``."""
        if failed:
            self.failed_total += 1
        else:
            self.completed_total += 1
        self._latencies.append(float(latency_s))
        self._latency_hist.observe(latency_s)

    def record_degraded(self) -> None:
        """A request was answered by the degraded path (fallback/replay)."""
        self.degraded_total += 1

    def record_shed(self) -> None:
        """A request was refused at admission (queue over capacity)."""
        self.shed_total += 1

    # -- reporting -------------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        """Average requests per micro-batch (0 before the first batch)."""
        if self.batches_total == 0:
            return 0.0
        return self.batched_requests_total / self.batches_total

    def latency_percentile(self, q: float) -> float:
        """Latency percentile over the sliding window, in seconds."""
        return self.latency_percentiles((q,))[0]

    def latency_percentiles(self, qs: Sequence[float]) -> tuple[float, ...]:
        """Several window percentiles from **one** materialization + pass."""
        if not self._latencies:
            return tuple(0.0 for _ in qs)
        window = np.fromiter(self._latencies, dtype=float)
        return tuple(float(v) for v in np.percentile(window, list(qs)))

    def window(self) -> tuple[float, ...]:
        """The raw sliding latency window, oldest first.

        This is what crosses the wire for cluster aggregation: merged
        percentiles must be computed over the pooled samples — percentiles
        of percentiles are not a thing.
        """
        return tuple(self._latencies)

    def snapshot(self) -> dict:
        """One dict with every headline number (for logs and benchmarks)."""
        p50, p99 = self.latency_percentiles((50, 99))
        return {
            "requests_total": self.requests_total,
            "completed_total": self.completed_total,
            "failed_total": self.failed_total,
            "batches_total": self.batches_total,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "scored_candidates_total": self.scored_candidates_total,
            "degraded_total": self.degraded_total,
            "shed_total": self.shed_total,
            "latency_p50_ms": p50 * 1e3,
            "latency_p99_ms": p99 * 1e3,
            "latency_hist": self._latency_hist.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceTelemetry(requests={self.requests_total}, "
            f"batches={self.batches_total}, "
            f"mean_batch={self.mean_batch_size:.1f})"
        )


#: snapshot counters that merge by summation (telemetry + cache keys)
_SUMMED = (
    "requests_total",
    "completed_total",
    "failed_total",
    "batches_total",
    "scored_candidates_total",
    "degraded_total",
    "shed_total",
    "registry_corruption_detected_total",
    "registry_corruption_fallbacks_total",
    "cache_entries",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "encode_cache_entries",
    "encode_cache_rows",
    "encode_cache_hits",
    "encode_cache_misses",
    "encode_cache_evictions",
    "encode_cache_deferred",
    "slab_slots",
    "slab_in_use",
    "slab_writes_total",
    "slab_fallbacks_total",
    "slab_releases_total",
    "frames_corrupt_total",
    "frame_decode_bugs_total",
)


def merge_stats(
    snapshots: Sequence[dict],
    latency_windows: "Sequence[Sequence[float]] | None" = None,
) -> dict:
    """Fold per-worker ``service.stats()`` snapshots into one cluster view.

    * counters sum; ``max_batch_size`` takes the max;
    * ``mean_batch_size`` is recomputed as total batched requests over
      total batches (recovered from each worker's own mean × count);
    * ``cache_hit_rate`` is recomputed over the summed lookups;
    * ``latency_p50_ms``/``latency_p99_ms``: when **every** snapshot
      carries a compatible ``latency_hist``, the histograms are merged
      exactly and percentiles read off the merged buckets (the merged
      dict also keeps ``latency_hist`` plus, when windows were supplied,
      the pooled values as ``latency_pooled_p50_ms``/``_p99_ms`` for
      cross-checking); otherwise they come from the **pooled** latency
      windows when provided (cluster-wide percentiles), else 0.

    >>> merged = merge_stats([
    ...     {"requests_total": 3, "batches_total": 1, "mean_batch_size": 3.0,
    ...      "max_batch_size": 3, "cache_hits": 2, "cache_misses": 1},
    ...     {"requests_total": 1, "batches_total": 1, "mean_batch_size": 1.0,
    ...      "max_batch_size": 1, "cache_hits": 0, "cache_misses": 1},
    ... ], [[0.1], [0.3]])
    >>> merged["requests_total"], merged["mean_batch_size"]
    (4, 2.0)
    >>> round(merged["cache_hit_rate"], 3)
    0.5

    A ``None`` snapshot stands for a worker that never produced stats —
    a socket dial that failed, a worker that died before answering a
    ``StatsRequest``.  Those workers are *counted* (``workers`` is the
    fleet size the caller asked about, ``missing_workers`` how many of
    them were silent) but contribute nothing to any aggregate:

    >>> merged = merge_stats([{"requests_total": 2}, None])
    >>> merged["workers"], merged["missing_workers"], merged["requests_total"]
    (2, 1, 2)
    """
    live = [s for s in snapshots if s is not None]
    merged: dict = {
        "workers": len(snapshots),
        "missing_workers": len(snapshots) - len(live),
    }
    for key in _SUMMED:
        merged[key] = sum(int(s.get(key, 0)) for s in live)
    merged["max_batch_size"] = max(
        (int(s.get("max_batch_size", 0)) for s in live), default=0
    )
    batched = sum(
        s.get("mean_batch_size", 0.0) * s.get("batches_total", 0) for s in live
    )
    merged["mean_batch_size"] = (
        batched / merged["batches_total"] if merged["batches_total"] else 0.0
    )
    lookups = merged["cache_hits"] + merged["cache_misses"]
    merged["cache_hit_rate"] = merged["cache_hits"] / lookups if lookups else 0.0
    enc_lookups = merged["encode_cache_hits"] + merged["encode_cache_misses"]
    merged["encode_cache_hit_rate"] = (
        merged["encode_cache_hits"] / enc_lookups if enc_lookups else 0.0
    )
    pooled = (
        np.fromiter(
            (x for window in latency_windows if window for x in window),
            dtype=float,
        )
        if latency_windows is not None
        else np.empty(0)
    )
    hists = [s.get("latency_hist") for s in live]
    merged_hist: "dict | None" = None
    if hists and all(isinstance(h, dict) for h in hists):
        try:
            merged_hist = merge_histograms(hists)
        except (KeyError, TypeError, ValueError):
            merged_hist = None  # malformed/mismatched: fall back to pooling
    if merged_hist is not None and merged_hist["count"] > 0:
        merged["latency_hist"] = merged_hist
        merged["latency_p50_ms"] = percentile_from_hist(merged_hist, 50) * 1e3
        merged["latency_p99_ms"] = percentile_from_hist(merged_hist, 99) * 1e3
        if pooled.size:
            p50, p99 = np.percentile(pooled, [50, 99])
            merged["latency_pooled_p50_ms"] = float(p50) * 1e3
            merged["latency_pooled_p99_ms"] = float(p99) * 1e3
    else:
        if merged_hist is not None:
            merged["latency_hist"] = merged_hist
        for name, q in (("latency_p50_ms", 50), ("latency_p99_ms", 99)):
            merged[name] = (
                float(np.percentile(pooled, q)) * 1e3 if pooled.size else 0.0
            )
    return merged
