"""Service telemetry: request counters, batch shapes and latency quantiles.

The tuning service records enough to answer the operational questions a
ranking service gets asked: how many requests, how well micro-batching is
coalescing them (batches formed, mean/max batch size), how often the
ranking cache answers without re-encoding, and where the latency quantiles
sit.  Latencies are kept in a bounded sliding window so a long-lived
service node reports *recent* p50/p99, not all-time averages.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["ServiceTelemetry"]


class ServiceTelemetry:
    """Counters and quantiles for one :class:`~repro.service.TuningService`."""

    def __init__(self, latency_window: int = 4096) -> None:
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        self.requests_total = 0
        self.completed_total = 0
        self.failed_total = 0
        self.batches_total = 0
        self.batched_requests_total = 0
        self.max_batch_size = 0
        self.scored_candidates_total = 0
        self._latencies: deque[float] = deque(maxlen=latency_window)

    # -- recording -------------------------------------------------------------

    def record_request(self) -> None:
        """A request was accepted into the queue."""
        self.requests_total += 1

    def record_batch(self, size: int) -> None:
        """A micro-batch of ``size`` requests was formed."""
        self.batches_total += 1
        self.batched_requests_total += size
        self.max_batch_size = max(self.max_batch_size, size)

    def record_scored(self, num_candidates: int) -> None:
        """``num_candidates`` rows went through encode+score (cache misses)."""
        self.scored_candidates_total += num_candidates

    def record_completion(self, latency_s: float, failed: bool = False) -> None:
        """A request finished (successfully or not) after ``latency_s``."""
        if failed:
            self.failed_total += 1
        else:
            self.completed_total += 1
        self._latencies.append(float(latency_s))

    # -- reporting -------------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        """Average requests per micro-batch (0 before the first batch)."""
        if self.batches_total == 0:
            return 0.0
        return self.batched_requests_total / self.batches_total

    def latency_percentile(self, q: float) -> float:
        """Latency percentile over the sliding window, in seconds."""
        if not self._latencies:
            return 0.0
        return float(np.percentile(np.fromiter(self._latencies, dtype=float), q))

    def snapshot(self) -> dict:
        """One dict with every headline number (for logs and benchmarks)."""
        return {
            "requests_total": self.requests_total,
            "completed_total": self.completed_total,
            "failed_total": self.failed_total,
            "batches_total": self.batches_total,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "scored_candidates_total": self.scored_candidates_total,
            "latency_p50_ms": self.latency_percentile(50) * 1e3,
            "latency_p99_ms": self.latency_percentile(99) * 1e3,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceTelemetry(requests={self.requests_total}, "
            f"batches={self.batches_total}, "
            f"mean_batch={self.mean_batch_size:.1f})"
        )
