"""Ranking-as-a-service: the serving layer over the trained tuner.

The paper's headline property — ranking a candidate set is one
matrix-vector product — makes the trained model a natural *service*.  This
package provides the production pieces around it:

* :mod:`repro.service.server` — :class:`TuningService`, the asyncio
  front-end that micro-batches concurrent requests into fused
  ``encode_many`` + stacked ``decision_function`` passes;
* :mod:`repro.service.batching` — the generic request coalescer;
* :mod:`repro.service.cache` — the LRU :class:`RankingCache` keyed by
  (instance fingerprint, candidate-set hash, model version);
* :mod:`repro.service.registry` — the versioned, tagged
  :class:`ModelRegistry` with atomic writes and fingerprint validation;
* :mod:`repro.service.telemetry` — request/batch/cache/latency counters.

See ``docs/serving.md`` for the architecture and ``examples/serve_tuner.py``
for a runnable end-to-end session.
"""

from repro.service.batching import MicroBatcher
from repro.service.cache import (
    CachedRanking,
    InternedCandidates,
    RankingCache,
    candidate_set_hash,
    intern_candidates,
)
from repro.service.registry import ModelRegistry
from repro.service.server import RankingResponse, TuningService
from repro.service.telemetry import ServiceTelemetry

__all__ = [
    "CachedRanking",
    "InternedCandidates",
    "MicroBatcher",
    "ModelRegistry",
    "RankingCache",
    "RankingResponse",
    "ServiceTelemetry",
    "TuningService",
    "candidate_set_hash",
    "intern_candidates",
]
