"""Ranking-as-a-service: the serving layer over the trained tuner.

The paper's headline property — ranking a candidate set is one
matrix-vector product — makes the trained model a natural *service*.  This
package provides the production pieces around it:

* :mod:`repro.service.server` — :class:`TuningService`, the asyncio
  front-end that micro-batches concurrent requests into fused
  ``encode_many`` + stacked ``decision_function`` passes;
* :mod:`repro.service.batching` — the generic request coalescer;
* :mod:`repro.service.cache` — the LRU :class:`RankingCache` keyed by
  (instance fingerprint, candidate-set hash, model version);
* :mod:`repro.service.registry` — the versioned, tagged
  :class:`ModelRegistry` with atomic writes and fingerprint validation;
* :mod:`repro.service.telemetry` — request/batch/cache/latency counters,
  plus :func:`merge_stats` for cluster-wide aggregation;
* :mod:`repro.service.cluster` — :class:`ServiceCluster`, the
  multi-process scale-out: instance-affine
  (:class:`~repro.service.routing.ShardRouter`) worker processes behind
  the shared registry, with crash rerouting and merged telemetry;
* :mod:`repro.service.worker` / :mod:`repro.service.ipc` — the worker
  entry point and the pickle wire protocol between parent and workers;
* :mod:`repro.service.frames` / :mod:`repro.service.transport` /
  :mod:`repro.service.remote` — the cross-host layer: the
  length-prefixed frame codec, :class:`SocketConnection` (a TCP link
  that duck-types a worker pipe), and :class:`RemoteWorkerHost` (the
  per-machine listener a coordinator dials with
  ``ServiceCluster(remote_workers=[...])``);
* :mod:`repro.service.health` / :mod:`repro.service.degrade` /
  :mod:`repro.service.chaos` — the resilience layer: per-worker circuit
  breakers fed by timeouts, corrupt frames and heartbeat silence
  (healthy → suspect → quarantined, probe-readmitted); coordinator-side
  degraded answers and deterministic load shedding; and the fault
  injections the chaos drills run against all of it.

See ``docs/serving.md`` for the architecture and ``examples/serve_tuner.py``
/ ``examples/serve_cluster.py`` for runnable end-to-end sessions.
"""

from repro.service.batching import MicroBatcher
from repro.service.cache import (
    CachedRanking,
    InternedCandidates,
    RankingCache,
    candidate_set_hash,
    intern_candidates,
)
from repro.service.chaos import ChaosConfig
from repro.service.cluster import ClusterResponse, ServiceCluster
from repro.service.degrade import (
    ClusterOverloadedError,
    DeadlineExceededError,
    FallbackScorer,
    FallbackStore,
)
from repro.service.health import CircuitBreaker, HealthState, ResilienceConfig
from repro.service.registry import ModelRegistry
from repro.service.remote import RemoteWorkerHost
from repro.service.routing import ShardRouter
from repro.service.server import RankingResponse, TuningService
from repro.service.telemetry import ServiceTelemetry, merge_stats
from repro.service.transport import SocketConnection
from repro.service.worker import WorkerConfig

__all__ = [
    "CachedRanking",
    "ChaosConfig",
    "CircuitBreaker",
    "ClusterOverloadedError",
    "ClusterResponse",
    "DeadlineExceededError",
    "FallbackScorer",
    "FallbackStore",
    "HealthState",
    "InternedCandidates",
    "MicroBatcher",
    "ModelRegistry",
    "RankingCache",
    "RankingResponse",
    "RemoteWorkerHost",
    "ResilienceConfig",
    "SocketConnection",
    "ServiceCluster",
    "ServiceTelemetry",
    "ShardRouter",
    "TuningService",
    "WorkerConfig",
    "candidate_set_hash",
    "intern_candidates",
    "merge_stats",
]
