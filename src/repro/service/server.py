"""The asynchronous tuning service front-end.

``TuningService`` turns the trained ranker into ranking-as-a-service: an
asyncio request loop accepting ``(instance, candidate set, model ref)``
queries and answering with the model's best-first ordering.  Three layers
make it fast under load:

1. **Micro-batching** — concurrent requests are coalesced by a
   :class:`~repro.service.batching.MicroBatcher`; each batch is encoded by
   ``FeatureEncoder.encode_many`` and scored with *one* stacked
   ``decision_function`` call across all instances in the batch.
2. **Ranking cache** — answers are memoized per (instance fingerprint,
   candidate-set hash, model version); repeat queries return without
   re-encoding (:class:`~repro.service.cache.RankingCache`).
3. **Versioned models** — requests may name a registry version or tag;
   tags are re-resolved on every batch, so publishing a new version and
   moving a tag **hot-swaps** the model with no restart and no dropped
   requests.  Loaded models are validated against the service encoder's
   fingerprint and memoized per version.

Answers are bit-identical to :meth:`OrdinalAutotuner.rank_candidates` for
the same model version: the same encoder rows, the same ``X @ w`` scoring,
the same stable argsort tie-breaking.

Scoring runs inline on the event loop — it is a NumPy matrix product that
releases the GIL and takes well under a millisecond per query, so handing
it to a thread pool would cost more than it saves.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.features.encoder import FeatureEncoder
from repro.obs.trace import Span, TraceContext
from repro.learn.ranksvm import RankSVM
from repro.service.batching import MicroBatcher
from repro.service.cache import (
    CachedRanking,
    EncodeCache,
    InternedCandidates,
    RankingCache,
    candidate_set_hash,
)
from repro.service.registry import LATEST, ModelRegistry
from repro.service.telemetry import ServiceTelemetry
from repro.stencil.execution import instance_hash
from repro.stencil.instance import StencilInstance
from repro.tuning.presets import preset_candidates
from repro.tuning.vector import TuningVector

__all__ = ["RankingResponse", "TuningService"]


@dataclass(frozen=True)
class RankingResponse:
    """One answered ranking query."""

    #: candidates best-first, exactly as ``rank_candidates`` would order them
    #: (truncated to ``top_k`` entries when the request asked for top-k only)
    ranked: list[TuningVector]
    #: model scores aligned with the *request's* candidate order
    scores: np.ndarray
    #: the concrete model version that produced the answer
    model_version: str
    #: whether the answer came from the ranking cache
    cached: bool
    #: queue-to-answer latency in seconds
    latency_s: float
    #: stage spans for a traced request (None when the request carried no
    #: trace context — the no-op fast path allocates nothing)
    spans: "tuple[Span, ...] | None" = None
    #: full best-first order as positions into the request's candidate
    #: list (read-only, shared with the cache entry).  This is the compact
    #: form cluster workers ship instead of re-pickling candidate objects.
    order: "np.ndarray | None" = None

    @property
    def best(self) -> TuningVector:
        """The top-ranked configuration."""
        return self.ranked[0]


@dataclass
class _Pending:
    """A queued request plus its completion future."""

    instance: StencilInstance
    candidates: Sequence[TuningVector]
    model_ref: str
    future: "asyncio.Future[RankingResponse]"
    enqueued_at: float
    version: str = ""
    cache_key: "tuple[int, int, str] | None" = field(default=None, repr=False)
    #: precomputed candidate-set hash (service-owned default sets and
    #: client-interned sets skip per-request digesting entirely)
    candidates_hash: "int | None" = field(default=None, repr=False)
    #: answer with only the k best candidates (None = full ranking)
    top_k: "int | None" = None
    #: trace identity when sampled (None: untraced, no span work at all)
    trace: "TraceContext | None" = None
    #: fused-pass timestamps ``(slab_start, encoded, scored, slab_rows,
    #: encode_cached)`` stamped on every traced request that was scored
    #: (``encode_cached`` marks a zero-width encode served by the
    #: instance-keyed encode cache)
    t_slab: "tuple[float, float, float, int, bool] | None" = field(
        default=None, repr=False
    )


class TuningService:
    """Async ranking service over a model registry.

    Usage::

        service = TuningService(registry)
        async with service:
            response = await service.rank(instance)
            best = response.best
    """

    def __init__(
        self,
        registry: ModelRegistry,
        encoder: "FeatureEncoder | None" = None,
        default_model: str = LATEST,
        max_batch_size: int = 64,
        max_batch_delay_s: float = 0.002,
        cache_entries: int = 4096,
        latency_window: int = 4096,
        max_cached_models: int = 8,
        max_rows_per_pass: int = 32768,
        dtype: str = "float64",
        encode_cache_rows: int = 0,
    ) -> None:
        if max_cached_models < 1:
            raise ValueError(f"max_cached_models must be >= 1, got {max_cached_models}")
        if max_rows_per_pass < 1:
            raise ValueError(f"max_rows_per_pass must be >= 1, got {max_rows_per_pass}")
        if np.dtype(dtype) not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float64 or float32, got {dtype}")
        self.registry = registry
        self.encoder = encoder or FeatureEncoder()
        self.default_model = default_model
        self.cache = RankingCache(cache_entries)
        self.telemetry = ServiceTelemetry(latency_window)
        self.max_cached_models = max_cached_models
        #: serving precision: float64 (default, bit-identical to the
        #: offline ranker) or float32 (opt-in; rank order pinned by top-k
        #: agreement, not bit identity — see docs/serving.md)
        self.dtype = np.dtype(dtype)
        #: per-version float32 weight vectors (float32 serving only) —
        #: scoring must be X32 @ w32 end to end; routing float32 rows
        #: through ``decision_function`` would silently upcast to float64
        self._w32: dict[str, np.ndarray] = {}
        #: encoded-matrix cache keyed by instance hash alone (off by
        #: default in-process; cluster workers enable it so repeat
        #: instances survive model hot-swaps without re-encoding)
        self.encode_cache = (
            EncodeCache(encode_cache_rows) if encode_cache_rows > 0 else None
        )
        #: cap on candidate rows encoded+scored in one fused pass.  A batch
        #: of many distinct preset-sized instances would otherwise stack a
        #: multi-GB feature matrix whose transients are page-fault-bound
        #: (measured ~5× slower than the same rows in bounded slabs); the
        #: slab boundary never splits one request, so answers stay
        #: bit-identical — each row's X @ w is independent
        self.max_rows_per_pass = max_rows_per_pass
        #: resident encode buffer reused across fused passes (lazily sized);
        #: without it every slab faults in a fresh ~100 MB allocation, which
        #: dominates large mixed batches on first touch
        self._encode_scratch: "np.ndarray | None" = None
        #: LRU of loaded models — a long-lived worker hot-swaps through
        #: many promotions, and retired versions must not accumulate
        self._models: OrderedDict[str, RankSVM] = OrderedDict()
        #: dims -> (shared preset list, its content hash), computed once
        self._default_sets: dict[int, tuple[list[TuningVector], int]] = {}
        #: observers called with (instance, candidates, response) per answer
        self._response_hooks: list[
            Callable[[StencilInstance, Sequence[TuningVector], RankingResponse], None]
        ] = []
        #: exceptions swallowed from response hooks (serving never breaks)
        self.hook_errors = 0
        self.last_hook_error: "Exception | None" = None
        #: span ``process`` label for traced requests (the cluster worker
        #: overrides this with its worker identity)
        self.trace_process = "service"
        self._batcher = MicroBatcher(
            self._process_batch,
            max_batch_size=max_batch_size,
            max_delay_s=max_batch_delay_s,
        )

    @classmethod
    def from_worker_config(cls, registry: ModelRegistry, config) -> "TuningService":
        """Build a service from a cluster :class:`~repro.service.worker.WorkerConfig`.

        Every worker entry point — the forked pipe worker, the loopback
        socket worker, a remote worker host accepting a ``Hello`` — maps
        the coordinator's config to a service through this one
        constructor, so a new serving knob cannot silently apply to one
        transport and not another.
        """
        return cls(
            registry,
            default_model=config.default_model,
            max_batch_size=config.max_batch_size,
            max_batch_delay_s=config.max_batch_delay_s,
            cache_entries=config.cache_entries,
            latency_window=config.latency_window,
            max_cached_models=config.max_cached_models,
            max_rows_per_pass=config.max_rows_per_pass,
            dtype=config.dtype,
            encode_cache_rows=config.encode_cache_rows,
        )

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Start accepting requests (idempotent)."""
        await self._batcher.start()

    async def stop(self) -> None:
        """Answer everything already queued, then stop."""
        await self._batcher.stop()

    async def __aenter__(self) -> "TuningService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        """Whether the request loop is accepting work."""
        return self._batcher.running

    # -- request API -----------------------------------------------------------

    async def rank(
        self,
        instance: StencilInstance,
        candidates: "Sequence[TuningVector] | InternedCandidates | None" = None,
        model: "str | None" = None,
        top_k: "int | None" = None,
        trace: "TraceContext | None" = None,
    ) -> RankingResponse:
        """Rank a candidate set for an instance (defaults: presets, default model).

        Concurrent callers are transparently micro-batched; the awaited
        response carries the ordering, scores, serving model version and
        whether the ranking cache answered.

        ``candidates`` may be a pre-interned set (see
        :func:`~repro.service.cache.intern_candidates`) so repeat clients
        pay the content hash once instead of per request.  ``top_k``
        requests only the k best candidates in ``response.ranked`` — the
        scoring work is identical, but a preset-sized best-first list is
        never materialized; scores stay complete and aligned with the
        request's candidate order.  Top-k and full-ranking requests share
        cache entries (the key ignores ``top_k``; the entry stores the full
        order).

        ``trace`` attaches a :class:`~repro.obs.trace.TraceContext`: the
        answer's ``response.spans`` then carries the request's stage spans
        (queue wait, fused encode/score, finish — or the cache path).
        Untraced requests (the default) do no span work whatsoever.
        """
        if not self.running:
            raise RuntimeError("TuningService is not running; call start() first")
        if top_k is not None and top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if candidates is None:
            candidates, candidates_hash = self._default_candidates(instance.dims)
        elif isinstance(candidates, InternedCandidates):
            candidates, candidates_hash = candidates.candidates, candidates.content_hash
        else:
            candidates, candidates_hash = list(candidates), None
        self.telemetry.record_request()
        loop = asyncio.get_running_loop()
        pending = _Pending(
            instance=instance,
            candidates=candidates,
            model_ref=model or self.default_model,
            future=loop.create_future(),
            enqueued_at=loop.time(),
            candidates_hash=candidates_hash,
            top_k=top_k,
            trace=trace,
        )
        await self._batcher.submit(pending)
        return await pending.future

    # -- feedback hooks --------------------------------------------------------

    def add_response_hook(
        self,
        hook: Callable[
            [StencilInstance, Sequence[TuningVector], RankingResponse], None
        ],
    ) -> None:
        """Register an observer called for every *successful* answer.

        Hooks receive ``(instance, candidates, response)`` — candidates in
        the request's order, aligned with ``response.scores`` — and run
        synchronously on the serving loop, so they must be cheap (append to
        a buffer; measure later).  This is the attachment point for the
        continual-learning :class:`~repro.online.feedback.FeedbackCollector`.
        A raising hook is counted (``hook_errors``) and detached from the
        request path's outcome: serving never fails because observability
        did.
        """
        self._response_hooks.append(hook)

    def remove_response_hook(self, hook: Callable) -> None:
        """Unregister a previously added response hook (no-op if absent)."""
        try:
            self._response_hooks.remove(hook)
        except ValueError:
            pass

    def _notify_hooks(self, req: "_Pending", response: RankingResponse) -> None:
        for hook in self._response_hooks:
            try:
                hook(req.instance, req.candidates, response)
            except Exception as exc:
                self.hook_errors += 1
                self.last_hook_error = exc

    def _default_candidates(self, dims: int) -> tuple[list[TuningVector], int]:
        """The paper's preset set for ``dims``, with its hash, memoized.

        The list is shared across requests (responses never mutate it), so
        default-candidate traffic pays neither preset regeneration nor
        per-request content hashing.
        """
        cached = self._default_sets.get(dims)
        if cached is None:
            presets = preset_candidates(dims)
            cached = (presets, candidate_set_hash(presets))
            self._default_sets[dims] = cached
        return cached

    def is_default_set(self, dims: int, candidates: Sequence[TuningVector]) -> bool:
        """Whether ``candidates`` *is* this service's shared preset list.

        An identity check against the memo (never generating presets), so
        observers on the response-hook path — the cluster worker's feedback
        streamer — can tell "preset request" from "explicit set" in O(1)
        and keep preset-sized payloads off the wire.
        """
        cached = self._default_sets.get(dims)
        return cached is not None and candidates is cached[0]

    def set_default_model(self, ref: str) -> None:
        """Repoint the service default (tag or version) — a hot swap."""
        self.registry.resolve(ref)  # fail fast on unknown refs
        self.default_model = ref

    def stats(self) -> dict:
        """Telemetry + cache counters in one flat dict."""
        merged = {**self.telemetry.snapshot(), **self.cache.snapshot()}
        if self.encode_cache is not None:
            merged.update(self.encode_cache.snapshot())
        return merged

    # -- batch processing ------------------------------------------------------

    def _process_batch(self, batch: Sequence[_Pending]) -> None:
        self.telemetry.record_batch(len(batch))
        try:
            misses = self._answer_from_cache(batch)
            by_version: dict[str, list[_Pending]] = {}
            for req in misses:
                by_version.setdefault(req.version, []).append(req)
            for version, reqs in by_version.items():
                self._score_group(version, reqs)
        except Exception as exc:  # defensive: never strand a future
            for req in batch:
                if not req.future.done():
                    self._fail(req, exc)

    def _answer_from_cache(self, batch: Sequence[_Pending]) -> list[_Pending]:
        """Resolve refs, serve cache hits; returns the requests left to score.

        Tag resolution happens here, once per request per batch, so a moved
        tag takes effect on the very next batch (hot swap) while every
        request inside one batch sees a consistent mapping.
        """
        resolved: dict[str, str] = {}
        misses: list[_Pending] = []
        for req in batch:
            try:
                if req.model_ref not in resolved:
                    resolved[req.model_ref] = self.registry.resolve(req.model_ref)
                req.version = resolved[req.model_ref]
                if req.candidates_hash is None:
                    req.candidates_hash = candidate_set_hash(req.candidates)
                req.cache_key = (
                    instance_hash(req.instance),
                    req.candidates_hash,
                    req.version,
                )
            except Exception as exc:  # unknown ref / malformed request:
                self._fail(req, exc)  # fail just this one
                continue
            entry = self.cache.get(req.cache_key)
            if entry is None:
                misses.append(req)
            else:
                self._answer(req, entry, cached=True)
        return misses

    def _score_group(self, version: str, reqs: list[_Pending]) -> None:
        """Encode+score all requests of one model version in fused passes.

        Identical queries that landed in the same micro-batch (same cache
        key) are deduplicated first: one representative is encoded and
        scored, the duplicates are answered from the just-cached entry —
        a repeat instance never pays for encoding twice, even before the
        LRU has seen it.  Representatives are packed into slabs of at most
        ``max_rows_per_pass`` candidate rows (never splitting one request),
        so a batch of many distinct preset-sized instances keeps its
        transient arrays memory-resident instead of stacking one giant
        feature matrix.
        """
        unique: dict[tuple[int, int, str], list[_Pending]] = {}
        for req in reqs:
            unique.setdefault(req.cache_key, []).append(req)
        reps = [group[0] for group in unique.values()]
        try:
            model = self._model(version)
        except Exception as exc:  # bad model: fail the whole version group
            for req in reqs:
                self._fail(req, exc)
            return
        if self.encode_cache is not None:
            # the instance-keyed cache answers the *encode*, not the
            # ranking: hits skip encode_many entirely (a repeat instance
            # after a model hot-swap is the designed case) and go straight
            # to scoring; misses fall through to the fused slab passes
            uncached: list[_Pending] = []
            for rep in reps:
                X = self.encode_cache.get(rep.cache_key[0], rep.candidates_hash)
                if X is None:
                    uncached.append(rep)
                    continue
                t_start = time.monotonic()
                try:
                    s = self._score(version, model, X)
                except Exception as exc:
                    for req in unique[rep.cache_key]:
                        self._fail(req, exc)
                    continue
                t_scored = time.monotonic()
                self.telemetry.record_scored(len(X))
                group = unique[rep.cache_key]
                for req in group:
                    if req.trace is not None:
                        req.t_slab = (t_start, t_start, t_scored, len(X), True)
                self._finish_group(version, group, s)
            reps = uncached
        for slab in self._slabs(reps):
            # time.monotonic() is the asyncio loop clock, so slab stamps
            # compare directly against _Pending.enqueued_at
            t_start = time.monotonic()
            try:
                X = self.encoder.encode_many(
                    [(req.instance, req.candidates) for req in slab],
                    out=self._scratch(sum(len(req.candidates) for req in slab)),
                )
                t_encoded = time.monotonic()
                scores = self._score(version, model, X)
                t_scored = time.monotonic()
            except Exception:
                # one unencodable request (e.g. kernel radius beyond the
                # encoder's max_radius) must not poison the slab: fall back
                # to isolating each unique query so only the culprit fails
                for rep in slab:
                    self._score_isolated(model, version, unique[rep.cache_key])
                continue
            self.telemetry.record_scored(len(X))
            splits = np.cumsum([len(req.candidates) for req in slab])[:-1]
            row_blocks = np.split(X, splits) if self.encode_cache is not None else None
            for i, (rep, s) in enumerate(zip(slab, np.split(scores, splits))):
                if row_blocks is not None:
                    self.encode_cache.put(
                        rep.cache_key[0], rep.candidates_hash, row_blocks[i]
                    )
                group = unique[rep.cache_key]
                for req in group:
                    if req.trace is not None:
                        req.t_slab = (t_start, t_encoded, t_scored, len(X), False)
                self._finish_group(version, group, s)

    def _scratch(self, rows: int) -> np.ndarray:
        """The reusable encode buffer, grown (never shrunk) to ``rows``.

        Growth is geometric, so a service settles at one resident buffer
        matched to its workload — at most a ``max_rows_per_pass`` slab
        (unless a single over-cap candidate set forces more) — while
        small-query services never pay for a slab they will not fill.
        """
        current = 0 if self._encode_scratch is None else self._encode_scratch.shape[0]
        if current < rows:
            size = min(max(rows, 2 * current), max(rows, self.max_rows_per_pass))
            self._encode_scratch = np.empty(
                (size, self.encoder.num_features), dtype=self.dtype
            )
        return self._encode_scratch

    def _score(self, version: str, model: RankSVM, X: np.ndarray) -> np.ndarray:
        """Score encoded rows at the service's precision.

        float64 goes through ``decision_function`` (bit-identical to the
        offline ranker).  float32 multiplies against a per-version
        float32 copy of the weights directly — ``decision_function`` casts
        its input up to float64, which would silently undo the narrow
        encode and hand back a float64 array that merely *started* narrow.
        """
        if self.dtype == np.float64:
            return model.decision_function(X)
        w32 = self._w32.get(version)
        if w32 is None:
            w32 = model.w_.astype(np.float32)
            self._w32[version] = w32
        return X @ w32

    def _slabs(self, reps: list[_Pending]) -> "list[list[_Pending]]":
        """Greedily pack requests into row-bounded fused-pass slabs.

        A single oversized request (one candidate set beyond the cap)
        still gets its own slab — the cap bounds *stacking*, it never
        rejects a query.
        """
        slabs: list[list[_Pending]] = []
        current: list[_Pending] = []
        rows = 0
        for rep in reps:
            n = len(rep.candidates)
            if current and rows + n > self.max_rows_per_pass:
                slabs.append(current)
                current, rows = [], 0
            current.append(rep)
            rows += n
        if current:
            slabs.append(current)
        return slabs

    def _score_isolated(
        self, model: RankSVM, version: str, group: list[_Pending]
    ) -> None:
        """Error-path scoring of one unique query (fused pass failed)."""
        rep = group[0]
        t_start = time.monotonic()
        try:
            X = self.encoder.encode_many(
                [(rep.instance, rep.candidates)], dtype=self.dtype
            )
            t_encoded = time.monotonic()
            s = self._score(version, model, X)
            t_scored = time.monotonic()
        except Exception as exc:
            for req in group:
                self._fail(req, exc)
            return
        self.telemetry.record_scored(len(X))
        for req in group:
            if req.trace is not None:
                req.t_slab = (t_start, t_encoded, t_scored, len(X), False)
        self._finish_group(version, group, s)

    def _finish_group(
        self, version: str, group: list[_Pending], scores: np.ndarray
    ) -> None:
        """Cache and answer one scored unique query (plus its duplicates).

        The full best-first list is materialized into the entry only when
        some request in the group wants the full ranking; pure top-k
        groups leave it for a later full request to build lazily.
        """
        rep = group[0]
        entry = CachedRanking(
            order=np.argsort(-scores, kind="stable"),
            scores=np.asarray(scores),
            model_version=version,
        )
        if any(req.top_k is None for req in group):
            entry.materialize(rep.candidates)
        self.cache.put(rep.cache_key, entry)
        self._answer(rep, entry, cached=False)
        for dup in group[1:]:
            # route through get() so LRU recency and hit counters see it
            self._answer(dup, self.cache.get(dup.cache_key), cached=True)

    def _model(self, version: str) -> RankSVM:
        """The memoized model for a concrete version (fingerprint-checked).

        Memoization is LRU-bounded: when a version is evicted (a worker
        that has hot-swapped through many promotions), its ranking-cache
        entries go with it — they are only reachable by requests pinning
        that retired version, and keeping them would let every promotion
        permanently grow the worker's footprint.
        """
        model = self._models.get(version)
        if model is None:
            model = self.registry.load(
                version, expect_fingerprint=self.encoder.fingerprint()
            )
            self._models[version] = model
            while len(self._models) > self.max_cached_models:
                evicted, _ = self._models.popitem(last=False)
                self.cache.invalidate_version(evicted)
                self._w32.pop(evicted, None)
        else:
            self._models.move_to_end(version)
        return model

    # -- completion ------------------------------------------------------------

    def _latency(self, req: _Pending) -> float:
        return asyncio.get_running_loop().time() - req.enqueued_at

    def _build_spans(
        self, req: _Pending, cached: bool, now: float
    ) -> tuple[Span, ...]:
        """The traced request's stage spans (partitioning its wall time).

        A request that waited through a fused slab gets queue → encode →
        score → finish (slab durations are *experienced* latency; attrs
        carry the request's own rows vs the slab's for CPU-share math).  A
        cache-path answer is all queue wait plus a zero-width ``cache``
        marker.
        """
        ctx = req.trace

        def span(name: str, start: float, end: float, attrs: "dict | None" = None) -> Span:
            return Span(
                trace_id=ctx.trace_id,
                name=name,
                start_s=start,
                duration_s=max(0.0, end - start),
                process=self.trace_process,
                req_id=ctx.req_id,
                attrs=attrs,
            )

        if req.t_slab is not None:
            t_start, t_encoded, t_scored, slab_rows, enc_cached = req.t_slab
            return (
                span("service-queue", req.enqueued_at, t_start),
                span(
                    "encode",
                    t_start,
                    t_encoded,
                    {
                        "rows": len(req.candidates),
                        "slab_rows": slab_rows,
                        "encode_cache": enc_cached,
                    },
                ),
                span("score", t_encoded, t_scored, {"slab_rows": slab_rows}),
                span("service-finish", t_scored, now),
            )
        return (
            span("service-queue", req.enqueued_at, now),
            span("cache", now, now, {"hit": bool(cached)}),
        )

    def _answer(self, req: _Pending, entry: CachedRanking, cached: bool) -> None:
        if req.future.done():  # cancelled by the caller
            return
        latency = self._latency(req)
        self.telemetry.record_completion(latency)
        if req.top_k is not None:
            # top-k mode: never build the full list for this request —
            # slice the memoized one if present, else pick from the order
            ranked = (
                entry.ranked[: req.top_k]
                if entry.ranked is not None
                else [req.candidates[i] for i in entry.order[: req.top_k].tolist()]
            )
        else:
            # full ranking: materialize into the entry once, share after
            ranked = list(entry.materialize(req.candidates))
        response = RankingResponse(
            ranked=ranked,
            scores=entry.scores,
            model_version=entry.model_version,
            cached=cached,
            latency_s=latency,
            spans=(
                self._build_spans(req, cached, req.enqueued_at + latency)
                if req.trace is not None
                else None
            ),
            order=entry.order,
        )
        req.future.set_result(response)
        if self._response_hooks:
            self._notify_hooks(req, response)

    def _fail(self, req: _Pending, exc: Exception) -> None:
        if req.future.done():  # cancelled by the caller
            return
        self.telemetry.record_completion(self._latency(req), failed=True)
        req.future.set_exception(exc)
