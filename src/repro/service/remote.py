"""The remote worker host: serve tuning workers to a dialing coordinator.

Cross-host topology inverts the local socket handshake.  Locally the
*worker* dials back into the coordinator's loopback listener (the
coordinator forked it and told it the port).  Across hosts the
coordinator cannot fork anything, so each worker machine runs this host
process listening on a configured address; the coordinator **dials out**
to it (``ServiceCluster(remote_workers=["hostA:9701", ...])``) and opens
the conversation with a :class:`~repro.service.ipc.Hello` frame carrying
the worker id and the full :class:`~repro.service.worker.WorkerConfig`.
From that frame on, the connection speaks exactly the pipe protocol —
the host hands it to the same ``_serve`` loop every forked worker runs.

One host accepts any number of coordinator connections (each gets its
own serve thread), which is how a restarting coordinator re-adopts a
remote fleet without touching the worker machines.  Requirements the
coordinator enforces for remotes: the model registry must be reachable
at the same filesystem root on both ends (a shared mount), and score
transport is always wire pickles — shared-memory slabs cannot cross
hosts, so ``Hello.config`` arrives with ``slab_name=None``.

Run one from a shell::

    python -m repro.service.remote --registry /mnt/models --port 9701

or embed it (tests do): ``RemoteWorkerHost(root, port=0)`` picks a free
port and exposes it as ``.address``.
"""

from __future__ import annotations

import argparse
import asyncio
import threading

from repro.service.ipc import Hello, recv_frame
from repro.service.transport import (
    SocketConnection,
    format_address,
    listen,
)
from repro.service.worker import _serve

__all__ = ["RemoteWorkerHost", "serve_worker"]


class RemoteWorkerHost:
    """A listener that turns each coordinator connection into a worker.

    Threading model: one accept thread; per accepted connection one serve
    thread running ``asyncio.run(_serve(...))`` — ``asyncio.run`` works in
    non-main threads, and each connection owning a private loop keeps
    concurrent coordinators (or a coordinator's reconnect racing the old
    link's teardown) fully isolated.
    """

    def __init__(
        self, registry_root: str, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.registry_root = str(registry_root)
        self._listener = listen(host=host, port=port)
        self._host = host
        self._port = self._listener.getsockname()[1]
        self._accept_thread: "threading.Thread | None" = None
        self._serve_threads: list[threading.Thread] = []
        self._conns: list[SocketConnection] = []
        self._lock = threading.Lock()
        self._stopping = False
        #: connections that opened without a valid Hello (diagnostics)
        self.bad_handshakes = 0
        #: workers served over the host's lifetime (diagnostics)
        self.workers_served = 0

    @property
    def address(self) -> str:
        """The dialable ``host:port`` for ``ServiceCluster(remote_workers=...)``."""
        return format_address(self._host, self._port)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "RemoteWorkerHost":
        """Begin accepting coordinator connections (idempotent)."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop,
                name=f"remote-worker-host-{self._port}",
                daemon=True,
            )
            self._accept_thread.start()
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        """Close the listener and every live worker connection."""
        self._stopping = True
        try:
            self._listener.close()  # unblocks accept()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()  # each _serve loop sees EOF and drains out
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout_s)
        for thread in list(self._serve_threads):
            thread.join(timeout=timeout_s)

    def __enter__(self) -> "RemoteWorkerHost":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- internals -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            conn = SocketConnection(sock)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"remote-worker-conn-{self._port}",
                daemon=True,
            )
            with self._lock:
                self._conns.append(conn)
                self._serve_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: SocketConnection) -> None:
        try:
            try:
                hello = recv_frame(conn)
            except Exception:
                hello = None
            if not isinstance(hello, Hello):
                # an HTTP probe, a port scan, a buggy peer: drop the
                # connection, never the host
                self.bad_handshakes += 1
                return
            self.workers_served += 1
            asyncio.run(
                _serve(hello.worker_id, self.registry_root, conn, hello.config)
            )
        finally:
            conn.close()
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)


def serve_worker(
    registry_root: str, host: str = "0.0.0.0", port: int = 9701
) -> None:
    """Blocking entry point: host workers until interrupted."""
    with RemoteWorkerHost(registry_root, host=host, port=port) as hosted:
        print(f"remote worker host listening on {hosted.address}", flush=True)
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            pass


def main(argv: "list[str] | None" = None) -> None:
    parser = argparse.ArgumentParser(
        description="Host tuning-service workers for a remote ServiceCluster."
    )
    parser.add_argument(
        "--registry",
        required=True,
        help="model registry root (must match the coordinator's, e.g. a shared mount)",
    )
    parser.add_argument("--host", default="0.0.0.0", help="bind address")
    parser.add_argument(
        "--port", type=int, default=9701, help="listen port (0 picks a free one)"
    )
    args = parser.parse_args(argv)
    serve_worker(args.registry, host=args.host, port=args.port)


if __name__ == "__main__":  # pragma: no cover - CLI shim
    main()
