"""The cluster worker: one process, one event loop, one ``TuningService``.

:func:`worker_main` is the target of every
:class:`~repro.service.cluster.ServiceCluster` process.  It builds a fresh
:class:`~repro.service.registry.ModelRegistry` handle on the shared root
and a :class:`~repro.service.server.TuningService` with its **own**
ranking cache and telemetry, then bridges the parent pipe onto the event
loop:

* a reader thread blocks on ``conn.recv()`` and forwards each message to
  the loop (the loop itself must never block on the pipe);
* each :class:`~repro.service.ipc.RankRequest` becomes a task awaiting
  ``service.rank(...)`` — so requests micro-batch *inside* the worker
  exactly as they would in a single-process service;
* replies are sent from the loop thread only, which serializes pipe
  writes without a lock.

When the parent armed feedback streaming (``WorkerConfig.feedback_every``),
the worker also rides its own service's response-hook API: every Nth
successful answer is shipped back as a
:class:`~repro.service.ipc.FeedbackRecord` — content only (preset requests
travel as ``candidates=None``), sent from the loop thread like any reply,
so the stream can never interleave into a torn pipe write.  The
coordinator's :class:`~repro.online.feedback.ClusterFeedbackCollector`
is the consumer.

Hot swap needs no cluster machinery: the service re-resolves model tags
against the on-disk registry on every micro-batch, so a tag moved by any
process (a promotion, an operator) is observed here within one batch —
the registry's content-cached tag reads make that poll one tiny file
read, not a JSON parse.

A worker never dies because one request did: per-request failures travel
back as :class:`~repro.service.ipc.ErrorReply`; only
:class:`~repro.service.ipc.Shutdown` (or a closed pipe) ends the process,
and both drain inflight work first.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from multiprocessing.connection import Connection

import numpy as np

from repro.service.ipc import (
    ErrorReply,
    FeedbackRecord,
    RankReply,
    RankRequest,
    Shutdown,
    StatsReply,
    StatsRequest,
    picklable_error,
)
from repro.service.registry import LATEST, ModelRegistry
from repro.service.server import TuningService

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Per-worker service knobs, shipped once at spawn time."""

    default_model: str = LATEST
    max_batch_size: int = 64
    max_batch_delay_s: float = 0.002
    cache_entries: int = 4096
    latency_window: int = 4096
    max_cached_models: int = 8
    max_rows_per_pass: int = 32768
    #: stream every Nth successful answer back to the coordinator as a
    #: :class:`~repro.service.ipc.FeedbackRecord` (0 = no feedback stream)
    feedback_every: int = 0


def worker_main(worker_id: int, registry_root: str, conn: Connection, config: WorkerConfig) -> None:
    """Process entry point: serve ranking requests from ``conn`` until told to stop."""
    try:
        asyncio.run(_serve(worker_id, registry_root, conn, config))
    finally:
        conn.close()


async def _serve(
    worker_id: int, registry_root: str, conn: Connection, config: WorkerConfig
) -> None:
    registry = ModelRegistry(registry_root)
    service = TuningService(
        registry,
        default_model=config.default_model,
        max_batch_size=config.max_batch_size,
        max_batch_delay_s=config.max_batch_delay_s,
        cache_entries=config.cache_entries,
        latency_window=config.latency_window,
        max_cached_models=config.max_cached_models,
        max_rows_per_pass=config.max_rows_per_pass,
    )
    if config.feedback_every > 0:
        service.add_response_hook(_feedback_streamer(service, conn, worker_id, config))
    loop = asyncio.get_running_loop()
    inbox: "asyncio.Queue[object]" = asyncio.Queue()

    def read_pipe() -> None:
        """Blocking pipe reads, forwarded to the loop; EOF means shutdown."""
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                msg = Shutdown()
            except TypeError:
                # a concurrent close() of the connection (worker_main's
                # cleanup) surfaces as TypeError from the raw read; it
                # carries the same meaning as EOF
                msg = Shutdown()
            loop.call_soon_threadsafe(inbox.put_nowait, msg)
            if isinstance(msg, Shutdown):
                return

    reader = threading.Thread(
        target=read_pipe, name=f"cluster-worker-{worker_id}-pipe", daemon=True
    )
    reader.start()

    inflight: set[asyncio.Task] = set()
    async with service:
        while True:
            msg = await inbox.get()
            if isinstance(msg, Shutdown):
                break
            if isinstance(msg, StatsRequest):
                _send(
                    conn,
                    StatsReply(
                        req_id=msg.req_id,
                        worker_id=worker_id,
                        stats=service.stats(),
                        latency_window=service.telemetry.window(),
                    ),
                )
                continue
            assert isinstance(msg, RankRequest), f"unexpected message {msg!r}"
            task = asyncio.create_task(_handle(service, conn, msg, worker_id))
            inflight.add(task)
            task.add_done_callback(inflight.discard)
        # drain: every accepted request is answered before the process exits,
        # so a clean stop never strands a parent-side future
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)


def _feedback_streamer(
    service: TuningService, conn: Connection, worker_id: int, config: WorkerConfig
):
    """A response hook shipping every Nth answer back as a FeedbackRecord.

    Hooks fire synchronously on the event loop — the same thread every
    reply is sent from — so the record send is serialized with reply
    sends for free.  Preset requests (the service's own shared candidate
    list) travel as ``candidates=None``; the coordinator regenerates the
    identical list from its memo.
    """
    state = {"count": 0}

    def stream(instance, candidates, response) -> None:
        n = state["count"]
        state["count"] = n + 1
        if n % config.feedback_every:
            return
        wire_candidates = (
            None
            if service.is_default_set(instance.dims, candidates)
            else list(candidates)
        )
        _send(
            conn,
            FeedbackRecord(
                instance=instance,
                candidates=wire_candidates,
                scores=np.asarray(response.scores),
                model_version=response.model_version,
                worker_id=worker_id,
            ),
        )

    return stream


async def _handle(
    service: TuningService, conn: Connection, req: RankRequest, worker_id: int
) -> None:
    try:
        response = await service.rank(
            req.instance,
            candidates=req.candidates,
            model=req.model_ref,
            top_k=req.top_k,
        )
        reply: "RankReply | ErrorReply" = RankReply(
            req_id=req.req_id,
            ranked=list(response.ranked),
            scores=response.scores if req.include_scores else None,
            model_version=response.model_version,
            cached=response.cached,
            service_latency_s=response.latency_s,
            worker_id=worker_id,
        )
    except Exception as exc:
        reply = ErrorReply(req_id=req.req_id, error=picklable_error(exc), worker_id=worker_id)
    _send(conn, reply)


def _send(conn: Connection, reply: object) -> None:
    try:
        conn.send(reply)
    except (BrokenPipeError, OSError):
        # the parent is gone; nothing useful left to do with this reply —
        # the dispatch loop will see EOF and shut the worker down
        pass
