"""The cluster worker: one process, one event loop, one ``TuningService``.

:func:`worker_main` is the target of every
:class:`~repro.service.cluster.ServiceCluster` process.  It builds a fresh
:class:`~repro.service.registry.ModelRegistry` handle on the shared root
and a :class:`~repro.service.server.TuningService` with its **own**
ranking cache and telemetry, then bridges the parent pipe onto the event
loop:

* a reader thread blocks on ``conn.recv()`` and forwards each message to
  the loop (the loop itself must never block on the pipe);
* each :class:`~repro.service.ipc.RankRequest` becomes a task awaiting
  ``service.rank(...)`` — so requests micro-batch *inside* the worker
  exactly as they would in a single-process service;
* replies are sent from the loop thread only, which serializes pipe
  writes without a lock.

When the parent armed feedback streaming (``WorkerConfig.feedback_every``),
the worker also rides its own service's response-hook API: every Nth
successful answer is shipped back as a
:class:`~repro.service.ipc.FeedbackRecord` — content only (preset requests
travel as ``candidates=None``), sent from the loop thread like any reply,
so the stream can never interleave into a torn pipe write.  The
coordinator's :class:`~repro.online.feedback.ClusterFeedbackCollector`
is the consumer.

Hot swap needs no cluster machinery: the service re-resolves model tags
against the on-disk registry on every micro-batch, so a tag moved by any
process (a promotion, an operator) is observed here within one batch —
the registry's content-cached tag reads make that poll one tiny file
read, not a JSON parse.

A worker never dies because one request did: per-request failures travel
back as :class:`~repro.service.ipc.ErrorReply`; only
:class:`~repro.service.ipc.Shutdown` (or a closed pipe) ends the process,
and both drain inflight work first.

Liveness rides the same loop: a :class:`~repro.service.ipc.Heartbeat`
task beats every ``heartbeat_interval_s`` — *from the event loop*, so a
beat proves the loop is scheduling, and a worker hung mid-request goes
beat-silent even though its process lives — and every
:class:`~repro.service.ipc.Ping` is answered with a
:class:`~repro.service.ipc.Pong` the moment the inbox loop sees it (the
coordinator's probe of suspect/quarantined workers).  Unknown or
corrupted inbound frames are *skipped*, never fatal: a garbage frame on
the wire loses that frame, not the worker.

Chaos drills (``WorkerConfig.chaos``) inject faults at exactly two
points: before handling a rank request (latency / a loop-blocking slow
loris) and on its reply (drop / corrupt).  Heartbeats and pongs are never
forged — a slow loris stalls them *honestly* by blocking the loop, which
is what the coordinator's health machinery is supposed to notice.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from multiprocessing.connection import Connection

import numpy as np

from repro.service.chaos import ChaosConfig, ChaosState, send_corrupt_frame
from repro.service.ipc import (
    CorruptFrameError,
    ErrorReply,
    FeedbackRecord,
    Heartbeat,
    Ping,
    Pong,
    RankReply,
    RankRequest,
    ReplyBatch,
    Shutdown,
    StatsReply,
    StatsRequest,
    picklable_error,
    recv_frame,
)
from repro.service.registry import LATEST, ModelRegistry
from repro.service.server import TuningService
from repro.service.shm import DEFAULT_SLOT_BYTES, DEFAULT_SLOTS, ScoreSlabRing

__all__ = ["WorkerConfig", "socket_worker_main", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Per-worker service knobs, shipped once at spawn time."""

    default_model: str = LATEST
    max_batch_size: int = 64
    max_batch_delay_s: float = 0.002
    cache_entries: int = 4096
    latency_window: int = 4096
    max_cached_models: int = 8
    max_rows_per_pass: int = 32768
    #: stream every Nth successful answer back to the coordinator as a
    #: :class:`~repro.service.ipc.FeedbackRecord` (0 = no feedback stream)
    feedback_every: int = 0
    #: cadence of loop-liveness Heartbeat frames (0 = no heartbeats)
    heartbeat_interval_s: float = 0.25
    #: fault injections for chaos drills (None = behave perfectly)
    chaos: "ChaosConfig | None" = None
    #: serving precision ("float64" default; "float32" opt-in — top-k
    #: agreement instead of bit identity, see docs/serving.md)
    dtype: str = "float64"
    #: the coordinator-created score slab segment to attach (None: no
    #: shared-memory transport — every score array pickles over the pipe)
    slab_name: "str | None" = None
    slab_slots: int = DEFAULT_SLOTS
    slab_slot_bytes: int = DEFAULT_SLOT_BYTES
    #: row budget of the instance-keyed encode cache (0 = disabled)
    encode_cache_rows: int = 32768


def worker_main(worker_id: int, registry_root: str, conn: Connection, config: WorkerConfig) -> None:
    """Process entry point: serve ranking requests from ``conn`` until told to stop."""
    try:
        asyncio.run(_serve(worker_id, registry_root, conn, config))
    finally:
        conn.close()


def socket_worker_main(
    worker_id: int, registry_root: str, port: int, config: WorkerConfig
) -> None:
    """Process entry point for a socket-transport worker.

    The coordinator opens a loopback listener and spawns this with just
    the port number (an ``int`` survives any multiprocessing start
    method); the worker dials back and then runs the *same* serve loop as
    a pipe worker — :class:`~repro.service.transport.SocketConnection`
    duck-types the pipe, so from ``_serve``'s perspective the transports
    are indistinguishable.  This is also why the conformance suite can
    demand bit-identical answers across transports: the code path only
    differs below the frame layer.
    """
    from repro.service.transport import dial

    conn = dial(("127.0.0.1", port), timeout_s=30.0)
    try:
        asyncio.run(_serve(worker_id, registry_root, conn, config))
    finally:
        conn.close()


class _ReplySender:
    """Coalesces replies produced in one loop iteration into one pipe write.

    A worker micro-batch completes tens of ``_handle`` tasks back to back
    on the same event-loop pass; sending each reply as its own frame costs
    a pipe write *and* a coordinator reader wake-up apiece.  ``send``
    buffers and schedules one ``call_soon`` flush — everything buffered by
    the time the loop drains its ready queue leaves as a single
    :class:`~repro.service.ipc.ReplyBatch` frame (a lone message goes bare,
    so the single-reply latency path is untouched).  Loop thread only.
    """

    def __init__(self, conn: Connection) -> None:
        self._conn = conn
        self._buf: list = []
        self._scheduled = False

    def send(self, msg: object) -> None:
        self._buf.append(msg)
        if not self._scheduled:
            self._scheduled = True
            asyncio.get_running_loop().call_soon(self.flush)

    def flush(self) -> None:
        self._scheduled = False
        if not self._buf:
            return
        batch, self._buf = self._buf, []
        _send(self._conn, batch[0] if len(batch) == 1 else ReplyBatch(tuple(batch)))


async def _serve(
    worker_id: int, registry_root: str, conn: Connection, config: WorkerConfig
) -> None:
    registry = ModelRegistry(registry_root)
    service = TuningService.from_worker_config(registry, config)
    # traced requests' spans carry this process's identity; the spans ride
    # RankReply.spans back to the coordinator's recorder (same-host
    # monotonic clocks, so they compose with coordinator timestamps)
    service.trace_process = f"worker-{worker_id}"
    ring: "ScoreSlabRing | None" = None
    if config.slab_name:
        try:
            ring = ScoreSlabRing.attach(
                config.slab_name, config.slab_slots, config.slab_slot_bytes
            )
        except Exception:
            # the segment is gone or the platform refused the mapping:
            # every score array pickles instead — slower, never wrong
            ring = None
    sender = _ReplySender(conn)
    if config.feedback_every > 0:
        service.add_response_hook(
            _feedback_streamer(service, sender, ring, worker_id, config)
        )
    loop = asyncio.get_running_loop()
    inbox: "asyncio.Queue[object]" = asyncio.Queue()
    #: inbound wire-health counters (reader thread writes, loop reads; a
    #: plain dict is safe under the GIL for these monotonic bumps)
    wire = {"frames_corrupt_total": 0, "frame_decode_bugs_total": 0}

    def read_pipe() -> None:
        """Blocking pipe reads, forwarded to the loop; EOF means shutdown."""
        while True:
            try:
                msg = recv_frame(conn)
            except (EOFError, OSError):
                msg = Shutdown()
            except TypeError:
                # a concurrent close() of the connection (worker_main's
                # cleanup) surfaces as TypeError from the raw read; it
                # carries the same meaning as EOF
                msg = Shutdown()
            except CorruptFrameError as exc:
                # the frame is lost either way; what we *count* differs —
                # garbage bytes are wire corruption, a payload whose own
                # reconstruction raised is a bug worth surfacing
                key = (
                    "frame_decode_bugs_total"
                    if exc.genuine_bug
                    else "frames_corrupt_total"
                )
                wire[key] += 1
                continue
            loop.call_soon_threadsafe(inbox.put_nowait, msg)
            if isinstance(msg, Shutdown):
                return

    reader = threading.Thread(
        target=read_pipe, name=f"cluster-worker-{worker_id}-pipe", daemon=True
    )
    reader.start()

    chaos = ChaosState(config.chaos) if config.chaos is not None else None
    heartbeat: "asyncio.Task | None" = None
    if config.heartbeat_interval_s > 0:
        heartbeat = asyncio.create_task(
            _heartbeat_loop(conn, worker_id, config.heartbeat_interval_s)
        )

    inflight: set[asyncio.Task] = set()
    async with service:
        while True:
            msg = await inbox.get()
            if isinstance(msg, Shutdown):
                break
            if isinstance(msg, Ping):
                # answered inline from the loop, bypassing the batcher: a
                # pong proves exactly what the coordinator's probe asks —
                # the loop schedules — and must not wait for co-travelers
                _send(conn, Pong(req_id=msg.req_id, worker_id=worker_id))
                continue
            if isinstance(msg, StatsRequest):
                _send(
                    conn,
                    StatsReply(
                        req_id=msg.req_id,
                        worker_id=worker_id,
                        stats=_stats_with_chaos(service, chaos, ring, wire),
                        latency_window=service.telemetry.window(),
                    ),
                )
                continue
            if not isinstance(msg, RankRequest):
                # unknown frame (a newer coordinator, or garbage that
                # happened to unpickle): losing it must not lose the worker
                continue
            task = asyncio.create_task(
                _handle(service, conn, sender, ring, msg, worker_id, chaos)
            )
            inflight.add(task)
            task.add_done_callback(inflight.discard)
        # drain: every accepted request is answered before the process exits,
        # so a clean stop never strands a parent-side future
        if heartbeat is not None:
            heartbeat.cancel()
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)
    # anything the last tasks buffered after their final await: one last
    # explicit flush, since the scheduled call_soon may never run again
    sender.flush()


def _feedback_streamer(
    service: TuningService,
    sender: _ReplySender,
    ring: "ScoreSlabRing | None",
    worker_id: int,
    config: WorkerConfig,
):
    """A response hook shipping every Nth answer back as a FeedbackRecord.

    Hooks fire synchronously on the event loop — the same thread every
    reply is sent from — so records coalesce into the same
    :class:`~repro.service.ipc.ReplyBatch` frames as the replies they ride
    with.  Preset requests (the service's own shared candidate list)
    travel as ``candidates=None``; the coordinator regenerates the
    identical list from its memo.  Scores park in the slab ring when a
    slot is free (the coordinator copies them out and releases before
    fanning the record to listeners) and pickle otherwise.
    """
    state = {"count": 0}

    def stream(instance, candidates, response) -> None:
        n = state["count"]
        state["count"] = n + 1
        if n % config.feedback_every:
            return
        wire_candidates = (
            None
            if service.is_default_set(instance.dims, candidates)
            else list(candidates)
        )
        scores = np.asarray(response.scores)
        payload = scores
        if ring is not None:
            ref = ring.write(scores)
            if ref is not None:
                payload = ref
        sender.send(
            FeedbackRecord(
                instance=instance,
                candidates=wire_candidates,
                scores=payload,
                model_version=response.model_version,
                worker_id=worker_id,
            )
        )

    return stream


async def _heartbeat_loop(conn: Connection, worker_id: int, interval_s: float) -> None:
    """Beat until cancelled.  Runs on the loop, so a blocked loop — a slow
    loris, a wedged batch — silences the beat, which is the signal."""
    loop = asyncio.get_running_loop()
    seq = 0
    while True:
        _send(conn, Heartbeat(worker_id=worker_id, seq=seq, sent_at=loop.time()))
        seq += 1
        await asyncio.sleep(interval_s)


def _stats_with_chaos(
    service: TuningService,
    chaos: "ChaosState | None",
    ring: "ScoreSlabRing | None" = None,
    wire: "dict | None" = None,
) -> dict:
    stats = service.stats()
    # registry corruption containment events, surfaced per worker so the
    # coordinator's merged stats can sum them cluster-wide
    stats["registry_corruption_detected_total"] = service.registry.corruption_detected
    stats["registry_corruption_fallbacks_total"] = service.registry.corruption_fallbacks
    if ring is not None:
        stats.update(ring.stats())
    if wire is not None:
        stats.update(wire)
    if chaos is not None:
        stats["chaos"] = chaos.snapshot()
    return stats


async def _handle(
    service: TuningService,
    conn: Connection,
    sender: _ReplySender,
    ring: "ScoreSlabRing | None",
    req: RankRequest,
    worker_id: int,
    chaos: "ChaosState | None" = None,
) -> None:
    ordinal = 0
    if chaos is not None:
        ordinal = chaos.next_request()
        loris_s, latency_s = chaos.pre_delay(ordinal)
        # the loris blocks the whole loop (heartbeats included) — a hung
        # worker; plain latency yields, so the worker stays responsive
        chaos.block(loris_s)
        if latency_s:
            await asyncio.sleep(latency_s)
    try:
        response = await service.rank(
            req.instance,
            candidates=req.candidates,
            model=req.model_ref,
            top_k=req.top_k,
            trace=req.trace,
        )
        err: "Exception | None" = None
    except Exception as exc:
        response, err = None, exc
    if chaos is not None:
        # the reply's fate is decided *before* any slab write: a dropped
        # or corrupted reply whose scores already claimed a slot would
        # leak it forever — the coordinator never sees the ref to release
        fate = chaos.reply_fate(ordinal)
        if fate == "drop":
            return
        if fate == "corrupt":
            send_corrupt_frame(conn)
            return
    if err is not None:
        sender.send(
            ErrorReply(req_id=req.req_id, error=picklable_error(err), worker_id=worker_id)
        )
        return
    # prefer index form: positions into the request's own candidate order,
    # which the coordinator rehydrates from the list it already holds —
    # int32 indices instead of re-pickled candidate objects
    order = response.order
    if order is not None:
        ranked = None
        idx = order[: req.top_k] if req.top_k is not None else order
        ranked_idx = np.ascontiguousarray(idx, dtype=np.int32)
    else:  # pragma: no cover - defensive: a response without an order
        ranked = list(response.ranked)
        ranked_idx = None
    scores: "object | None" = None
    if req.include_scores and response.scores is not None:
        scores = response.scores
        if ring is not None:
            ref = ring.write(response.scores)
            if ref is not None:
                scores = ref
    sender.send(
        RankReply(
            req_id=req.req_id,
            ranked=ranked,
            scores=scores,
            model_version=response.model_version,
            cached=response.cached,
            service_latency_s=response.latency_s,
            worker_id=worker_id,
            spans=response.spans,
            ranked_idx=ranked_idx,
        )
    )


def _send(conn: Connection, reply: object) -> None:
    try:
        conn.send(reply)
    except (BrokenPipeError, OSError):
        # the parent is gone; nothing useful left to do with this reply —
        # the dispatch loop will see EOF and shut the worker down
        pass
