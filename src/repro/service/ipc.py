"""The cluster wire protocol: what crosses a worker pipe, and nothing else.

One frozen dataclass per message kind, shipped over
``multiprocessing.Pipe`` connections by pickle.  Everything on the wire is
**content**, never identity: instances and tuning vectors are value
objects whose hashes (:func:`repro.stencil.execution.instance_hash`,
``TuningVector.content_key``) survive pickling bit-for-bit, which is what
lets a worker's ranking cache and the parent's router agree on keys
without ever sharing memory.

Deliberate wire economies, all load-bearing for throughput:

* a :class:`RankRequest` with ``candidates=None`` means "use your preset
  set" — the worker regenerates (and memoizes) the paper's preset
  candidates locally instead of receiving ~8640 pickled vectors per
  request (~700 bytes instead of ~300 KB on the wire);
* ``include_scores=False`` asks the worker to omit the full score array
  from the reply;
* a :class:`RankReply` answers with ``ranked_idx`` — integer positions
  into the request's own candidate list — instead of re-pickling the
  candidate objects; the coordinator rehydrates from the list it already
  holds (explicit sets, interned sets, or its preset memo), so a
  full-ranking reply ships a ~69 KB index array instead of ~8640 pickled
  vectors, and a top-k reply ships k integers;
* score arrays that do cross the boundary prefer the shared-memory slab
  transport (:mod:`repro.service.shm`): the reply carries a tiny
  :class:`~repro.service.shm.SlabRef` and the coordinator maps the bytes
  zero-copy, with pickled arrays kept as the fallback for full rings,
  oversized sets and cross-host futures;
* replies produced in one worker event-loop iteration coalesce into a
  single :class:`ReplyBatch` frame — one pipe write (and one coordinator
  reader wake-up) for a whole micro-batch of answers.

The same preset economy applies in the opposite direction: a
:class:`FeedbackRecord` (a served answer sampled for the coordinator's
continual-learning collector) ships ``candidates=None`` when the request
used the worker's preset set, and the coordinator regenerates the
identical list from its own memo.

Determinism note: scores travel as ``float64`` bytes (slab memcpy or
pickle), an exact byte-level round trip either way — the cross-process
bit-identity suites in ``tests/cluster/`` compare them with
``np.array_equal``, no tolerance.  (The opt-in float32 serving path
relaxes this to top-k agreement; see ``docs/serving.md``.)
"""

from __future__ import annotations

import pickle
import traceback as _traceback
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs.trace import Span, TraceContext
from repro.service.cache import InternedCandidates
from repro.service.shm import SlabRef
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = [
    "CorruptFrameError",
    "ErrorReply",
    "FeedbackRecord",
    "Heartbeat",
    "Hello",
    "Ping",
    "Pong",
    "RankReply",
    "RankRequest",
    "ReplyBatch",
    "Shutdown",
    "StatsReply",
    "StatsRequest",
    "UNPICKLING_ERRORS",
    "WireError",
    "decode_frame_payload",
    "picklable_error",
    "recv_frame",
]


@dataclass(frozen=True)
class RankRequest:
    """One ranking query routed to a worker."""

    req_id: int
    instance: StencilInstance
    #: explicit candidates, an interned set, or None for worker-side presets
    candidates: "Sequence[TuningVector] | InternedCandidates | None"
    #: registry version id, tag, or ``latest``
    model_ref: str
    #: answer with only the k best candidates (None = full ranking)
    top_k: "int | None" = None
    #: ship the full score array back (False: reply.scores is None)
    include_scores: bool = True
    #: trace identity when this request is sampled (None: untraced — the
    #: worker emits no spans and the reply carries none)
    trace: "TraceContext | None" = None


@dataclass(frozen=True)
class RankReply:
    """A successfully answered :class:`RankRequest`.

    ``ranked_idx`` is the preferred answer form: best-first positions into
    the request's candidate list (truncated to ``top_k`` when the request
    asked for one), which the coordinator rehydrates against the list it
    already holds.  ``ranked`` carries concrete vectors only when the
    worker could not produce indices.  ``scores`` is a pickled array, a
    :class:`~repro.service.shm.SlabRef` into the worker's slab ring, or
    None when the request set ``include_scores=False``.
    """

    req_id: int
    ranked: "list[TuningVector] | None"
    scores: "np.ndarray | SlabRef | None"
    model_version: str
    cached: bool
    #: queue-to-answer latency inside the worker's service, in seconds
    service_latency_s: float
    worker_id: int
    #: worker-emitted stage spans for a traced request (None: untraced);
    #: the coordinator merges these into its own recorder
    spans: "tuple[Span, ...] | None" = None
    #: best-first positions into the request's candidate order
    ranked_idx: "np.ndarray | None" = None


@dataclass(frozen=True)
class ReplyBatch:
    """Several loop-thread frames coalesced into one pipe write.

    A worker micro-batch answers tens of requests in one event-loop
    iteration; sending each reply as its own frame costs a pipe write
    *and* a coordinator reader wake-up apiece.  The worker's reply sender
    buffers frames produced in the same iteration and flushes them as one
    batch — the coordinator unpacks in order.
    """

    messages: tuple


@dataclass(frozen=True)
class FeedbackRecord:
    """One served answer streamed back for coordinator-side feedback.

    Workers sample their *successful* responses (every ``feedback_every``-th
    answer, counted per worker) and ship the ``(instance, candidates,
    scores, version)`` tuple the continual-learning collector needs to
    grade the ranking later — response content only, no reply plumbing:
    the record is an observation, not an answer, and losing one can never
    strand a request.

    ``candidates=None`` means the request used the worker's preset set;
    the coordinator regenerates (and memoizes) the identical list instead
    of receiving ~8640 pickled vectors.
    """

    instance: StencilInstance
    #: the request's explicit candidates, or None for the preset set
    candidates: "Sequence[TuningVector] | None"
    #: full model scores aligned with the request's candidate order (a
    #: SlabRef when the worker parked them in its slab ring; the
    #: coordinator copies the bytes out and releases the slot before
    #: fanning the record out to listeners)
    scores: "np.ndarray | SlabRef"
    #: the concrete version that served the answer
    model_version: str
    worker_id: int


@dataclass(frozen=True)
class StatsRequest:
    """Ask a worker for its service stats and telemetry window."""

    req_id: int


@dataclass(frozen=True)
class StatsReply:
    """One worker's ``service.stats()`` snapshot plus its latency window."""

    req_id: int
    worker_id: int
    stats: dict
    latency_window: tuple[float, ...]


@dataclass(frozen=True)
class ErrorReply:
    """A request that failed inside the worker (the exception travels)."""

    req_id: int
    error: Exception
    worker_id: int


@dataclass(frozen=True)
class Heartbeat:
    """Periodic worker liveness beacon (sent unprompted from the loop).

    Because it is sent *from the event loop*, a heartbeat proves more than
    "the process exists": it proves the loop is scheduling — a worker
    blocked mid-request (a slow loris) goes heartbeat-silent even though
    its process is alive, which is exactly the symptom the coordinator's
    health machinery keys on.  ``sent_at`` is the worker's own monotonic
    clock (cross-process monotonic clocks are not comparable; the
    coordinator times staleness by *receipt*, this field is diagnostic).
    """

    worker_id: int
    seq: int
    sent_at: float


@dataclass(frozen=True)
class Ping:
    """A coordinator probe of a suspect or quarantined worker."""

    req_id: int


@dataclass(frozen=True)
class Pong:
    """The probe reply: the worker's loop round-tripped a frame."""

    req_id: int
    worker_id: int


@dataclass(frozen=True)
class Shutdown:
    """Drain inflight work, then exit the worker process."""


@dataclass(frozen=True)
class Hello:
    """The coordinator's handshake to a *remote* worker host.

    Local workers (forked or loopback-socket) receive their
    :class:`~repro.service.worker.WorkerConfig` as a spawn argument; a
    worker on another host has no spawn channel, so the first frame the
    coordinator sends after dialing carries the worker's identity and
    config instead.  ``config`` is typed loosely to keep this module free
    of a worker import — on the wire it is always a ``WorkerConfig``.
    """

    worker_id: int
    config: object


#: what ``pickle.loads`` raises on corrupted bytes — kept for callers
#: that still pattern-match exception types, but readers should use
#: :func:`recv_frame`, which separates the byte read from the decode and
#: *classifies* decode failures instead of assuming every one is frame
#: loss (an ``AttributeError`` raised by a payload's own ``__setstate__``
#: is a genuine bug, not wire corruption).
UNPICKLING_ERRORS = (
    pickle.UnpicklingError,
    AttributeError,
    ImportError,
    IndexError,
)

#: modules whose frames mean "the decode machinery itself failed" — i.e.
#: the bytes were garbage.  A failure whose deepest traceback frame lives
#: anywhere else was raised by the *payload's* own reconstruction code
#: (``__setstate__``/``__reduce__``), which is a bug to surface, not a
#: corrupt frame to shrug off.
_WIRE_MODULES = ("pickle", "_pickle", "multiprocessing", "importlib", "copyreg")


class CorruptFrameError(Exception):
    """A received frame's bytes did not decode into a message.

    ``genuine_bug`` distinguishes the two very different failures that
    used to be conflated: ``False`` means the bytes were garbage (wire
    corruption — count it against the link and move on), ``True`` means a
    well-formed pickle's own reconstruction code raised (a bug in the
    payload class — losing the frame is unavoidable, but it must be
    reported as a bug, never silently counted as frame loss).
    """

    def __init__(self, message: str, genuine_bug: bool = False, cause_type: str = "") -> None:
        super().__init__(message)
        self.genuine_bug = genuine_bug
        #: the decode failure's exception type name (diagnostics)
        self.cause_type = cause_type


def _decode_is_genuine_bug(exc: BaseException) -> bool:
    """Whether a decode failure was raised by payload code, not the wire."""
    tb = exc.__traceback__
    deepest = None
    while tb is not None:
        deepest = tb.tb_frame
        tb = tb.tb_next
    if deepest is None:
        # the C unpickler raises with no Python frames at all: garbage bytes
        return False
    module = deepest.f_globals.get("__name__", "")
    if module == __name__:
        return False  # raised straight out of our own loads call
    return not any(
        module == wire or module.startswith(wire + ".") for wire in _WIRE_MODULES
    )


def decode_frame_payload(buf: bytes) -> object:
    """Materialize one frame's payload bytes, classifying failures.

    The shared decode half of :func:`recv_frame`, reused by every
    transport that delimits frames itself (the socket transport's
    :class:`~repro.service.transport.SocketConnection` and the codec
    fuzz suite): garbage bytes surface as :class:`CorruptFrameError`
    with ``genuine_bug=False``, a well-formed pickle whose own
    reconstruction code raised as ``genuine_bug=True``.
    """
    try:
        return pickle.loads(buf)
    except Exception as exc:
        raise CorruptFrameError(
            f"frame failed to decode: {type(exc).__name__}: {exc}",
            genuine_bug=_decode_is_genuine_bug(exc),
            cause_type=type(exc).__name__,
        ) from exc


def recv_frame(conn) -> object:
    """Read one frame and decode it, classifying decode failures.

    Splits what ``Connection.recv()`` fuses: ``recv_bytes`` raises
    EOFError/OSError only for a genuinely gone peer (callers keep treating
    those as shutdown), while decode failures surface as
    :class:`CorruptFrameError` with ``genuine_bug`` telling the reader
    whether to count frame loss or report a materialization bug.  Works
    against any connection exposing the duck-typed ``recv_bytes()`` —
    ``multiprocessing.Pipe`` ends and
    :class:`~repro.service.transport.SocketConnection` alike (the latter
    may itself raise ``CorruptFrameError`` from ``recv_bytes`` for
    framing-level corruption; it propagates with the same meaning).
    """
    buf = conn.recv_bytes()
    return decode_frame_payload(buf)


class WireError(RuntimeError):
    """A faithful, always-picklable stand-in for an unpicklable exception.

    Carries the original type name and its formatted traceback so the
    coordinator-side handler of an :class:`ErrorReply` keeps a diagnosable
    failure instead of a bare one-line ``RuntimeError``.
    """

    def __init__(
        self,
        message: str,
        original_type: str = "",
        original_traceback: str = "",
    ) -> None:
        super().__init__(message)
        self.original_type = original_type
        self.original_traceback = original_traceback

    def __reduce__(self):
        return (type(self), (self.args[0], self.original_type, self.original_traceback))

    def __str__(self) -> str:
        return self.args[0]


def picklable_error(exc: Exception) -> Exception:
    """``exc`` itself when it survives pickling, else a faithful stand-in.

    Exceptions holding unpicklable payloads (open handles, locks) must not
    kill the reply path — the *request* failed, the pipe must not.  The
    stand-in is a :class:`WireError` carrying the original type name and
    formatted traceback, so the class and the raise site survive even when
    the exception object cannot.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return WireError(
            f"{type(exc).__name__}: {exc}",
            original_type=type(exc).__name__,
            original_traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )
