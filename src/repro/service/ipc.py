"""The cluster wire protocol: what crosses a worker pipe, and nothing else.

One frozen dataclass per message kind, shipped over
``multiprocessing.Pipe`` connections by pickle.  Everything on the wire is
**content**, never identity: instances and tuning vectors are value
objects whose hashes (:func:`repro.stencil.execution.instance_hash`,
``TuningVector.content_key``) survive pickling bit-for-bit, which is what
lets a worker's ranking cache and the parent's router agree on keys
without ever sharing memory.

Two deliberate wire economies, both load-bearing for throughput:

* a :class:`RankRequest` with ``candidates=None`` means "use your preset
  set" — the worker regenerates (and memoizes) the paper's preset
  candidates locally instead of receiving ~8640 pickled vectors per
  request (~700 bytes instead of ~300 KB on the wire);
* ``include_scores=False`` asks the worker to omit the full score array
  from the reply — a top-k client shipping 8 vectors back instead of a
  preset-sized payload.

The same preset economy applies in the opposite direction: a
:class:`FeedbackRecord` (a served answer sampled for the coordinator's
continual-learning collector) ships ``candidates=None`` when the request
used the worker's preset set, and the coordinator regenerates the
identical list from its own memo — the scores array is the only
preset-sized payload that ever rides the feedback stream.

Determinism note: scores travel as pickled ``float64`` arrays, which is an
exact byte-level round trip — the cross-process bit-identity suites in
``tests/cluster/`` compare them with ``np.array_equal``, no tolerance.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs.trace import Span, TraceContext
from repro.service.cache import InternedCandidates
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = [
    "ErrorReply",
    "FeedbackRecord",
    "Heartbeat",
    "Ping",
    "Pong",
    "RankReply",
    "RankRequest",
    "Shutdown",
    "StatsReply",
    "StatsRequest",
    "UNPICKLING_ERRORS",
    "picklable_error",
]


@dataclass(frozen=True)
class RankRequest:
    """One ranking query routed to a worker."""

    req_id: int
    instance: StencilInstance
    #: explicit candidates, an interned set, or None for worker-side presets
    candidates: "Sequence[TuningVector] | InternedCandidates | None"
    #: registry version id, tag, or ``latest``
    model_ref: str
    #: answer with only the k best candidates (None = full ranking)
    top_k: "int | None" = None
    #: ship the full score array back (False: reply.scores is None)
    include_scores: bool = True
    #: trace identity when this request is sampled (None: untraced — the
    #: worker emits no spans and the reply carries none)
    trace: "TraceContext | None" = None


@dataclass(frozen=True)
class RankReply:
    """A successfully answered :class:`RankRequest`."""

    req_id: int
    ranked: list[TuningVector]
    scores: "np.ndarray | None"
    model_version: str
    cached: bool
    #: queue-to-answer latency inside the worker's service, in seconds
    service_latency_s: float
    worker_id: int
    #: worker-emitted stage spans for a traced request (None: untraced);
    #: the coordinator merges these into its own recorder
    spans: "tuple[Span, ...] | None" = None


@dataclass(frozen=True)
class FeedbackRecord:
    """One served answer streamed back for coordinator-side feedback.

    Workers sample their *successful* responses (every ``feedback_every``-th
    answer, counted per worker) and ship the ``(instance, candidates,
    scores, version)`` tuple the continual-learning collector needs to
    grade the ranking later — response content only, no reply plumbing:
    the record is an observation, not an answer, and losing one can never
    strand a request.

    ``candidates=None`` means the request used the worker's preset set;
    the coordinator regenerates (and memoizes) the identical list instead
    of receiving ~8640 pickled vectors.
    """

    instance: StencilInstance
    #: the request's explicit candidates, or None for the preset set
    candidates: "Sequence[TuningVector] | None"
    #: full model scores aligned with the request's candidate order
    scores: np.ndarray
    #: the concrete version that served the answer
    model_version: str
    worker_id: int


@dataclass(frozen=True)
class StatsRequest:
    """Ask a worker for its service stats and telemetry window."""

    req_id: int


@dataclass(frozen=True)
class StatsReply:
    """One worker's ``service.stats()`` snapshot plus its latency window."""

    req_id: int
    worker_id: int
    stats: dict
    latency_window: tuple[float, ...]


@dataclass(frozen=True)
class ErrorReply:
    """A request that failed inside the worker (the exception travels)."""

    req_id: int
    error: Exception
    worker_id: int


@dataclass(frozen=True)
class Heartbeat:
    """Periodic worker liveness beacon (sent unprompted from the loop).

    Because it is sent *from the event loop*, a heartbeat proves more than
    "the process exists": it proves the loop is scheduling — a worker
    blocked mid-request (a slow loris) goes heartbeat-silent even though
    its process is alive, which is exactly the symptom the coordinator's
    health machinery keys on.  ``sent_at`` is the worker's own monotonic
    clock (cross-process monotonic clocks are not comparable; the
    coordinator times staleness by *receipt*, this field is diagnostic).
    """

    worker_id: int
    seq: int
    sent_at: float


@dataclass(frozen=True)
class Ping:
    """A coordinator probe of a suspect or quarantined worker."""

    req_id: int


@dataclass(frozen=True)
class Pong:
    """The probe reply: the worker's loop round-tripped a frame."""

    req_id: int
    worker_id: int


@dataclass(frozen=True)
class Shutdown:
    """Drain inflight work, then exit the worker process."""


#: what ``Connection.recv()`` raises when the *frame* is garbage rather
#: than the pipe being closed (EOFError/OSError) — the documented failure
#: modes of ``pickle.loads`` on corrupted bytes.  Readers on both sides
#: treat these as "this frame is lost", never as "this peer is gone".
UNPICKLING_ERRORS = (
    pickle.UnpicklingError,
    AttributeError,
    ImportError,
    IndexError,
)


def picklable_error(exc: Exception) -> Exception:
    """``exc`` itself when it survives pickling, else a faithful stand-in.

    Exceptions holding unpicklable payloads (open handles, locks) must not
    kill the reply path — the *request* failed, the pipe must not.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")
