"""Per-worker health: a circuit breaker driving the cluster's routing.

A cluster that only distinguishes "alive" from "crashed" is blind to the
failure modes that actually dominate real fleets: workers that are *slow*
(an overloaded host), *hung* (a blocked event loop), or *flaky* (answers
that arrive corrupted or not at all).  :class:`CircuitBreaker` is the
per-worker state machine the coordinator keeps for each shard:

::

                 failure                    failures >= quarantine_after
    HEALTHY ───────────────▶ SUSPECT ──────────────────────▶ QUARANTINED
       ▲                        │                                 │
       │  success / probe ok    │                                 │ probe ok
       └────────────────────────┴─────────────────────────────────┘
                                         (readmit)

* **healthy** — routable; the normal state.
* **suspect** — something failed recently (a request timeout, a corrupted
  reply frame, a missed heartbeat).  A suspect worker keeps its inflight
  work and remains routable *as a last resort* (the cluster prefers
  healthy shards), and is probed; a success or probe reply heals it.
* **quarantined** — the breaker is open: the worker is removed from
  routing entirely, its pending requests are re-dispatched to surviving
  shards, and only a successful probe (a ``Ping``/``Pong`` round trip)
  readmits it.  Quarantine is deliberately *reversible* — a slow-loris
  worker that recovers gets its shard back, cache intact.

Failures are counted in a rolling time window, so one bad moment last
hour cannot combine with one bad moment now to trip the breaker.  All
clock reads go through an injectable ``clock`` so tests drive the machine
deterministically without sleeping.

:class:`ResilienceConfig` groups every knob of the resilience layer —
deadlines, retry/backoff, health thresholds, heartbeat cadence, degraded
answers and load shedding — into one value shipped to
:class:`~repro.service.cluster.ServiceCluster`.
"""

from __future__ import annotations

import enum
import time
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable

__all__ = ["CircuitBreaker", "HealthState", "ResilienceConfig"]


class HealthState(enum.Enum):
    """The three routing-relevant states of one worker."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class ResilienceConfig:
    """Every knob of the cluster's failure-domain behavior, in one value.

    The defaults are deliberately conservative: no deadlines (a request
    without one behaves exactly as before this layer existed), no
    degraded answers, no shedding — but health tracking (heartbeats,
    the circuit breaker, quarantine + readmission) is always on, since
    it only ever *removes* demonstrably sick workers from routing and
    readmits them on recovery.
    """

    #: total time budget applied to requests that do not pass their own
    #: ``deadline_s`` (None = requests without a deadline never time out)
    default_deadline_s: "float | None" = None
    #: per-dispatch timeout before a request is retried elsewhere; when
    #: None it is derived per request as ``deadline / (max_retries + 1)``
    attempt_timeout_s: "float | None" = None
    #: timeout-triggered re-dispatches allowed per request (crash requeues
    #: are not retries and are bounded separately)
    max_retries: int = 2
    #: base of the exponential, jittered backoff between retries
    retry_backoff_s: float = 0.05
    #: answer from the coordinator-side fallback (cache, then scorer) with
    #: ``degraded=True`` instead of failing when no healthy worker can
    #: take a request before its deadline
    degraded_answers: bool = False
    #: bound of the coordinator-side fallback answer cache
    fallback_cache_entries: int = 1024
    #: shed new submissions (ClusterOverloadedError) past this many
    #: cluster-wide undispatched/unanswered requests (None = never shed)
    max_queue_depth: "int | None" = None
    #: worker-side heartbeat cadence (0 disables heartbeats entirely)
    heartbeat_interval_s: float = 0.25
    #: heartbeat silence that makes a worker suspect; 2x this quarantines
    heartbeat_stale_s: float = 5.0
    #: grace period after spawn before a never-heard-from worker can be
    #: considered stale (model load + first encode happen here)
    boot_grace_s: float = 30.0
    #: minimum spacing between probes of a suspect/quarantined worker
    probe_interval_s: float = 0.25
    #: rolling-window failures that make a worker suspect
    suspect_after: int = 1
    #: rolling-window failures that open the breaker (quarantine)
    quarantine_after: int = 3
    #: rolling window the failure counts live in
    failure_window_s: float = 30.0
    #: cadence of the coordinator's monitor thread
    monitor_interval_s: float = 0.05
    #: time budget for establishing a worker connection: dialing a remote
    #: worker host's address, or waiting for a local socket-transport
    #: worker to dial back into the coordinator's loopback listener
    dial_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {self.suspect_after}")
        if self.quarantine_after < self.suspect_after:
            raise ValueError(
                f"quarantine_after ({self.quarantine_after}) must be >= "
                f"suspect_after ({self.suspect_after})"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be positive, got {self.default_deadline_s}"
            )
        if self.monitor_interval_s <= 0:
            raise ValueError(
                f"monitor_interval_s must be positive, got {self.monitor_interval_s}"
            )
        if self.dial_timeout_s <= 0:
            raise ValueError(
                f"dial_timeout_s must be positive, got {self.dial_timeout_s}"
            )


class CircuitBreaker:
    """The health state machine for one worker.

    Pure bookkeeping — it never talks to processes; the cluster feeds it
    events (timeouts, corrupted frames, crashes, heartbeat misses,
    successes, probe replies) and acts on the state transitions it
    returns.  Not thread-safe by itself: the cluster serializes access
    under its own lock.
    """

    def __init__(
        self,
        suspect_after: int = 1,
        quarantine_after: int = 3,
        failure_window_s: float = 30.0,
        probe_interval_s: float = 0.25,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        if suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {suspect_after}")
        if quarantine_after < suspect_after:
            raise ValueError(
                f"quarantine_after ({quarantine_after}) must be >= "
                f"suspect_after ({suspect_after})"
            )
        self.suspect_after = suspect_after
        self.quarantine_after = quarantine_after
        self.failure_window_s = failure_window_s
        self.probe_interval_s = probe_interval_s
        self._clock = clock
        self.state = HealthState.HEALTHY
        #: timestamps of failures still inside the rolling window
        self._failures: deque[float] = deque()
        #: failure counts by kind (timeout / corrupt-frame / heartbeat / crash)
        self.failure_kinds: Counter = Counter()
        #: chronological (time, from, to, reason) transitions
        self.transitions: list[tuple[float, str, str, str]] = []
        self.successes = 0
        self.probes_sent = 0
        self.probes_ok = 0
        self._last_probe_at: "float | None" = None
        #: optional observer called as ``on_transition(from, to, reason)``
        #: after every state change (the cluster audits breakers through it)
        self.on_transition: "Callable[[str, str, str], None] | None" = None

    @classmethod
    def from_config(
        cls, config: ResilienceConfig, clock: "Callable[[], float]" = time.monotonic
    ) -> "CircuitBreaker":
        """A breaker with the thresholds of one :class:`ResilienceConfig`."""
        return cls(
            suspect_after=config.suspect_after,
            quarantine_after=config.quarantine_after,
            failure_window_s=config.failure_window_s,
            probe_interval_s=config.probe_interval_s,
            clock=clock,
        )

    # -- event intake ----------------------------------------------------------

    def _trim(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.failure_window_s:
            self._failures.popleft()

    def _move(self, to: HealthState, reason: str) -> HealthState:
        if to is not self.state:
            origin = self.state.value
            self.transitions.append((self._clock(), origin, to.value, reason))
            self.state = to
            if self.on_transition is not None:
                self.on_transition(origin, to.value, reason)
        return self.state

    def record_failure(self, kind: str) -> HealthState:
        """One failure of ``kind``; returns the (possibly new) state.

        Quarantine is sticky: once open, further failures keep it open and
        only :meth:`record_probe_ok` (or :meth:`reset`) closes it.
        """
        now = self._clock()
        self._trim(now)
        self._failures.append(now)
        self.failure_kinds[kind] += 1
        if self.state is HealthState.QUARANTINED:
            return self.state
        if len(self._failures) >= self.quarantine_after:
            return self._move(HealthState.QUARANTINED, kind)
        if len(self._failures) >= self.suspect_after:
            return self._move(HealthState.SUSPECT, kind)
        return self.state

    def quarantine(self, reason: str) -> HealthState:
        """Open the breaker immediately (sustained heartbeat silence)."""
        self._failures.append(self._clock())
        self.failure_kinds[reason] += 1
        return self._move(HealthState.QUARANTINED, reason)

    def record_success(self) -> HealthState:
        """A served answer: heals a suspect worker, never a quarantined one.

        Readmission from quarantine must go through a probe — the cluster
        has already unrouted the worker, so only an explicit round trip
        (not a straggler reply from before the breaker opened) may bring
        it back.
        """
        self.successes += 1
        if self.state is HealthState.SUSPECT:
            self._failures.clear()
            return self._move(HealthState.HEALTHY, "success")
        return self.state

    # -- probing ---------------------------------------------------------------

    def should_probe(self) -> bool:
        """Whether an unhealthy worker is due for a Ping."""
        if self.state is HealthState.HEALTHY:
            return False
        now = self._clock()
        return (
            self._last_probe_at is None
            or now - self._last_probe_at >= self.probe_interval_s
        )

    def record_probe_sent(self) -> None:
        self.probes_sent += 1
        self._last_probe_at = self._clock()

    def record_probe_ok(self) -> HealthState:
        """A probe round-tripped: close the breaker (readmit)."""
        self.probes_ok += 1
        if self.state is not HealthState.HEALTHY:
            self._failures.clear()
            return self._move(HealthState.HEALTHY, "probe-ok")
        return self.state

    def reset(self) -> None:
        """Fresh start (a replacement process took this worker id over)."""
        self._failures.clear()
        self._last_probe_at = None
        self._move(HealthState.HEALTHY, "reset")

    # -- reporting -------------------------------------------------------------

    @property
    def recent_failures(self) -> int:
        """Failures inside the rolling window, as of now."""
        self._trim(self._clock())
        return len(self._failures)

    def snapshot(self) -> dict:
        """One dict for telemetry: state, counts, transition history."""
        return {
            "state": self.state.value,
            "recent_failures": self.recent_failures,
            "failure_kinds": dict(self.failure_kinds),
            "successes": self.successes,
            "probes_sent": self.probes_sent,
            "probes_ok": self.probes_ok,
            "transitions": [
                {"at": t, "from": src, "to": dst, "reason": reason}
                for t, src, dst, reason in self.transitions
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self.state.value}, "
            f"recent_failures={self.recent_failures})"
        )
