"""The stencil-execution feature encoder (paper §III).

Layout of the encoded vector (all components in ``[0, 1]``):

1. **Pattern block** (optional, ``(2R+1)³`` entries, default R = 3 → 343):
   the dense access-count matrix, counts normalized by the maximum count.
   2-D patterns occupy the central z-plane, exactly as the paper maps both
   dimensionalities into one space.
2. **Instance scalars** (9): dimensionality flag, buffer count, dtype flag,
   log-normalized sizes, radius, distinct points, reads per point.
3. **Tuning block** (19): log-normalized block sizes, linear unroll, log
   chunk, log block volume, per-axis block/size fit ratios, no-unroll flag,
   plus *squared* block/unroll/chunk/volume terms and block-product cross
   terms.  The quadratic basis matters: a linear scorer over monotone
   features can only prefer the smallest or largest block, while real
   blocking landscapes have interior optima — ``a·by + b·by²`` can place a
   peak anywhere.
4. **Interaction block** (optional, 19 × 14 = 266): outer product of the
   tuning block with a compact instance descriptor.  Products of ``[0, 1]``
   features stay in ``[0, 1]``.

Batch encoding is vectorized: the per-instance parts are computed once and
broadcast, so ranking 8640 candidate tunings costs one numpy pass (this is
what makes model-based ranking "less than 1 ms per query" — Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.features.normalize import lin_norm, log_norm
from repro.stencil.execution import StencilExecution
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = ["FeatureEncoder"]

# normalization bounds shared by all encoders (library-wide constants)
_SIZE_LO, _SIZE_HI = 16.0, 4096.0
_BLOCK_LO, _BLOCK_HI = 1.0, 1024.0
_VOLUME_LO, _VOLUME_HI = 1.0, 2.0**30
_UNROLL_HI = 8.0
_CHUNK_LO, _CHUNK_HI = 1.0, 16.0
_MAX_POINTS = 128.0
_MAX_READS = 128.0
_MAX_BUFFERS = 4.0
_MAX_RADIUS = 3.0


@dataclass(frozen=True)
class FeatureEncoder:
    """Encodes instances × tunings into feature matrices.

    >>> from repro.stencil import benchmark_by_id
    >>> from repro.tuning import TuningVector
    >>> enc = FeatureEncoder()
    >>> inst = benchmark_by_id("laplacian-128x128x128")
    >>> x = enc.encode(inst, TuningVector(64, 8, 8, 2, 1))
    >>> x.shape == (enc.num_features,)
    True
    >>> bool((x >= 0).all() and (x <= 1).all())
    True
    """

    max_radius: int = 3
    include_pattern: bool = True
    interactions: bool = True
    _pattern_cells: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.max_radius < 1:
            raise ValueError(f"max_radius must be >= 1, got {self.max_radius}")
        side = 2 * self.max_radius + 1
        object.__setattr__(
            self, "_pattern_cells", side**3 if self.include_pattern else 0
        )

    # -- layout ---------------------------------------------------------------

    N_INSTANCE = 9
    N_TUNING = 19
    N_DESCRIPTOR = 14

    @property
    def num_features(self) -> int:
        """Total encoded dimensionality."""
        n = self._pattern_cells + self.N_INSTANCE + self.N_TUNING
        if self.interactions:
            n += self.N_TUNING * self.N_DESCRIPTOR
        return n

    def fingerprint(self) -> str:
        """Stable id of the feature layout.

        Persisted with every trained model and training set so a model can
        never silently be paired with a mismatched encoder — the single
        source of truth for the id format (tuner, training builder, model
        registry and tuning service all delegate here).

        >>> FeatureEncoder().fingerprint()
        'r3-p1-i1-d637'
        """
        return (
            f"r{self.max_radius}-p{int(self.include_pattern)}-"
            f"i{int(self.interactions)}-d{self.num_features}"
        )

    def feature_names(self) -> list[str]:
        """Human-readable name per feature index (diagnostics, model dumps)."""
        names: list[str] = []
        r = self.max_radius
        if self.include_pattern:
            for dx in range(-r, r + 1):
                for dy in range(-r, r + 1):
                    for dz in range(-r, r + 1):
                        names.append(f"pat[{dx},{dy},{dz}]")
        names += [
            "inst.is3d",
            "inst.buffers",
            "inst.dtype",
            "inst.log_sx",
            "inst.log_sy",
            "inst.log_sz",
            "inst.radius",
            "inst.points",
            "inst.reads",
        ]
        tuning_names = [
            "tune.bx",
            "tune.by",
            "tune.bz",
            "tune.unroll",
            "tune.chunk",
            "tune.volume",
            "tune.fit_x",
            "tune.fit_y",
            "tune.fit_z",
            "tune.no_unroll",
            "tune.bx2",
            "tune.by2",
            "tune.bz2",
            "tune.unroll2",
            "tune.chunk2",
            "tune.volume2",
            "tune.bxby",
            "tune.bybz",
            "tune.bxbz",
        ]
        names += tuning_names
        if self.interactions:
            desc_names = [
                "one",
                "log_sx",
                "log_sy",
                "log_sz",
                "is3d",
                "radius",
                "points",
                "reads",
                "dtype",
                "buffers",
                "zplanes",
                "yplanes",
                "xspan",
                "mem_intensity",
            ]
            for t in tuning_names:
                for d in desc_names:
                    names.append(f"{t}*{d}")
        assert len(names) == self.num_features
        return names

    # -- per-part encoders ---------------------------------------------------

    def pattern_features(self, instance: StencilInstance) -> np.ndarray:
        """Dense normalized pattern block (empty if disabled)."""
        if not self.include_pattern:
            return np.empty(0)
        pattern = instance.kernel.pattern
        if pattern.radius > self.max_radius:
            raise ValueError(
                f"kernel {instance.kernel.name!r} radius {pattern.radius} exceeds "
                f"encoder max_radius {self.max_radius}"
            )
        dense = pattern.to_dense(self.max_radius).astype(float)
        peak = dense.max()
        if peak > 0:
            dense /= peak
        return dense.ravel()

    def instance_features(self, instance: StencilInstance) -> np.ndarray:
        """The 9 instance scalars."""
        k = instance.kernel
        sx, sy, sz = instance.size
        return np.array(
            [
                1.0 if k.dims == 3 else 0.0,
                lin_norm(k.num_buffers, 0, _MAX_BUFFERS),
                k.dtype.feature,
                log_norm(sx, _SIZE_LO, _SIZE_HI),
                log_norm(sy, _SIZE_LO, _SIZE_HI),
                log_norm(max(sz, 1), 1.0, _SIZE_HI) if sz > 1 else 0.0,
                lin_norm(k.radius, 0, _MAX_RADIUS),
                lin_norm(k.pattern.num_points, 0, _MAX_POINTS),
                lin_norm(k.reads_per_point, 0, _MAX_READS),
            ]
        )

    def instance_descriptor(self, instance: StencilInstance) -> np.ndarray:
        """Compact descriptor used in the interaction block."""
        k = instance.kernel
        sx, sy, sz = instance.size
        p = k.pattern
        rows_per_plane = p.planes(axis=1)
        xmin, xmax = p.axis_span(0)
        mem_intensity = lin_norm(
            k.bytes_per_point / max(k.flops_per_point, 1), 0.0, 2.0
        )
        return np.array(
            [
                1.0,
                log_norm(sx, _SIZE_LO, _SIZE_HI),
                log_norm(sy, _SIZE_LO, _SIZE_HI),
                log_norm(max(sz, 1), 1.0, _SIZE_HI) if sz > 1 else 0.0,
                1.0 if k.dims == 3 else 0.0,
                lin_norm(k.radius, 0, _MAX_RADIUS),
                lin_norm(p.num_points, 0, _MAX_POINTS),
                lin_norm(k.reads_per_point, 0, _MAX_READS),
                k.dtype.feature,
                lin_norm(k.num_buffers, 0, _MAX_BUFFERS),
                lin_norm(p.planes(axis=2), 0, 7),
                lin_norm(rows_per_plane, 0, 7),
                lin_norm(xmax - xmin, 0, 7),
                mem_intensity,
            ]
        )

    def tuning_features(
        self, instance: StencilInstance, tunings: Sequence[TuningVector]
    ) -> np.ndarray:
        """Vectorized ``(n, 19)`` tuning block for one instance."""
        raw = np.array([t.as_tuple() for t in tunings], dtype=float).reshape(-1, 5)
        sizes = np.array([instance.size], dtype=float)
        return self._tuning_block(raw, np.broadcast_to(sizes, (len(raw), 3)))

    def _tuning_block(self, raw: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """The tuning block for ``(n, 5)`` raw tunings with per-row sizes.

        ``sizes`` is ``(n, 3)`` — rows may belong to *different* instances,
        which is what lets :meth:`encode_many` fuse whole request batches
        into one pass.
        """
        bx, by, bz, u, c = raw.T
        sx, sy, sz = sizes.T
        bx_n = log_norm(bx, _BLOCK_LO, _BLOCK_HI)
        by_n = log_norm(by, _BLOCK_LO, _BLOCK_HI)
        bz_n = log_norm(bz, _BLOCK_LO, _BLOCK_HI)
        u_n = lin_norm(u, 0.0, _UNROLL_HI)
        c_n = log_norm(c, _CHUNK_LO, _CHUNK_HI)
        vol_n = log_norm(bx * by * bz, _VOLUME_LO, _VOLUME_HI)
        cols = [
            bx_n,
            by_n,
            bz_n,
            u_n,
            c_n,
            vol_n,
            np.minimum(bx, sx) / sx,
            np.minimum(by, sy) / sy,
            np.minimum(bz, sz) / sz,
            (u == 0).astype(float),
            bx_n**2,
            by_n**2,
            bz_n**2,
            u_n**2,
            c_n**2,
            vol_n**2,
            bx_n * by_n,
            by_n * bz_n,
            bx_n * bz_n,
        ]
        return np.column_stack(cols)

    # -- public API -----------------------------------------------------------

    def encode_many(
        self,
        requests: Sequence[tuple[StencilInstance, Sequence[TuningVector]]],
        out: "np.ndarray | None" = None,
        dtype: "np.dtype | type | str" = np.float64,
    ) -> np.ndarray:
        """Encode several candidate sets of *different* instances at once.

        ``requests`` is a sequence of ``(instance, tunings)`` pairs; the
        result stacks their encodings row-contiguously — request ``i``
        occupies rows ``[sum(counts[:i]), sum(counts[:i+1]))`` where
        ``counts[i] = len(requests[i][1])``.  The per-instance parts
        (pattern, scalars, descriptor) are computed once per request and
        gathered; the tuning and interaction blocks run as **one** NumPy
        pass over all rows.  This is the cross-instance encode path that
        micro-batching services and corpus-scale training builds need: the
        whole mixed batch becomes a single matrix ready for one stacked
        ``decision_function`` call.

        ``out`` optionally supplies a preallocated C-contiguous
        ``(>= total rows, num_features)`` buffer; the returned matrix is a
        view of its first rows, every cell overwritten.  A serving loop
        encoding slab after slab reuses one resident buffer instead of
        faulting in a fresh ~100 MB allocation per pass — on the measured
        preset workloads that allocation churn, not the arithmetic, was
        the dominant cost of large mixed batches.

        ``dtype`` selects the output precision (``float64`` default, or
        ``float32`` for the opt-in reduced-precision serving path); when
        ``out`` is supplied its dtype wins and must be one of the two.
        Intermediate arithmetic stays float64 either way — narrowing
        happens once, on the block writes into the destination.
        """
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float64 or float32, got {dtype}")
        if not requests:
            return np.empty((0, self.num_features), dtype=dtype)
        counts = [len(tunings) for _, tunings in requests]
        total = sum(counts)
        flat = [t.as_tuple() for _, tunings in requests for t in tunings]
        raw = np.array(flat, dtype=float).reshape(-1, 5)
        row_of = np.repeat(np.arange(len(requests)), counts)
        sizes = np.array([q.size for q, _ in requests], dtype=float)
        tune = self._tuning_block(raw, sizes[row_of])
        # blocks are written straight into the preallocated result; the
        # per-instance parts broadcast one cached row per request slice
        # (reads stay L1-resident) instead of materializing row-gathered
        # temporaries — that keeps the fused path at encode_batch's
        # bytes-written-once memory traffic
        if out is None:
            out = np.empty((total, self.num_features), dtype=dtype)
        else:
            if out.ndim != 2 or out.shape[1] != self.num_features:
                raise ValueError(
                    f"out must be (rows, {self.num_features}), got {out.shape}"
                )
            if out.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
                # the buffer's dtype decides the serving precision; anything
                # other than the two supported float widths would silently
                # cast every block write to something untested
                raise ValueError(f"out must be float64 or float32, got {out.dtype}")
            if out.shape[0] < total:
                raise ValueError(
                    f"out has {out.shape[0]} rows, batch needs {total}"
                )
            if not out.flags.c_contiguous:
                raise ValueError("out must be C-contiguous")
            out = out[:total]
        col = 0
        if self.include_pattern:
            pats = [self.pattern_features(q) for q, _ in requests]
            block = out[:, col : col + self._pattern_cells]
            offset = 0
            for pat, count in zip(pats, counts):
                block[offset : offset + count] = pat
                offset += count
            col += self._pattern_cells
        insts = np.stack([self.instance_features(q) for q, _ in requests])
        out[:, col : col + self.N_INSTANCE] = insts[row_of]
        col += self.N_INSTANCE
        out[:, col : col + self.N_TUNING] = tune
        col += self.N_TUNING
        if self.interactions:
            descs = np.stack([self.instance_descriptor(q) for q, _ in requests])
            # write the outer products through a 3-D strided view of the
            # destination slice — no (n, 19, 14) temporary plus copy
            view = np.lib.stride_tricks.as_strided(
                out[:, col:],
                shape=(total, self.N_TUNING, self.N_DESCRIPTOR),
                strides=(out.strides[0], self.N_DESCRIPTOR * out.itemsize, out.itemsize),
            )
            np.multiply(tune[:, :, None], descs[row_of][:, None, :], out=view)
        return out

    def encode_batch(
        self, instance: StencilInstance, tunings: Sequence[TuningVector]
    ) -> np.ndarray:
        """Encode many tunings of one instance: ``(n, num_features)``."""
        n = len(tunings)
        tune = self.tuning_features(instance, tunings)
        parts = []
        if self.include_pattern:
            pat = self.pattern_features(instance)
            parts.append(np.broadcast_to(pat, (n, pat.size)))
        inst = self.instance_features(instance)
        parts.append(np.broadcast_to(inst, (n, inst.size)))
        parts.append(tune)
        if self.interactions:
            desc = self.instance_descriptor(instance)
            inter = np.einsum("nt,d->ntd", tune, desc).reshape(n, -1)
            parts.append(inter)
        return np.concatenate(parts, axis=1)

    def encode(
        self, instance: StencilInstance, tuning: TuningVector
    ) -> np.ndarray:
        """Encode one execution as a 1-D feature vector."""
        return self.encode_batch(instance, [tuning])[0]

    def encode_execution(self, execution: StencilExecution) -> np.ndarray:
        """Encode a :class:`StencilExecution` (convenience overload)."""
        return self.encode(execution.instance, execution.tuning)

    def encode_executions(
        self, executions: Sequence[StencilExecution]
    ) -> np.ndarray:
        """Encode a heterogeneous list of executions in one fused pass."""
        by_instance: dict[StencilInstance, list[int]] = {}
        for i, ex in enumerate(executions):
            by_instance.setdefault(ex.instance, []).append(i)
        requests = [
            (instance, [executions[i].tuning for i in idxs])
            for instance, idxs in by_instance.items()
        ]
        X = self.encode_many(requests)
        out = np.empty((len(executions), self.num_features))
        offset = 0
        for _, idxs in by_instance.items():
            out[idxs] = X[offset : offset + len(idxs)]
            offset += len(idxs)
        return out
