"""Feature encoding: stencil executions → normalized vectors (paper §III).

The paper maps every stencil execution ``(k, s, t)`` onto a single feature
vector with all components normalized to ``[0, 1]``: the pattern as a dense
(2R+1)³ occupancy matrix, the buffer count and scalar type, the input size,
and the tuning parameters.

One subtlety this reproduction makes explicit: with a *linear* ranking
function over concatenated features, any feature that is constant within a
query (all the instance features!) cancels out of every pairwise ranking
constraint, so a purely concatenated encoding can only learn one global
preference over tuning vectors.  :class:`FeatureEncoder` therefore offers
``interactions=True`` (default) which adds products of tuning features with
a compact instance descriptor — keeping the model linear (the paper's
SVM-Rank machinery is unchanged) while letting rankings depend on the
stencil and its size.  ``interactions=False`` gives the paper-literal
concatenation; the ablation benchmark quantifies the difference.
"""

from repro.features.normalize import lin_norm, log2_norm, log_norm
from repro.features.encoder import FeatureEncoder

__all__ = ["FeatureEncoder", "lin_norm", "log2_norm", "log_norm"]
