"""Scalar normalization helpers (everything lands in ``[0, 1]``).

The paper requires each feature-vector component to be "a real value
normalized to the interval [0, 1]".  Quantities spanning orders of magnitude
(sizes, block volumes) use log-scale normalization so that doubling a block
moves the feature by a constant step — matching how the landscape responds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lin_norm", "log_norm", "log2_norm"]


def lin_norm(value: "float | np.ndarray", lo: float, hi: float) -> "float | np.ndarray":
    """Linear map of ``[lo, hi]`` onto ``[0, 1]``, clipped.

    >>> lin_norm(4, 0, 8)
    0.5
    """
    if hi <= lo:
        raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
    out = (np.asarray(value, dtype=float) - lo) / (hi - lo)
    out = np.clip(out, 0.0, 1.0)
    return float(out) if np.isscalar(value) or out.ndim == 0 else out


def log_norm(value: "float | np.ndarray", lo: float, hi: float) -> "float | np.ndarray":
    """Log-scale map of ``[lo, hi]`` onto ``[0, 1]``, clipped.

    >>> round(log_norm(32, 2, 512), 4)
    0.5
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got [{lo}, {hi}]")
    v = np.maximum(np.asarray(value, dtype=float), lo)
    out = (np.log(v) - np.log(lo)) / (np.log(hi) - np.log(lo))
    out = np.clip(out, 0.0, 1.0)
    return float(out) if np.isscalar(value) or out.ndim == 0 else out


def log2_norm(value: "float | np.ndarray", lo: float, hi: float) -> "float | np.ndarray":
    """Alias of :func:`log_norm` (base cancels); kept for call-site clarity
    when the quantity is an exponent grid like power-of-two block sizes."""
    return log_norm(value, lo, hi)
