"""The compiler driver and the double-compilation time model (paper §V-A).

``PatusCompiler.compile`` runs the full source-to-source pipeline — lower,
block, unroll, chunk, emit C — and attaches the *accounted* wall-clock the
double compilation (PATUS source-to-source + gcc backend) would have taken.
The paper reports this cost as dominant in training-set preparation:
"*it takes about 32 hours to generate all the binary files of all the codes
composing our training set*" (Table II's "TS Comp." column); dense patterns
compile disproportionately slowly, which the model reflects by scaling with
pattern size and unroll factor.

Block and chunk sizes are runtime parameters of the generated code (as in
PATUS), so a binary is identified by ``(kernel, unroll)`` — re-tuning block
sizes does not recompile.  The compiler caches accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.codegen.dsl import parse_dsl
from repro.codegen.emit_c import emit_c
from repro.codegen.ir import LoopNest
from repro.codegen.lower import lower_kernel
from repro.codegen.transforms import apply_tuning
from repro.stencil.kernel import StencilKernel
from repro.stencil.pattern import Offset
from repro.tuning.vector import TuningVector

__all__ = ["CompiledVariant", "PatusCompiler"]


@dataclass(frozen=True)
class CompiledVariant:
    """A fully lowered, transformed and emitted stencil variant."""

    kernel: StencilKernel
    size: tuple[int, int, int]
    tuning: TuningVector
    nest: LoopNest
    c_source: str
    #: accounted PATUS + gcc wall-clock seconds (0 when served from cache)
    compile_seconds: float


class PatusCompiler:
    """Source-to-source driver with binary caching and time accounting."""

    def __init__(self) -> None:
        self._binary_cache: set[tuple[str, int]] = set()
        self.accounted_compile_s = 0.0

    @staticmethod
    def patus_seconds(kernel: StencilKernel) -> float:
        """Accounted source-to-source time: grows with pattern density."""
        return 40.0 + 4.0 * kernel.pattern.num_points

    @staticmethod
    def gcc_seconds(kernel: StencilKernel, unroll: int) -> float:
        """Accounted backend-compile time: unrolled AVX bodies are large."""
        u = max(unroll, 1)
        return 60.0 + 6.0 * kernel.pattern.num_points + 30.0 * u

    def estimate_compile_seconds(self, kernel: StencilKernel, unroll: int) -> float:
        """Total accounted double-compilation time for one binary."""
        return self.patus_seconds(kernel) + self.gcc_seconds(kernel, unroll)

    def compile(
        self,
        kernel: StencilKernel,
        size: tuple[int, int, int],
        tuning: TuningVector,
        weights: Sequence[Mapping[Offset, float]] | None = None,
    ) -> CompiledVariant:
        """Lower + transform + emit one variant, accounting compile time.

        The binary cache key is ``(kernel name, unroll)``: like PATUS, block
        and chunk sizes are runtime arguments, so only a new unroll factor
        triggers a (simulated) recompilation.
        """
        nest = lower_kernel(kernel, size, weights)
        nest = apply_tuning(nest, tuning)
        source = emit_c(nest)
        key = (kernel.name, max(tuning.unroll, 1))
        if key in self._binary_cache:
            seconds = 0.0
        else:
            seconds = self.estimate_compile_seconds(kernel, tuning.unroll)
            self._binary_cache.add(key)
            self.accounted_compile_s += seconds
        return CompiledVariant(
            kernel=kernel,
            size=size,
            tuning=tuning,
            nest=nest,
            c_source=source,
            compile_seconds=seconds,
        )

    def compile_dsl(
        self, text: str, size: tuple[int, int, int], tuning: TuningVector
    ) -> CompiledVariant:
        """Parse DSL text and compile it (the end-to-end §V-A entry point)."""
        kernel, weights = parse_dsl(text)
        return self.compile(kernel, size, tuning, weights)

    def training_set_compile_seconds(
        self, kernels: Sequence[StencilKernel], unroll_grid: Sequence[int] = (0, 2, 4, 8)
    ) -> float:
        """Accounted time to build all binaries of a training corpus.

        Reproduces the Table II "TS Comp." figure: every generated training
        code is compiled once per unroll-grid value.
        """
        total = 0.0
        for kernel in kernels:
            for u in unroll_grid:
                total += self.estimate_compile_seconds(kernel, u)
        return total
