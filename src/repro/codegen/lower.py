"""Lowering: stencil kernel → naive loop nest.

The naive sweep iterates the interior points in z → y → x order (x is the
unit-stride axis, as PATUS and every C stencil generator arranges) and
executes one :class:`~repro.codegen.ir.PointUpdate` per point.  All
transformations are applied afterwards as IR passes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.codegen.ir import Bound, Loop, LoopNest, PointUpdate
from repro.stencil.kernel import StencilKernel
from repro.stencil.pattern import Offset
from repro.stencil.reference import default_weights

__all__ = ["lower_kernel", "build_update"]


def build_update(
    kernel: StencilKernel,
    weights: Sequence[Mapping[Offset, float]] | None = None,
) -> PointUpdate:
    """The per-point body statement for a kernel.

    ``weights`` supplies one mapping per buffer; defaults to the library's
    deterministic distance weights (shared with the reference executor, so
    interpreter-vs-reference comparisons are meaningful).
    """
    if weights is None:
        weights = [default_weights(p) for p in kernel.buffer_patterns]
    if len(weights) != kernel.num_buffers:
        raise ValueError(
            f"kernel reads {kernel.num_buffers} buffers, got {len(weights)} weight maps"
        )
    terms: list[tuple[tuple[int, tuple[int, int, int]], float]] = []
    for b, (pattern, wmap) in enumerate(zip(kernel.buffer_patterns, weights)):
        for off in pattern.offsets:
            w = float(wmap.get(off, 0.0))
            if w != 0.0:
                terms.append(((b, off), w))
    return PointUpdate(tuple(terms))


def lower_kernel(
    kernel: StencilKernel,
    size: tuple[int, int, int],
    weights: Sequence[Mapping[Offset, float]] | None = None,
) -> LoopNest:
    """Lower one Jacobi sweep over the interior of a ``size`` grid.

    Loop bounds are expressed against the interior (0 … s-1 per axis); the
    halo is handled by grid padding at execution time, exactly as the
    reference executor does.
    """
    sx, sy, sz = size
    update = build_update(kernel, weights)
    x_loop = Loop("x", Bound("", 0), Bound("sx"), body=(update,))
    y_loop = Loop("y", Bound("", 0), Bound("sy"), body=(x_loop,))
    z_loop = Loop("z", Bound("", 0), Bound("sz"), body=(y_loop,), parallel=True)
    return LoopNest(
        kernel_name=kernel.name,
        dims=kernel.dims,
        size=(sx, sy, sz),
        num_buffers=kernel.num_buffers,
        dtype=kernel.dtype.value,
        root=z_loop,
        tuning_note="naive",
        halo=kernel.radius,
    )
