"""The three PATUS code transformations as IR passes (paper §V).

* :func:`apply_blocking` — rectangular loop tiling with clipped edge tiles;
* :func:`apply_unrolling` — innermost-loop unrolling with a remainder loop;
* :func:`apply_chunking` — chunked assignment of consecutive tiles to
  OpenMP threads.

Each pass validates its input shape and parameters and records provenance
in the nest's ``tuning_note``.  Passes are *semantics-preserving* for
Jacobi sweeps (output and input grids are distinct); the test suite proves
this by interpreting transformed nests against the numpy reference.
"""

from __future__ import annotations

from dataclasses import replace

from repro.codegen.ir import Bound, Loop, LoopNest, PointUpdate, walk_loops
from repro.tuning.vector import TuningVector

__all__ = ["apply_blocking", "apply_unrolling", "apply_chunking", "apply_tuning"]

_SIZE_SYMBOL = {"x": "sx", "y": "sy", "z": "sz"}


def _require_point_loop(nest: LoopNest, var: str) -> Loop:
    loops = [lp for lp in walk_loops(nest.root) if lp.var == var]
    if len(loops) != 1:
        raise ValueError(
            f"pass expects exactly one {var!r} loop, found {len(loops)} "
            f"(was the nest already transformed?)"
        )
    return loops[0]


def apply_blocking(nest: LoopNest, block: tuple[int, int, int]) -> LoopNest:
    """Tile the z/y/x point loops with sizes ``(bx, by, bz)``.

    Produces tile loops ``tz → ty → tx`` (the parallel work units) around
    clipped point loops ``z → y → x``.  Edge tiles are clipped through the
    symbolic tile-end bounds ``tze/tye/txe = min(t + b, s)``.
    """
    bx, by, bz = block
    for b in (bx, by, bz):
        if b < 1:
            raise ValueError(f"block sizes must be >= 1, got {block}")
    if any(lp.var.startswith("t") for lp in walk_loops(nest.root)):
        raise ValueError("nest already has tile loops; expected exactly one naive nest")
    for var in ("x", "y", "z"):
        _require_point_loop(nest, var)

    update = _the_update(nest)
    x_loop = Loop("x", Bound("tx"), Bound("txe"), body=(update,))
    y_loop = Loop("y", Bound("ty"), Bound("tye"), body=(x_loop,))
    z_loop = Loop("z", Bound("tz"), Bound("tze"), body=(y_loop,))
    tx_loop = Loop("tx", Bound("", 0), Bound("sx"), step=bx, body=(z_loop,))
    ty_loop = Loop("ty", Bound("", 0), Bound("sy"), step=by, body=(tx_loop,))
    tz_loop = Loop(
        "tz", Bound("", 0), Bound("sz"), step=bz, body=(ty_loop,), parallel=True
    )
    note = f"{nest.tuning_note}+block({bx},{by},{bz})"
    return replace(nest, root=tz_loop, tuning_note=note)


def apply_unrolling(nest: LoopNest, unroll: int) -> LoopNest:
    """Unroll the innermost x loop by ``unroll`` (0/1 = no change).

    The main loop steps by ``unroll`` executing the body replicated with
    shifts ``0 … unroll-1``; the remainder points are kept in the loop's
    ``remainder`` body, executed per point after the main part.
    """
    if unroll in (0, 1):
        return nest
    if unroll < 0:
        raise ValueError(f"unroll must be >= 0, got {unroll}")
    x_loop = _require_point_loop(nest, "x")
    if x_loop.unrolled:
        raise ValueError("x loop is already unrolled")
    body = x_loop.body
    if len(body) != 1 or not isinstance(body[0], PointUpdate):
        raise ValueError("unrolling expects a single PointUpdate body")
    update = body[0]
    replicated = tuple(update.shifted(k) for k in range(unroll))
    new_x = replace(
        x_loop, step=unroll, body=replicated, unrolled=True
    )
    root = _replace_loop(nest.root, "x", new_x)
    note = f"{nest.tuning_note}+unroll({unroll})"
    return replace(nest, root=root, tuning_note=note)


def apply_chunking(nest: LoopNest, chunk: int) -> LoopNest:
    """Set the OpenMP chunk size on the parallel (outermost tile) loop."""
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    parallel = [lp for lp in walk_loops(nest.root) if lp.parallel]
    if not parallel:
        raise ValueError("nest has no parallel loop to chunk")
    target = parallel[0]
    new_target = replace(target, chunk=chunk)
    root = _replace_loop(nest.root, target.var, new_target)
    note = f"{nest.tuning_note}+chunk({chunk})"
    return replace(nest, root=root, tuning_note=note)


def apply_tuning(nest: LoopNest, tuning: TuningVector) -> LoopNest:
    """The full PATUS pipeline: blocking, then unrolling, then chunking."""
    nest = apply_blocking(nest, tuning.block)
    nest = apply_unrolling(nest, tuning.unroll)
    nest = apply_chunking(nest, tuning.chunk)
    return nest


# -- helpers -------------------------------------------------------------------


def _the_update(nest: LoopNest) -> PointUpdate:
    x_loop = _require_point_loop(nest, "x")
    if len(x_loop.body) != 1 or not isinstance(x_loop.body[0], PointUpdate):
        raise ValueError("expected a single PointUpdate in the x loop")
    return x_loop.body[0]


def _replace_loop(node: Loop, var: str, replacement: Loop) -> Loop:
    """Return a copy of the subtree with the loop ``var`` swapped out."""
    if node.var == var:
        return replacement
    new_body = tuple(
        _replace_loop(child, var, replacement) if isinstance(child, Loop) else child
        for child in node.body
    )
    return node.with_body(new_body)
