"""PATUS-like source-to-source stencil compiler substrate (paper §V-A).

The paper's implementation validates the autotuner through the PATUS DSL
compiler: stencil specifications are lowered to blocked, unrolled,
OpenMP-annotated C.  This package rebuilds that pipeline in Python:

* :mod:`repro.codegen.dsl` — a small textual stencil DSL with parser and
  printer (kernel ↔ text round trip);
* :mod:`repro.codegen.ir` — a loop-nest intermediate representation;
* :mod:`repro.codegen.lower` — stencil → naive loop nest;
* :mod:`repro.codegen.transforms` — the three PATUS transformations as IR
  passes: loop blocking, innermost-loop unrolling, chunked thread
  scheduling;
* :mod:`repro.codegen.emit_c` — C/OpenMP source emission;
* :mod:`repro.codegen.interp` — an IR interpreter over numpy grids, used
  to *prove* every transformation is semantics-preserving (tests compare
  interpreted transformed IR against the numpy reference executor);
* :mod:`repro.codegen.compiler` — the driver plus the double-compilation
  (PATUS + gcc) wall-clock accounting model behind Table II's "TS Comp."
  column.
"""

from repro.codegen.dsl import kernel_to_dsl, parse_dsl
from repro.codegen.ir import Loop, LoopNest, PointUpdate
from repro.codegen.lower import lower_kernel
from repro.codegen.transforms import (
    apply_blocking,
    apply_chunking,
    apply_unrolling,
)
from repro.codegen.emit_c import emit_c
from repro.codegen.interp import interpret
from repro.codegen.compiler import CompiledVariant, PatusCompiler

__all__ = [
    "CompiledVariant",
    "Loop",
    "LoopNest",
    "PatusCompiler",
    "PointUpdate",
    "apply_blocking",
    "apply_chunking",
    "apply_unrolling",
    "emit_c",
    "interpret",
    "kernel_to_dsl",
    "lower_kernel",
    "parse_dsl",
]
