"""A small textual stencil DSL (the PATUS-DSL role in the pipeline).

Grammar (line oriented, ``#`` comments)::

    stencil <name> {
        grid: 2d | 3d
        dtype: float | double
        extra_reads: <int>          # optional
        buffer <name> {
            (dx, dy[, dz]): <weight>
            ...
        }
        ... more buffers ...
    }

Parsing yields the kernel *and* its per-buffer weight maps (the weights are
code, not tuning — they define the computation the generated loop nest
performs).  :func:`kernel_to_dsl` prints the inverse, and the round trip is
property-tested.
"""

from __future__ import annotations

import re
from typing import Mapping, Sequence

from repro.stencil.kernel import StencilKernel
from repro.stencil.pattern import Offset, StencilPattern
from repro.stencil.reference import default_weights

__all__ = ["parse_dsl", "kernel_to_dsl", "DslError"]


class DslError(ValueError):
    """Raised on malformed DSL input, with a line number."""


_POINT_RE = re.compile(
    r"^\(\s*(-?\d+)\s*,\s*(-?\d+)\s*(?:,\s*(-?\d+)\s*)?\)\s*:\s*([-+0-9.eE]+)$"
)


def parse_dsl(text: str) -> tuple[StencilKernel, list[dict[Offset, float]]]:
    """Parse DSL text into ``(kernel, per-buffer weights)``."""
    name: str | None = None
    dims: int | None = None
    dtype = "float"
    extra_reads = 0
    buffers: list[dict[Offset, float]] = []
    current: dict[Offset, float] | None = None
    depth = 0

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        def err(msg: str) -> DslError:
            return DslError(f"line {lineno}: {msg} ({raw.strip()!r})")

        if line.startswith("stencil "):
            m = re.match(r"^stencil\s+([\w.-]+)\s*\{$", line)
            if not m or depth != 0:
                raise err("malformed stencil header")
            name = m.group(1)
            depth = 1
        elif line.startswith("buffer "):
            m = re.match(r"^buffer\s+([\w.-]+)\s*\{$", line)
            if not m or depth != 1:
                raise err("malformed buffer header")
            current = {}
            depth = 2
        elif line == "}":
            if depth == 2:
                if not current:
                    raise err("empty buffer block")
                buffers.append(current)
                current = None
                depth = 1
            elif depth == 1:
                depth = 0
            else:
                raise err("unbalanced '}'")
        elif depth == 1 and ":" in line:
            key, _, value = (s.strip() for s in line.partition(":"))
            if key == "grid":
                if value not in ("2d", "3d"):
                    raise err(f"grid must be 2d or 3d, got {value!r}")
                dims = int(value[0])
            elif key == "dtype":
                dtype = value
            elif key == "extra_reads":
                extra_reads = int(value)
            else:
                raise err(f"unknown property {key!r}")
        elif depth == 2:
            m = _POINT_RE.match(line)
            if not m:
                raise err("malformed point line")
            dx, dy = int(m.group(1)), int(m.group(2))
            dz = int(m.group(3)) if m.group(3) is not None else 0
            assert current is not None
            off = (dx, dy, dz)
            if off in current:
                raise err(f"duplicate point {off}")
            current[off] = float(m.group(4))
        else:
            raise err("unexpected line")

    if depth != 0:
        raise DslError("unexpected end of input: unclosed block")
    if name is None or dims is None or not buffers:
        raise DslError("stencil needs a name, a grid property and >= 1 buffer")

    patterns = tuple(StencilPattern.from_points(b.keys()) for b in buffers)
    kernel = StencilKernel(
        name,
        patterns,
        dtype=dtype,
        extra_point_reads=extra_reads,
        space_dims=dims,
    )
    return kernel, buffers


def kernel_to_dsl(
    kernel: StencilKernel,
    weights: Sequence[Mapping[Offset, float]] | None = None,
) -> str:
    """Print a kernel (plus optional weights) back into DSL text."""
    if weights is None:
        weights = [default_weights(p) for p in kernel.buffer_patterns]
    lines = [f"stencil {kernel.name} {{"]
    lines.append(f"    grid: {kernel.dims}d")
    lines.append(f"    dtype: {kernel.dtype.value}")
    if kernel.extra_point_reads:
        lines.append(f"    extra_reads: {kernel.extra_point_reads}")
    for b, (pattern, wmap) in enumerate(zip(kernel.buffer_patterns, weights)):
        lines.append(f"    buffer b{b} {{")
        for off in pattern.offsets:
            dx, dy, dz = off
            w = float(wmap.get(off, 0.0))
            lines.append(f"        ({dx}, {dy}, {dz}): {w!r}")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"
