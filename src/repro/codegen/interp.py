"""IR interpreter: executes a loop nest on numpy grids.

This is the semantics oracle for the code generator: the test suite lowers
a kernel, applies blocking/unrolling/chunking, interprets the result and
compares it bitwise-tolerantly against the numpy reference executor.  Any
transformation bug (wrong clipped bound, overlapping unroll lanes, missed
remainder points) shows up as a numeric mismatch.

Faithfulness over speed: tile and y/z loops run as real Python loops; only
the innermost x traversal is executed with strided numpy slices, one slice
per unrolled lane — preserving exactly which statement instance writes
which point.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.ir import Bound, Loop, LoopNest, PointUpdate
from repro.stencil.grid import Grid

__all__ = ["interpret"]


def interpret(nest: LoopNest, inputs: list[Grid], out: Grid | None = None) -> Grid:
    """Run one sweep of ``nest`` over ``inputs``, returning the output grid."""
    if len(inputs) != nest.num_buffers:
        raise ValueError(
            f"nest reads {nest.num_buffers} buffers, got {len(inputs)} grids"
        )
    sx, sy, sz = nest.size
    for grid in inputs:
        if grid.shape != (sx, sy, sz):
            raise ValueError(f"grid shape {grid.shape} != nest size {nest.size}")
        if grid.halo < nest.halo:
            raise ValueError(f"grid halo {grid.halo} < required {nest.halo}")
    if out is None:
        out = Grid.zeros((sx, sy, sz), inputs[0].halo, nest.dtype)
    env: dict[str, int] = {"sx": sx, "sy": sy, "sz": sz}
    _exec_loop(nest.root, env, inputs, out)
    return out


def _resolve(bound: Bound, env: dict[str, int]) -> int:
    if not bound.base:
        return bound.offset
    try:
        return env[bound.base] + bound.offset
    except KeyError:
        raise KeyError(f"unresolved bound symbol {bound.base!r}") from None


def _exec_loop(loop: Loop, env: dict[str, int], inputs: list[Grid], out: Grid) -> None:
    lo = _resolve(loop.lo, env)
    hi = _resolve(loop.hi, env)

    if loop.var == "x":
        _exec_x_loop(loop, lo, hi, env, inputs, out)
        return

    is_tile = loop.var.startswith("t")
    axis = loop.var[-1]
    for value in range(lo, hi, loop.step):
        env[loop.var] = value
        if is_tile:
            size = env[f"s{axis}"]
            env[f"{loop.var}e"] = min(value + loop.step, size)
        for child in loop.body:
            if isinstance(child, Loop):
                _exec_loop(child, env, inputs, out)
            else:
                raise TypeError("PointUpdate outside an x loop is not executable")


def _exec_x_loop(
    loop: Loop, lo: int, hi: int, env: dict[str, int], inputs: list[Grid], out: Grid
) -> None:
    if hi <= lo:
        return
    y, z = env.get("y", 0), env.get("z", 0)
    if not loop.unrolled:
        for stmt in loop.body:
            _exec_update_range(stmt, lo, hi, 1, y, z, inputs, out)
        return
    # main unrolled part: each lane k covers x = lo+k, lo+k+u, ...
    u = loop.step
    n_main = ((hi - lo) // u) * u
    main_hi = lo + n_main
    for lane, stmt in enumerate(loop.body):
        assert isinstance(stmt, PointUpdate) and stmt.shift[0] == lane
        _exec_update_range(stmt, lo, main_hi, u, y, z, inputs, out)
    # remainder: base statement once per leftover point
    base = loop.body[0]
    assert isinstance(base, PointUpdate)
    for x in range(main_hi, hi):
        _exec_update_range(base, x, x + 1, 1, y, z, inputs, out)


def _exec_update_range(
    stmt: PointUpdate,
    x_lo: int,
    x_hi: int,
    x_step: int,
    y: int,
    z: int,
    inputs: list[Grid],
    out: Grid,
) -> None:
    if x_hi <= x_lo:
        return
    sdx, sdy, sdz = stmt.shift
    h = out.halo
    xs = slice(x_lo + sdx + h, x_hi + sdx + h, x_step)
    oy, oz = y + sdy + h, z + sdz + h
    acc = None
    for (buf, (dx, dy, dz)), weight in stmt.terms:
        g = inputs[buf]
        src = g.data[
            slice(xs.start + dx, xs.stop + dx, x_step), oy + dy, oz + dz
        ]
        acc = weight * src if acc is None else acc + weight * src
    if acc is not None:
        out.data[xs, oy, oz] = acc
