"""Loop-nest intermediate representation.

The IR is deliberately small — exactly rich enough to express what PATUS
emits for a Jacobi stencil sweep:

* :class:`PointUpdate` — the body statement: one output point written as a
  weighted sum of reads from input buffers at fixed offsets, with an
  optional index shift (used by unrolling to replicate the body);
* :class:`Loop` — a counted loop over one axis with lower/upper *bound
  expressions* (either absolute or tile-relative), a step, and metadata
  flags (``parallel``, ``chunk``, ``unrolled``);
* :class:`LoopNest` — the root: buffer declarations plus the outermost
  loop, with the originating kernel/tuning recorded for diagnostics.

Bounds are kept symbolic (name + offset) so passes can reason about them;
the interpreter and the C emitter resolve them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Union

__all__ = ["Bound", "PointUpdate", "Loop", "LoopNest", "walk_loops"]

AXES = ("x", "y", "z")


@dataclass(frozen=True)
class Bound:
    """A loop bound: ``base + offset`` where base is a symbol or a constant.

    ``base`` may be ``""`` (pure constant), an axis-size symbol (``"sx"``),
    or a tile-index symbol (``"txe"`` = tile-end for x, etc.).
    """

    base: str
    offset: int = 0

    def shifted(self, delta: int) -> "Bound":
        """Bound displaced by a constant."""
        return Bound(self.base, self.offset + delta)

    def __str__(self) -> str:
        if not self.base:
            return str(self.offset)
        if self.offset == 0:
            return self.base
        sign = "+" if self.offset > 0 else "-"
        return f"{self.base} {sign} {abs(self.offset)}"


@dataclass(frozen=True)
class PointUpdate:
    """``out[x+sx, y+sy, z+sz] = Σ_b Σ_off w · buf_b[x+dx, y+dy, z+dz]``.

    ``terms`` maps ``(buffer_index, (dx, dy, dz)) -> weight``; ``shift``
    displaces every index (output and reads) — the unroller uses it to
    replicate the statement along x.
    """

    terms: tuple[tuple[tuple[int, tuple[int, int, int]], float], ...]
    shift: tuple[int, int, int] = (0, 0, 0)

    def shifted(self, dx: int, dy: int = 0, dz: int = 0) -> "PointUpdate":
        sx, sy, sz = self.shift
        return PointUpdate(self.terms, (sx + dx, sy + dy, sz + dz))

    @property
    def num_reads(self) -> int:
        """Scalar loads per execution of this statement."""
        return len(self.terms)


Body = Union["Loop", PointUpdate]


@dataclass(frozen=True)
class Loop:
    """A counted loop along one axis."""

    var: str  # e.g. "x", "y", "tz" (tile loop over z)
    lo: Bound
    hi: Bound  # exclusive
    step: int = 1
    body: tuple[Body, ...] = ()
    #: OpenMP-parallel loop (the collapsed tile loop)
    parallel: bool = False
    #: chunk size for dynamic scheduling (only meaningful when parallel)
    chunk: int = 1
    #: True once the unroller replicated the body over this loop's step
    unrolled: bool = False

    def with_body(self, body: tuple[Body, ...]) -> "Loop":
        return replace(self, body=body)


@dataclass(frozen=True)
class LoopNest:
    """Root of a lowered stencil sweep."""

    kernel_name: str
    dims: int
    size: tuple[int, int, int]
    num_buffers: int
    dtype: str
    root: Loop
    #: record of applied transformation parameters (provenance)
    tuning_note: str = ""
    halo: int = field(default=0)

    def describe(self) -> str:
        """One-line summary for logs."""
        return (
            f"{self.kernel_name} {self.size} buffers={self.num_buffers} "
            f"dtype={self.dtype} [{self.tuning_note}]"
        )


def walk_loops(node: Body) -> Iterator[Loop]:
    """Depth-first iteration over all loops in a subtree."""
    if isinstance(node, Loop):
        yield node
        for child in node.body:
            yield from walk_loops(child)


def find_loop(nest: LoopNest, var: str) -> Loop:
    """Locate the unique loop with the given induction variable."""
    found = [loop for loop in walk_loops(nest.root) if loop.var == var]
    if len(found) != 1:
        raise KeyError(f"expected exactly one loop {var!r}, found {len(found)}")
    return found[0]
