"""Stencil executions: the triple ``(k, s, t)`` (paper §III-B).

A :class:`StencilExecution` is the atom of the training set: one stencil
kernel, at one input size, compiled with one tuning vector.  Executions are
hashable value objects so measurement caches and pair generation can key on
them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector
from repro.util.rng import hash_seed, hash_seed_many
from repro.util.validation import check_type

__all__ = ["StencilExecution", "execution_hashes", "instance_hash"]


@dataclass(frozen=True)
class StencilExecution:
    """One concrete code variant of a stencil instance.

    >>> from repro.stencil.shapes import laplacian
    >>> from repro.stencil.kernel import StencilKernel
    >>> k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
    >>> q = StencilInstance(k, (64, 64, 64))
    >>> e = StencilExecution(q, TuningVector(16, 8, 8, 2, 1))
    >>> e.tiles
    (4, 8, 8)
    """

    instance: StencilInstance
    tuning: TuningVector

    def __post_init__(self) -> None:
        check_type("instance", self.instance, StencilInstance)
        check_type("tuning", self.tuning, TuningVector)
        if self.instance.dims == 2 and self.tuning.bz != 1:
            raise ValueError(
                f"2-D execution requires bz = 1, got bz = {self.tuning.bz}"
            )

    @property
    def kernel(self):  # noqa: ANN201 - convenience passthrough
        """The underlying kernel."""
        return self.instance.kernel

    @property
    def tiles(self) -> tuple[int, int, int]:
        """Number of tiles per dimension, ``ceil(size / block)``.

        Blocks larger than the grid simply produce a single (clipped) tile,
        which is how PATUS-generated loop nests behave.
        """
        return tuple(
            -(-s // b) for s, b in zip(self.instance.size, self.tuning.block)
        )  # type: ignore[return-value]

    @property
    def num_tiles(self) -> int:
        """Total tile count — the unit of OpenMP work distribution."""
        tx, ty, tz = self.tiles
        return tx * ty * tz

    @property
    def effective_block(self) -> tuple[int, int, int]:
        """Block dimensions clipped to the grid size."""
        return tuple(
            min(b, s) for s, b in zip(self.instance.size, self.tuning.block)
        )  # type: ignore[return-value]

    def stable_hash(self) -> int:
        """A 64-bit hash stable across processes.

        The machine model seeds its measurement noise with this, so repeated
        measurements of the same execution are reproducible (and distinct
        executions get independent noise).
        """
        return hash_seed(*_instance_hash_parts(self.instance), self.tuning.as_tuple())

    def label(self) -> str:
        """Human-readable id including the tuning vector."""
        return f"{self.instance.label()}{self.tuning}"

    def __repr__(self) -> str:
        return f"StencilExecution({self.label()})"


def _instance_hash_parts(instance: StencilInstance) -> tuple[object, ...]:
    """The instance-dependent prefix of an execution's stable hash.

    Single source of truth shared by :meth:`StencilExecution.stable_hash`
    and :func:`execution_hashes` — editing the key must change both paths
    together, or batch and scalar would key caches and noise differently.
    """
    return (
        instance.kernel.name,
        tuple(sorted(instance.kernel.pattern.counts.items())),
        instance.kernel.dtype.value,
        instance.size,
    )


def instance_hash(instance: StencilInstance) -> int:
    """64-bit process-stable content hash of an instance (kernel + size).

    The instance half of :meth:`StencilExecution.stable_hash` — two
    instances with the same kernel content and size hash identically even
    across processes, which is what lets the ranking cache of the tuning
    service recognize repeat instances.

    >>> from repro.stencil.shapes import laplacian
    >>> from repro.stencil.kernel import StencilKernel
    >>> k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
    >>> instance_hash(StencilInstance(k, (64, 64, 64))) == instance_hash(
    ...     StencilInstance(k, (64, 64, 64)))
    True
    """
    cached = getattr(instance, "_content_hash", None)
    if cached is None:
        cached = hash_seed(*_instance_hash_parts(instance))
        # memoized on the (frozen) instance: repeat requests for a hot
        # instance skip re-digesting the kernel pattern every lookup
        object.__setattr__(instance, "_content_hash", cached)
    return cached


def execution_hashes(
    instance: StencilInstance, tunings: Sequence[TuningVector]
) -> list[int]:
    """:meth:`StencilExecution.stable_hash` for many tunings of one instance.

    The instance-dependent hash prefix is digested once via
    :func:`repro.util.rng.hash_seed_many`, so hashing ``n`` tunings avoids
    ``n`` :class:`StencilExecution` constructions and re-digests — this is
    the key the batch measurement cache and noise model share with the
    scalar path.

    >>> from repro.stencil.shapes import laplacian
    >>> from repro.stencil.kernel import StencilKernel
    >>> k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
    >>> q = StencilInstance(k, (64, 64, 64))
    >>> t = TuningVector(16, 8, 8, 2, 1)
    >>> execution_hashes(q, [t]) == [StencilExecution(q, t).stable_hash()]
    True
    """
    return hash_seed_many(
        _instance_hash_parts(instance),
        (tuning.as_tuple() for tuning in tunings),
    )
