"""Grids (fields) with halo regions.

A :class:`Grid` wraps a numpy array of interior shape ``(sx, sy, sz)``
surrounded by a halo wide enough for a kernel's radius.  The interior is
exposed as a *view* (never a copy — see the scientific-python guidance on
views) so reference executors and the IR interpreter write results in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stencil.kernel import DType
from repro.util.rng import as_generator
from repro.util.validation import check_positive

__all__ = ["Grid"]


@dataclass
class Grid:
    """An ``(sx, sy, sz)`` field padded by ``halo`` ghost cells per side.

    >>> g = Grid.zeros((8, 8, 1), halo=1)
    >>> g.interior.shape
    (8, 8, 1)
    >>> g.data.shape
    (10, 10, 3)
    """

    data: np.ndarray
    halo: int
    _interior_shape: tuple[int, int, int] = field(init=False)

    def __post_init__(self) -> None:
        if self.data.ndim != 3:
            raise ValueError(f"grid storage must be 3-D, got ndim={self.data.ndim}")
        if self.halo < 0:
            raise ValueError(f"halo must be >= 0, got {self.halo}")
        shape = tuple(s - 2 * self.halo for s in self.data.shape)
        if any(s < 1 for s in shape):
            raise ValueError(
                f"storage {self.data.shape} too small for halo {self.halo}"
            )
        self._interior_shape = shape  # type: ignore[assignment]

    # -- constructors ------------------------------------------------------

    @staticmethod
    def _np_dtype(dtype: DType | str) -> np.dtype:
        return np.dtype(np.float32 if DType.parse(dtype) is DType.FLOAT else np.float64)

    @classmethod
    def zeros(
        cls, shape: tuple[int, ...], halo: int, dtype: DType | str = DType.DOUBLE
    ) -> "Grid":
        """Zero-initialized grid (halo included)."""
        full = cls._full_shape(shape, halo)
        return cls(np.zeros(full, dtype=cls._np_dtype(dtype)), halo)

    @classmethod
    def random(
        cls,
        shape: tuple[int, ...],
        halo: int,
        dtype: DType | str = DType.DOUBLE,
        rng: np.random.Generator | int | None = None,
    ) -> "Grid":
        """Grid filled (halo included) with uniform random values in [0, 1)."""
        gen = as_generator(rng)
        full = cls._full_shape(shape, halo)
        return cls(gen.random(full).astype(cls._np_dtype(dtype)), halo)

    @classmethod
    def from_interior(cls, interior: np.ndarray, halo: int) -> "Grid":
        """Embed an existing interior array, zero-filling the halo."""
        arr = np.asarray(interior)
        if arr.ndim == 2:
            arr = arr[:, :, np.newaxis]
        full = cls._full_shape(arr.shape, halo)
        data = np.zeros(full, dtype=arr.dtype)
        g = cls(data, halo)
        g.interior[...] = arr
        return g

    @staticmethod
    def _full_shape(shape: tuple[int, ...], halo: int) -> tuple[int, int, int]:
        check_positive("halo", halo, strict=False)
        s = tuple(int(v) for v in shape)
        if len(s) == 2:
            s = (*s, 1)
        if len(s) != 3:
            raise ValueError(f"grid shape must be 2-D or 3-D, got {shape!r}")
        return tuple(v + 2 * halo for v in s)  # type: ignore[return-value]

    # -- views -------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int, int]:
        """Interior (logical) shape."""
        return self._interior_shape

    @property
    def interior(self) -> np.ndarray:
        """Writable view of the interior (no copy)."""
        h = self.halo
        if h == 0:
            return self.data
        return self.data[h:-h, h:-h, h:-h]

    def shifted_view(self, offset: tuple[int, int, int]) -> np.ndarray:
        """Interior-shaped view displaced by ``offset`` (must fit in the halo).

        This is the numpy idiom for stencil application: the update is a
        weighted sum of shifted views, fully vectorized.
        """
        h = self.halo
        for d in offset:
            if abs(d) > h:
                raise ValueError(f"offset {offset} exceeds halo {h}")
        slices = tuple(
            slice(h + d, h + d + n) for d, n in zip(offset, self._interior_shape)
        )
        return self.data[slices]

    def fill_halo_periodic(self) -> None:
        """Fill the halo by wrapping the interior periodically (torus)."""
        h = self.halo
        if h == 0:
            return
        for axis in range(3):
            n = self._interior_shape[axis]
            if n == 1:
                # degenerate axis (2-D grids): replicate the single plane
                src = [slice(None)] * 3
                src[axis] = slice(h, h + 1)
                for side in range(h):
                    for dst_idx in (side, h + n + side):
                        dst = [slice(None)] * 3
                        dst[axis] = slice(dst_idx, dst_idx + 1)
                        self.data[tuple(dst)] = self.data[tuple(src)]
                continue
            lo_dst = [slice(None)] * 3
            lo_dst[axis] = slice(0, h)
            lo_src = [slice(None)] * 3
            lo_src[axis] = slice(n, n + h)
            hi_dst = [slice(None)] * 3
            hi_dst[axis] = slice(h + n, h + n + h)
            hi_src = [slice(None)] * 3
            hi_src[axis] = slice(h, 2 * h)
            self.data[tuple(lo_dst)] = self.data[tuple(lo_src)]
            self.data[tuple(hi_dst)] = self.data[tuple(hi_src)]

    def copy(self) -> "Grid":
        """Deep copy (fresh storage)."""
        return Grid(self.data.copy(), self.halo)

    def __repr__(self) -> str:
        return f"Grid(shape={self.shape}, halo={self.halo}, dtype={self.data.dtype})"
