"""Reference (functional) stencil execution in numpy.

These executors define the *semantics* of a stencil kernel: one Jacobi sweep
updates every interior point with a weighted sum of neighbour reads.  They
are the oracle the code-generator tests compare against: any sequence of
legal transformations (blocking, unrolling, chunking) must produce bitwise
identical results on the same input.

Implementation follows the vectorization guidance for scientific Python:
the sweep is a sum of *shifted views* of the input grid — no Python-level
loops over grid points, no temporaries beyond the accumulator.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.stencil.grid import Grid
from repro.stencil.kernel import StencilKernel
from repro.stencil.pattern import Offset, StencilPattern

__all__ = ["apply_stencil", "apply_kernel", "jacobi_reference", "default_weights"]


def default_weights(pattern: StencilPattern) -> dict[Offset, float]:
    """Deterministic non-trivial weights: ``1 / (1 + |dx| + |dy| + |dz|)``.

    Using distance-dependent weights (rather than all-ones) makes semantics
    tests sensitive to *which* neighbour each read came from, catching
    transposed-offset bugs that uniform weights would mask.
    """
    return {
        off: 1.0 / (1.0 + abs(off[0]) + abs(off[1]) + abs(off[2]))
        for off in pattern.offsets
    }


def apply_stencil(
    grid: Grid,
    pattern: StencilPattern,
    weights: Mapping[Offset, float] | None = None,
    out: Grid | None = None,
) -> Grid:
    """One sweep of a single-buffer stencil, returning the output grid.

    ``out`` may be supplied to reuse storage (it must have the same shape
    and halo); otherwise a zero grid is allocated.
    """
    if weights is None:
        weights = default_weights(pattern)
    if out is None:
        out = Grid.zeros(grid.shape, grid.halo, _dtype_of(grid))
    acc = out.interior
    acc.fill(0.0)
    for off in pattern.offsets:
        w = float(weights.get(off, 0.0))
        if w == 0.0:
            continue
        # in-place accumulation over a shifted view: no copies of the field
        acc += w * grid.shifted_view(off)
    return out


def apply_kernel(
    kernel: StencilKernel,
    grids: Sequence[Grid],
    weights: Sequence[Mapping[Offset, float]] | None = None,
    out: Grid | None = None,
) -> Grid:
    """One sweep of a (possibly multi-buffer) kernel.

    ``grids`` supplies one input grid per buffer pattern; the result is the
    sum of each buffer's weighted pattern application (paper §III-A).
    """
    if len(grids) != kernel.num_buffers:
        raise ValueError(
            f"kernel {kernel.name!r} reads {kernel.num_buffers} buffers, "
            f"got {len(grids)} grids"
        )
    if weights is None:
        weights = [default_weights(p) for p in kernel.buffer_patterns]
    if out is None:
        out = Grid.zeros(grids[0].shape, grids[0].halo, kernel.dtype)
    out.interior.fill(0.0)
    for grid, pattern, w in zip(grids, kernel.buffer_patterns, weights):
        acc = out.interior
        for off in pattern.offsets:
            wv = float(w.get(off, 0.0))
            if wv == 0.0:
                continue
            acc += wv * grid.shifted_view(off)
    return out


def jacobi_reference(
    kernel: StencilKernel,
    grids: Sequence[Grid],
    sweeps: int = 1,
    weights: Sequence[Mapping[Offset, float]] | None = None,
) -> Grid:
    """Run ``sweeps`` Jacobi iterations (time step t depends only on t - 1).

    The first input grid plays the role of the evolving field; auxiliary
    buffers (for multi-buffer kernels) are held fixed, which matches how the
    paper's multi-buffer benchmarks (tricubic, divergence) consume their
    secondary inputs.
    """
    if sweeps < 1:
        raise ValueError(f"sweeps must be >= 1, got {sweeps}")
    current = grids[0]
    scratch = Grid.zeros(current.shape, current.halo, kernel.dtype)
    for _ in range(sweeps):
        scratch = apply_kernel(kernel, [current, *grids[1:]], weights, out=scratch)
        current, scratch = scratch, current
        current.fill_halo_periodic()
    return current


def _dtype_of(grid: Grid) -> str:
    return "float" if grid.data.dtype == np.float32 else "double"
