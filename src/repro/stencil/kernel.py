"""Stencil kernels: ``k = (pattern, buffers, dtype)`` (paper §III-A).

A kernel bundles everything *static* about a stencil code: which neighbour
offsets each input buffer reads, how many buffers there are, and the scalar
type.  No hardware-dependent information is stored — the paper keeps the
encoding portable across machines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import reduce

from repro.stencil.pattern import StencilPattern
from repro.util.validation import check_positive, check_type

__all__ = ["DType", "StencilKernel"]


class DType(enum.Enum):
    """Scalar buffer type; the paper encodes this as a single 0/1 feature."""

    FLOAT = "float"
    DOUBLE = "double"

    @property
    def itemsize(self) -> int:
        """Bytes per scalar (4 for float, 8 for double)."""
        return 4 if self is DType.FLOAT else 8

    @property
    def feature(self) -> float:
        """The paper's encoding: 0.0 for float, 1.0 for double."""
        return 0.0 if self is DType.FLOAT else 1.0

    @classmethod
    def parse(cls, value: "DType | str") -> "DType":
        """Accept a :class:`DType` or its string name (case-insensitive)."""
        if isinstance(value, DType):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ValueError(f"unknown dtype {value!r}; expected 'float' or 'double'") from None


@dataclass(frozen=True)
class StencilKernel:
    """Static description of a stencil code.

    ``buffer_patterns`` holds one access pattern per *read* buffer.  Most
    kernels read all buffers with the same shape; the paper's `divergence`
    benchmark is the exception (three buffers read with line shapes along
    x, y and z respectively).

    >>> from repro.stencil.shapes import laplacian
    >>> k = StencilKernel("laplacian", (laplacian(3, 1),), dtype="double")
    >>> k.num_buffers, k.dims, k.pattern.num_points
    (1, 3, 7)
    """

    name: str
    buffer_patterns: tuple[StencilPattern, ...]
    dtype: DType = DType.FLOAT
    #: optional extra single-point reads that are not part of the main shape
    #: (e.g. the wave kernel's read of the previous-previous time step).
    extra_point_reads: int = 0
    #: explicit grid dimensionality.  A geometrically flat pattern (e.g. a
    #: 3-D "line" stencil along x) still sweeps a 3-D grid; ``None`` infers
    #: the dimensionality from the pattern, which is correct for patterns
    #: that actually extend in z.
    space_dims: int | None = None
    iterate_over: str = field(default="jacobi", compare=False)

    def __post_init__(self) -> None:
        if not self.buffer_patterns:
            raise ValueError("a kernel needs at least one buffer pattern")
        for pattern in self.buffer_patterns:
            check_type("buffer pattern", pattern, StencilPattern)
        object.__setattr__(self, "dtype", DType.parse(self.dtype))
        if self.extra_point_reads < 0:
            raise ValueError("extra_point_reads must be >= 0")
        if self.space_dims is not None:
            if self.space_dims not in (2, 3):
                raise ValueError(f"space_dims must be 2 or 3, got {self.space_dims}")
            if self.space_dims < self.pattern.dims:
                raise ValueError(
                    f"space_dims {self.space_dims} smaller than pattern "
                    f"dimensionality {self.pattern.dims}"
                )

    # -- convenience constructors -----------------------------------------

    @classmethod
    def single_buffer(
        cls, name: str, pattern: StencilPattern, dtype: "DType | str" = DType.FLOAT
    ) -> "StencilKernel":
        """Kernel reading one buffer with the given pattern."""
        return cls(name, (pattern,), DType.parse(dtype))

    @classmethod
    def replicated(
        cls,
        name: str,
        pattern: StencilPattern,
        buffers: int,
        dtype: "DType | str" = DType.FLOAT,
    ) -> "StencilKernel":
        """Kernel reading ``buffers`` buffers, all with the same pattern."""
        check_positive("buffers", buffers)
        return cls(name, tuple([pattern] * buffers), DType.parse(dtype))

    # -- derived static features ------------------------------------------

    @property
    def num_buffers(self) -> int:
        """Number of input buffers read (paper's ``b``)."""
        return len(self.buffer_patterns)

    @property
    def pattern(self) -> StencilPattern:
        """Combined access pattern: the sum over buffers (paper §III-A)."""
        return reduce(StencilPattern.merge, self.buffer_patterns)

    @property
    def dims(self) -> int:
        """Grid dimensionality: explicit ``space_dims`` if set, else inferred."""
        return self.space_dims if self.space_dims is not None else self.pattern.dims

    @property
    def radius(self) -> int:
        """Halo width required by the widest buffer pattern."""
        return self.pattern.radius

    @property
    def reads_per_point(self) -> int:
        """Scalar loads issued per updated point (incl. multiplicity)."""
        return self.pattern.num_reads + self.extra_point_reads

    @property
    def flops_per_point(self) -> int:
        """Floating-point operations per updated point.

        We use the standard convention for weighted stencils: one multiply
        per read plus adds combining them (``reads`` muls + ``reads - 1``
        adds + 1 final add/store fuse), i.e. ``2 * reads``.  GFlop/s figures
        in the experiment harnesses are derived from this, matching how the
        paper reports performance.
        """
        return 2 * self.reads_per_point

    @property
    def bytes_per_point(self) -> int:
        """Minimum (perfect-cache) traffic per point: each input grid
        streamed once plus the output store."""
        return (self.num_buffers + 1) * self.dtype.itemsize

    def working_planes(self) -> int:
        """Distinct z-planes touched (layer-condition input for the cache model)."""
        return self.pattern.planes(axis=2)

    def __repr__(self) -> str:
        return (
            f"StencilKernel({self.name!r}, buffers={self.num_buffers}, "
            f"dtype={self.dtype.value}, points={self.pattern.num_points}, "
            f"dims={self.dims})"
        )
