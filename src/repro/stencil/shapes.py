"""Generators for the paper's four training-shape families (Fig. 1).

The training set is built from synthetic stencils drawn from four shape
families, each parameterized by an offset radius ``r`` and dimensionality:

* **line** — points along a single axis, ``-r .. +r``;
* **hyperplane** — all points of the plane orthogonal to one axis within
  Chebyshev radius ``r``;
* **hypercube** — all points with every coordinate in ``[-r, r]``;
* **laplacian** — the axis "star": the origin plus points at distance
  ``1 .. r`` along every axis direction (the classic ``6r + 1``-point 3-D /
  ``4r + 1``-point 2-D high-order Laplacian).

2-D variants are the same constructions restricted to the ``z = 0`` plane.
"""

from __future__ import annotations

from itertools import product
from typing import Callable

from repro.stencil.pattern import StencilPattern
from repro.util.validation import check_in_range, check_positive

__all__ = ["line", "hyperplane", "hypercube", "laplacian", "TRAINING_SHAPES"]


def _check_args(dims: int, radius: int) -> None:
    check_in_range("dims", dims, 2, 3)
    check_positive("radius", radius)


def line(dims: int, radius: int, axis: int = 0) -> StencilPattern:
    """Line shape: ``2r + 1`` points along ``axis`` (Fig. 1a).

    >>> line(3, 2).num_points
    5
    """
    _check_args(dims, radius)
    if not 0 <= axis < dims:
        raise ValueError(f"axis must be in [0, {dims}), got {axis}")
    points = []
    for d in range(-radius, radius + 1):
        point = [0, 0, 0]
        point[axis] = d
        points.append(tuple(point))
    return StencilPattern.from_points(points)


def hyperplane(dims: int, radius: int, normal_axis: int | None = None) -> StencilPattern:
    """Hyperplane shape (Fig. 1b): full square of points orthogonal to one axis.

    For 3-D kernels this is a ``(2r+1)²`` plane; for 2-D kernels the
    "hyperplane" of the 2-D space is a line orthogonal to ``normal_axis``, and
    we instead return the in-plane square (the natural 2-D analogue used by
    the training generator).

    >>> hyperplane(3, 1).num_points
    9
    """
    _check_args(dims, radius)
    if dims == 2:
        points = [(dx, dy, 0) for dx, dy in product(range(-radius, radius + 1), repeat=2)]
        return StencilPattern.from_points(points)
    normal = 2 if normal_axis is None else normal_axis
    if not 0 <= normal < 3:
        raise ValueError(f"normal_axis must be in [0, 3), got {normal}")
    axes = [a for a in range(3) if a != normal]
    points = []
    for da, db in product(range(-radius, radius + 1), repeat=2):
        point = [0, 0, 0]
        point[axes[0]] = da
        point[axes[1]] = db
        points.append(tuple(point))
    return StencilPattern.from_points(points)


def hypercube(dims: int, radius: int) -> StencilPattern:
    """Hypercube shape (Fig. 1c): every point within Chebyshev radius ``r``.

    >>> hypercube(2, 1).num_points
    9
    >>> hypercube(3, 1).num_points
    27
    """
    _check_args(dims, radius)
    rng = range(-radius, radius + 1)
    if dims == 2:
        points = [(dx, dy, 0) for dx, dy in product(rng, repeat=2)]
    else:
        points = list(product(rng, repeat=3))
    return StencilPattern.from_points(points)


def laplacian(dims: int, radius: int) -> StencilPattern:
    """Laplacian "star" shape (Fig. 1d): origin + axis arms of length ``r``.

    >>> laplacian(3, 1).num_points
    7
    >>> laplacian(3, 2).num_points
    13
    >>> laplacian(2, 1).num_points
    5
    """
    _check_args(dims, radius)
    points = [(0, 0, 0)]
    for axis in range(dims):
        for d in range(1, radius + 1):
            for sign in (-1, 1):
                point = [0, 0, 0]
                point[axis] = sign * d
                points.append(tuple(point))
    return StencilPattern.from_points(points)


#: The four families the training-set generator samples from (paper Fig. 1),
#: name -> generator(dims, radius).
TRAINING_SHAPES: dict[str, Callable[[int, int], StencilPattern]] = {
    "line": line,
    "hyperplane": hyperplane,
    "hypercube": hypercube,
    "laplacian": laplacian,
}
