"""The nine benchmark stencils of the paper (Table III) and the 17 test cases.

Each :class:`Benchmark` bundles the kernel's static description with the
input sizes the paper evaluates.  The module-level ``TEST_BENCHMARKS`` list
reproduces the 17-benchmark x-axis of Fig. 4 in the paper's order.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.pattern import StencilPattern
from repro.stencil.shapes import hypercube, laplacian

__all__ = [
    "Benchmark",
    "BENCHMARKS",
    "TEST_BENCHMARKS",
    "get_benchmark",
    "benchmark_by_id",
]


@dataclass(frozen=True)
class Benchmark:
    """A named stencil code plus the input sizes it is evaluated at."""

    name: str
    kernel: StencilKernel
    sizes: tuple[tuple[int, int, int], ...]
    description: str = ""

    def instances(self) -> list[StencilInstance]:
        """One :class:`StencilInstance` per evaluated size."""
        return [StencilInstance(self.kernel, size) for size in self.sizes]

    def instance(self, size: tuple[int, ...]) -> StencilInstance:
        """The instance for one specific size (must be listed in Table III)."""
        size3 = tuple(size) if len(size) == 3 else (*size, 1)
        if size3 not in self.sizes:
            raise KeyError(f"{self.name} is not evaluated at size {size}")
        return StencilInstance(self.kernel, size3)  # type: ignore[arg-type]


def _tricubic_kernel() -> StencilKernel:
    """Tricubic interpolation: a 4×4×4 cube read from the data grid plus
    centre-point reads of three coordinate grids (3 float buffers)."""
    cube = StencilPattern.from_points(product(range(-1, 3), repeat=3))
    center = StencilPattern.from_points([(0, 0, 0)])
    return StencilKernel("tricubic", (cube, center, center), dtype="float")


def _divergence_kernel() -> StencilKernel:
    """Divergence of a vector field: each of the three double buffers is read
    with a two-point line along its own axis (combined shape: the 6-point
    star with the centre not read — Table III)."""
    x_line = StencilPattern.from_points([(-1, 0, 0), (1, 0, 0)])
    y_line = StencilPattern.from_points([(0, -1, 0), (0, 1, 0)])
    z_line = StencilPattern.from_points([(0, 0, -1), (0, 0, 1)])
    return StencilKernel("divergence", (x_line, y_line, z_line), dtype="double")


def _gradient_kernel() -> StencilKernel:
    """Gradient magnitude: 6-point star (centre not read), one double buffer."""
    star = StencilPattern.from_points(
        [(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)]
    )
    return StencilKernel.single_buffer("gradient", star, "double")


def _wave_kernel() -> StencilKernel:
    """Wave equation: 13-point (radius-2) Laplacian star of u(t-1) plus one
    extra centre read of u(t-2) — Table III's "13 laplacian + 1"."""
    return StencilKernel(
        "wave", (laplacian(3, 2),), dtype="float", extra_point_reads=1
    )


def _make_benchmarks() -> dict[str, Benchmark]:
    two_d = lambda n: (n, n, 1)  # noqa: E731 - local shorthand
    benchmarks = [
        Benchmark(
            "blur",
            StencilKernel.single_buffer("blur", hypercube(2, 2), "float"),
            (two_d(1024), (1024, 768, 1)),
            "2-D 5×5 box blur (image processing)",
        ),
        Benchmark(
            "edge",
            StencilKernel.single_buffer("edge", hypercube(2, 1), "float"),
            (two_d(512), two_d(1024)),
            "2-D 3×3 edge detection",
        ),
        Benchmark(
            "game-of-life",
            StencilKernel.single_buffer("game-of-life", hypercube(2, 1), "float"),
            (two_d(512), two_d(1024)),
            "2-D 3×3 Game of Life generation",
        ),
        Benchmark(
            "wave",
            _wave_kernel(),
            ((128,) * 3, (256,) * 3),
            "3-D wave equation, 13-point Laplacian + previous time step",
        ),
        Benchmark(
            "tricubic",
            _tricubic_kernel(),
            ((128,) * 3, (256,) * 3),
            "3-D tricubic interpolation, 4×4×4 cube over 3 float buffers",
        ),
        Benchmark(
            "divergence",
            _divergence_kernel(),
            ((128,) * 3,),
            "3-D divergence: per-axis line reads over 3 double buffers",
        ),
        Benchmark(
            "gradient",
            _gradient_kernel(),
            ((128,) * 3, (256,) * 3),
            "3-D gradient: 6-point star, centre not read",
        ),
        Benchmark(
            "laplacian",
            StencilKernel.single_buffer("laplacian", laplacian(3, 1), "double"),
            ((128,) * 3, (256,) * 3),
            "3-D 7-point Laplacian",
        ),
        Benchmark(
            "laplacian6",
            StencilKernel.single_buffer("laplacian6", laplacian(3, 3), "double"),
            ((128,) * 3, (256,) * 3),
            "3-D 6th-order (19-point) Laplacian",
        ),
    ]
    return {b.name: b for b in benchmarks}


#: Table III registry: name -> benchmark.
BENCHMARKS: dict[str, Benchmark] = _make_benchmarks()


def get_benchmark(name: str) -> Benchmark:
    """Look up a Table III benchmark by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        ) from None


def _test_benchmarks() -> list[StencilInstance]:
    """The 17 test benchmarks in the paper's Fig. 4 x-axis order."""
    order = [
        ("blur", (1024, 1024, 1)),
        ("blur", (1024, 768, 1)),
        ("wave", (128, 128, 128)),
        ("wave", (256, 256, 256)),
        ("tricubic", (128, 128, 128)),
        ("tricubic", (256, 256, 256)),
        ("edge", (512, 512, 1)),
        ("edge", (1024, 1024, 1)),
        ("game-of-life", (512, 512, 1)),
        ("game-of-life", (1024, 1024, 1)),
        ("divergence", (128, 128, 128)),
        ("gradient", (128, 128, 128)),
        ("gradient", (256, 256, 256)),
        ("laplacian", (128, 128, 128)),
        ("laplacian", (256, 256, 256)),
        ("laplacian6", (128, 128, 128)),
        ("laplacian6", (256, 256, 256)),
    ]
    return [get_benchmark(name).instance(size) for name, size in order]


#: Fig. 4's 17 test benchmarks, in paper order.
TEST_BENCHMARKS: list[StencilInstance] = _test_benchmarks()


def benchmark_by_id(label: str) -> StencilInstance:
    """Resolve a label like ``laplacian-128x128x128`` to its instance."""
    for inst in TEST_BENCHMARKS:
        if inst.label() == label:
            return inst
    raise KeyError(
        f"unknown benchmark id {label!r}; known: {[i.label() for i in TEST_BENCHMARKS]}"
    )
