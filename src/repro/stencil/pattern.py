"""Stencil access patterns (the paper's "shape").

A :class:`StencilPattern` records, for every neighbour offset
``(dx, dy, dz)`` relative to the updated point, how many times that offset is
read across all input buffers.  The paper (§III-A) represents the shape as an
``(2R+1)³`` binary matrix for a maximum offset ``R``; for kernels that read
several buffers "the access pattern is defined as the sum of accesses to each
individual buffer", which is why we keep integer *counts* rather than a
boolean mask.

Two-dimensional stencils are a special case living entirely on the ``z = 0``
plane, so 2-D and 3-D kernels share one feature space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.util.validation import check_positive, check_type

__all__ = ["StencilPattern", "Offset"]

Offset = tuple[int, int, int]


def _canonical_offset(point: Iterable[int]) -> Offset:
    coords = tuple(int(c) for c in point)
    if len(coords) == 2:
        coords = (*coords, 0)
    if len(coords) != 3:
        raise ValueError(f"pattern points must be 2-D or 3-D, got {coords!r}")
    return coords  # type: ignore[return-value]


@dataclass(frozen=True)
class StencilPattern:
    """An immutable multiset of neighbour offsets.

    Construct from an iterable of 2-tuples (interpreted on the ``z = 0``
    plane) or 3-tuples::

        >>> lap5 = StencilPattern.from_points(
        ...     [(0, -1), (-1, 0), (0, 0), (1, 0), (0, 1)])
        >>> lap5.num_points
        5
        >>> lap5.radius
        1
        >>> lap5.dims
        2
    """

    _counts: tuple[tuple[Offset, int], ...]

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[Iterable[int]]) -> "StencilPattern":
        """Build a pattern from offsets; repeated offsets accumulate counts."""
        counts: dict[Offset, int] = {}
        for point in points:
            off = _canonical_offset(point)
            counts[off] = counts.get(off, 0) + 1
        if not counts:
            raise ValueError("a stencil pattern needs at least one point")
        return cls(tuple(sorted(counts.items())))

    @classmethod
    def from_counts(cls, counts: Mapping[Offset, int]) -> "StencilPattern":
        """Build a pattern from an explicit ``offset -> count`` mapping."""
        clean: dict[Offset, int] = {}
        for off, count in counts.items():
            check_positive("pattern count", count)
            clean[_canonical_offset(off)] = int(count)
        if not clean:
            raise ValueError("a stencil pattern needs at least one point")
        return cls(tuple(sorted(clean.items())))

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "StencilPattern":
        """Inverse of :meth:`to_dense`: non-zero cells become offsets.

        ``matrix`` must be a cube of odd edge length; the central cell is the
        origin.  This round-trip is what lets a feature vector be decoded
        back into a stencil shape (paper §III: "given such a vector, it is
        also possible to reconstruct the stencil code").
        """
        arr = np.asarray(matrix)
        if arr.ndim == 2:
            arr = arr[:, :, np.newaxis]
        if arr.ndim != 3:
            raise ValueError(f"dense pattern must be 2-D or 3-D, got ndim={arr.ndim}")
        if any(s % 2 == 0 for s in arr.shape):
            raise ValueError(f"dense pattern must have odd edge lengths, got {arr.shape}")
        center = tuple(s // 2 for s in arr.shape)
        counts: dict[Offset, int] = {}
        for idx in np.argwhere(arr != 0):
            off = tuple(int(i - c) for i, c in zip(idx, center))
            counts[off] = int(arr[tuple(idx)])  # type: ignore[index]
        return cls.from_counts(counts)  # type: ignore[arg-type]

    # -- views -------------------------------------------------------------

    @property
    def counts(self) -> dict[Offset, int]:
        """``offset -> read count`` mapping (a fresh dict)."""
        return dict(self._counts)

    @property
    def offsets(self) -> tuple[Offset, ...]:
        """Sorted tuple of distinct offsets."""
        return tuple(off for off, _ in self._counts)

    @property
    def num_points(self) -> int:
        """Number of *distinct* offsets read."""
        return len(self._counts)

    @property
    def num_reads(self) -> int:
        """Total reads per updated point, counting multiplicity across buffers."""
        return sum(count for _, count in self._counts)

    @property
    def radius(self) -> int:
        """Maximum Chebyshev (max-norm) offset — the halo width required."""
        return max(max(abs(c) for c in off) for off in self.offsets)

    @property
    def extent(self) -> tuple[int, int, int]:
        """Per-axis maximum absolute offset ``(rx, ry, rz)``."""
        offs = np.array(self.offsets)
        return tuple(int(v) for v in np.abs(offs).max(axis=0))  # type: ignore[return-value]

    @property
    def dims(self) -> int:
        """2 if every offset lies on the ``z = 0`` plane, else 3."""
        return 2 if all(off[2] == 0 for off in self.offsets) else 3

    @property
    def reads_origin(self) -> bool:
        """Whether the updated point itself is read (False for e.g. divergence)."""
        return (0, 0, 0) in dict(self._counts)

    def axis_span(self, axis: int) -> tuple[int, int]:
        """``(min, max)`` offset along ``axis`` (0 = x, 1 = y, 2 = z)."""
        vals = [off[axis] for off in self.offsets]
        return min(vals), max(vals)

    def planes(self, axis: int = 2) -> int:
        """Number of distinct coordinate planes the pattern touches along ``axis``.

        This drives the layer-condition cache analysis: a 3-D star of radius
        ``r`` touches ``2r + 1`` z-planes, each of which must stay resident
        for perfect reuse.
        """
        return len({off[axis] for off in self.offsets})

    def to_dense(self, radius: int | None = None) -> np.ndarray:
        """Return the ``(2R+1, 2R+1, 2R+1)`` integer count matrix.

        ``radius`` defaults to the pattern's own radius; a larger value
        embeds the pattern in a bigger matrix (used by the feature encoder to
        put all kernels in one fixed-size space).
        """
        r = self.radius if radius is None else int(radius)
        if r < self.radius:
            raise ValueError(
                f"radius {r} too small for pattern of radius {self.radius}"
            )
        size = 2 * r + 1
        dense = np.zeros((size, size, size), dtype=np.int64)
        for (dx, dy, dz), count in self._counts:
            dense[dx + r, dy + r, dz + r] = count
        return dense

    # -- algebra -----------------------------------------------------------

    def merge(self, other: "StencilPattern") -> "StencilPattern":
        """Sum of two access patterns (multi-buffer kernels, paper §III-A)."""
        check_type("other", other, StencilPattern)
        counts = dict(self._counts)
        for off, count in other._counts:
            counts[off] = counts.get(off, 0) + count
        return StencilPattern(tuple(sorted(counts.items())))

    def __add__(self, other: "StencilPattern") -> "StencilPattern":
        return self.merge(other)

    def shifted(self, delta: Iterable[int]) -> "StencilPattern":
        """Pattern translated by ``delta`` (used by codegen legality checks)."""
        d = _canonical_offset(delta)
        return StencilPattern(
            tuple(
                sorted(
                    ((off[0] + d[0], off[1] + d[1], off[2] + d[2]), count)
                    for off, count in self._counts
                )
            )
        )

    # -- protocol ----------------------------------------------------------

    def __iter__(self) -> Iterator[Offset]:
        return iter(self.offsets)

    def __contains__(self, point: Iterable[int]) -> bool:
        return _canonical_offset(point) in dict(self._counts)

    def __len__(self) -> int:
        return self.num_points

    def __repr__(self) -> str:
        return (
            f"StencilPattern(points={self.num_points}, reads={self.num_reads}, "
            f"radius={self.radius}, dims={self.dims})"
        )
