"""Stencil modeling: patterns, kernels, instances, executions, grids (paper §III).

The paper's algebraic framework represents any stencil computation by

* a **pattern** (shape): which neighbour offsets are read, encoded as a
  3-D occupancy structure around the updated point (2-D stencils live on
  the ``z = 0`` plane of the same space);
* the **number of buffers** read and their scalar **data type**;
* an **input size** ``(sx, sy, sz)``;
* a **tuning vector** of code-transformation parameters.

This package implements that framework plus a numpy reference executor
(functional semantics used for correctness testing of the code generator)
and the registry of the nine Table III benchmark stencils.
"""

from repro.stencil.pattern import StencilPattern
from repro.stencil.shapes import (
    TRAINING_SHAPES,
    hypercube,
    hyperplane,
    laplacian,
    line,
)
from repro.stencil.kernel import DType, StencilKernel
from repro.stencil.instance import StencilInstance
from repro.stencil.execution import StencilExecution
from repro.stencil.grid import Grid
from repro.stencil.reference import apply_kernel, apply_stencil, jacobi_reference
from repro.stencil.suite import (
    BENCHMARKS,
    TEST_BENCHMARKS,
    Benchmark,
    benchmark_by_id,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "DType",
    "Grid",
    "StencilExecution",
    "StencilInstance",
    "StencilKernel",
    "StencilPattern",
    "TEST_BENCHMARKS",
    "TRAINING_SHAPES",
    "apply_kernel",
    "apply_stencil",
    "benchmark_by_id",
    "get_benchmark",
    "hypercube",
    "hyperplane",
    "jacobi_reference",
    "laplacian",
    "line",
]
