"""Stencil instances: ``q = (k, s)`` — a kernel applied to a concrete size.

An *instance* is the unit the ranking model groups training data by: tuning
vectors are comparable (partially ordered by runtime) only within the same
instance (paper §IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stencil.kernel import StencilKernel
from repro.util.validation import check_positive, check_type

__all__ = ["StencilInstance"]

Size = tuple[int, int, int]


@dataclass(frozen=True)
class StencilInstance:
    """A kernel bound to an input size ``(sx, sy, sz)``.

    2-D kernels use ``sz = 1``.  The constructor checks that the grid is
    large enough to contain at least one updated point inside the halo.

    >>> from repro.stencil.shapes import laplacian
    >>> from repro.stencil.kernel import StencilKernel
    >>> k = StencilKernel.single_buffer("lap", laplacian(3, 1), "double")
    >>> q = StencilInstance(k, (128, 128, 128))
    >>> q.num_points
    2097152
    """

    kernel: StencilKernel
    size: Size

    def __post_init__(self) -> None:
        check_type("kernel", self.kernel, StencilKernel)
        size = tuple(int(s) for s in self.size)
        if len(size) == 2:
            size = (*size, 1)
        if len(size) != 3:
            raise ValueError(f"size must be 2-D or 3-D, got {self.size!r}")
        for s in size:
            check_positive("size component", s)
        if self.kernel.dims == 2 and size[2] != 1:
            raise ValueError(
                f"2-D kernel {self.kernel.name!r} requires sz = 1, got {size[2]}"
            )
        halo = self.kernel.radius
        active_dims = 3 if self.kernel.dims == 3 else 2
        for axis in range(active_dims):
            if size[axis] <= 2 * halo:
                raise ValueError(
                    f"size {size} too small for kernel halo {halo} on axis {axis}"
                )
        object.__setattr__(self, "size", size)

    @property
    def dims(self) -> int:
        """Dimensionality inherited from the kernel."""
        return self.kernel.dims

    @property
    def num_points(self) -> int:
        """Total grid points updated per sweep."""
        sx, sy, sz = self.size
        return sx * sy * sz

    @property
    def flops(self) -> int:
        """Floating-point operations per sweep."""
        return self.num_points * self.kernel.flops_per_point

    @property
    def min_bytes(self) -> int:
        """Compulsory memory traffic per sweep (perfect cache reuse)."""
        return self.num_points * self.kernel.bytes_per_point

    def label(self) -> str:
        """Human-readable id, e.g. ``laplacian-128x128x128``."""
        sx, sy, sz = self.size
        dims = f"{sx}x{sy}" if self.dims == 2 else f"{sx}x{sy}x{sz}"
        return f"{self.kernel.name}-{dims}"

    def __repr__(self) -> str:
        return f"StencilInstance({self.label()})"
