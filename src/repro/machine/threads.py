"""OpenMP work-distribution model (tiles, chunks, threads).

PATUS assigns *chunks* of ``c`` consecutive tiles to threads.  The chunk
size trades off two costs:

* **dispatch overhead** — every chunk pays a scheduling cost, so tiny
  chunks on a large tile grid waste time in the runtime;
* **load imbalance** — with few, large chunks the last round of the
  round-robin leaves threads idle (the classic ``ceil`` effect), and when
  there are fewer chunks than threads some cores never work at all.

The model computes an *imbalance factor* (≥ 1, the ratio of the busiest
thread's work to the mean) and the serialized scheduling overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from repro.machine.spec import MachineSpec

__all__ = ["BatchScheduleReport", "ScheduleModel", "ScheduleReport"]


@dataclass(frozen=True)
class ScheduleReport:
    """Result of distributing a tile grid over threads."""

    num_tiles: int
    num_chunks: int
    threads_used: int
    #: busiest-thread work / perfectly balanced work (>= 1)
    imbalance: float
    #: scheduling + fork/join overhead in seconds
    overhead_s: float

    @property
    def parallel_efficiency(self) -> float:
        """Fraction of ideal speedup retained (1 / imbalance)."""
        return 1.0 / self.imbalance


@dataclass(frozen=True)
class BatchScheduleReport:
    """Struct-of-arrays :class:`ScheduleReport` for ``n`` tunings at once.

    Every field is an ``(n,)`` array; entry ``i`` equals the corresponding
    scalar :meth:`ScheduleModel.schedule` result for tuning ``i``.
    """

    num_tiles: np.ndarray
    num_chunks: np.ndarray
    threads_used: np.ndarray
    imbalance: np.ndarray
    overhead_s: np.ndarray

    def __len__(self) -> int:
        return len(self.num_tiles)

    @property
    def parallel_efficiency(self) -> np.ndarray:
        """Fraction of ideal speedup retained, per tuning."""
        return 1.0 / self.imbalance


@dataclass(frozen=True)
class ScheduleModel:
    """Distributes ``num_tiles`` tiles in chunks of ``chunk`` over the cores."""

    spec: MachineSpec

    def schedule(self, num_tiles: int, chunk: int) -> ScheduleReport:
        """Compute imbalance and overhead for one sweep.

        >>> from repro.machine.spec import XEON_E5_2680_V3
        >>> m = ScheduleModel(XEON_E5_2680_V3)
        >>> r = m.schedule(num_tiles=1200, chunk=1)
        >>> r.threads_used
        12
        >>> r.imbalance
        1.0
        """
        if num_tiles < 1:
            raise ValueError(f"num_tiles must be >= 1, got {num_tiles}")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        cores = self.spec.cores
        num_chunks = ceil(num_tiles / chunk)
        threads_used = min(cores, num_chunks)

        # Round-robin chunks over threads; the busiest thread owns
        # ceil(num_chunks / threads) chunks.  The final chunk may be short,
        # which helps slightly; we model work in tiles.
        chunks_per_thread = ceil(num_chunks / threads_used)
        busiest_tiles = min(chunks_per_thread * chunk, num_tiles)
        mean_tiles = num_tiles / threads_used
        imbalance = busiest_tiles / mean_tiles

        overhead_s = (
            self.spec.parallel_overhead_us
            + self.spec.chunk_overhead_us * num_chunks / threads_used
        ) * 1e-6
        return ScheduleReport(
            num_tiles=num_tiles,
            num_chunks=num_chunks,
            threads_used=threads_used,
            imbalance=imbalance,
            overhead_s=overhead_s,
        )

    def schedule_batch(
        self, num_tiles: np.ndarray, chunk: np.ndarray
    ) -> BatchScheduleReport:
        """Vectorized :meth:`schedule` over ``(n,)`` tile/chunk arrays.

        Work distribution is pure integer arithmetic, so the batch result is
        bit-identical to ``n`` scalar calls — the equivalence suite pins it.
        """
        num_tiles = np.asarray(num_tiles, dtype=np.int64)
        chunk = np.asarray(chunk, dtype=np.int64)
        if num_tiles.size and int(num_tiles.min()) < 1:
            raise ValueError(f"num_tiles must be >= 1, got {int(num_tiles.min())}")
        if chunk.size and int(chunk.min()) < 1:
            raise ValueError(f"chunk must be >= 1, got {int(chunk.min())}")
        cores = self.spec.cores
        num_chunks = -(-num_tiles // chunk)
        threads_used = np.minimum(cores, num_chunks)
        chunks_per_thread = -(-num_chunks // threads_used)
        busiest_tiles = np.minimum(chunks_per_thread * chunk, num_tiles)
        mean_tiles = num_tiles / threads_used
        imbalance = busiest_tiles / mean_tiles
        overhead_s = (
            self.spec.parallel_overhead_us
            + self.spec.chunk_overhead_us * num_chunks / threads_used
        ) * 1e-6
        return BatchScheduleReport(
            num_tiles=num_tiles,
            num_chunks=num_chunks,
            threads_used=threads_used,
            imbalance=imbalance,
            overhead_s=overhead_s,
        )
