"""Roofline diagnostics for the simulated machine.

A practitioner's sanity lens over the cost model: for any kernel, compute
its arithmetic intensity (flops per DRAM byte at the *best achievable*
traffic), locate it against the machine's compute and bandwidth roofs, and
classify it memory- or compute-bound.  The experiment harnesses use this to
explain *why* e.g. tricubic tunes easily (far into the compute region —
blocking barely matters) while the double-precision Laplacians live under
the bandwidth roof where blocking is everything, mirroring the paper's
per-benchmark discussion of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import MachineSpec, XEON_E5_2680_V3
from repro.stencil.kernel import StencilKernel

__all__ = ["RooflinePoint", "roofline", "ridge_intensity"]


def ridge_intensity(spec: MachineSpec, dtype: "str") -> float:
    """Flops/byte where the compute roof meets the bandwidth roof."""
    peak = spec.peak_gflops(dtype) * spec.codegen_efficiency
    return peak / spec.mem_bandwidth_gbs


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel located on the roofline."""

    kernel_name: str
    #: flops per DRAM byte assuming perfect in-cache reuse
    arithmetic_intensity: float
    #: attainable GFlop/s = min(compute roof, intensity × bandwidth)
    attainable_gflops: float
    #: the machine's ridge point (flops/byte)
    ridge: float

    @property
    def memory_bound(self) -> bool:
        """True iff the kernel sits left of the ridge."""
        return self.arithmetic_intensity < self.ridge


def roofline(
    kernel: StencilKernel, spec: MachineSpec = XEON_E5_2680_V3
) -> RooflinePoint:
    """Locate a kernel on the machine's roofline.

    Intensity uses the *compulsory* traffic (each input grid streamed once
    plus write-allocate + write-back of the output) — the best any blocking
    can achieve, hence an upper bound on attainable performance.

    >>> from repro.stencil.suite import get_benchmark
    >>> roofline(get_benchmark("laplacian").kernel).memory_bound
    True
    >>> roofline(get_benchmark("tricubic").kernel).memory_bound
    False
    """
    itemsize = kernel.dtype.itemsize
    compulsory_bytes = (kernel.num_buffers + 2.0) * itemsize  # inputs + WA + WB
    intensity = kernel.flops_per_point / compulsory_bytes
    compute_roof = spec.peak_gflops(kernel.dtype) * spec.codegen_efficiency
    bandwidth_roof = intensity * spec.mem_bandwidth_gbs
    return RooflinePoint(
        kernel_name=kernel.name,
        arithmetic_intensity=intensity,
        attainable_gflops=min(compute_roof, bandwidth_roof),
        ridge=ridge_intensity(spec, kernel.dtype.value),
    )
