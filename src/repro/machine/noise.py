"""Measurement-noise model.

Real autotuning measurements jitter: frequency scaling, cache/TLB state and
OS interference perturb every run by a few percent, with occasional larger
spikes.  The noise model reproduces that with a multiplicative log-normal
term plus a rare positive outlier, and is **deterministically seeded** from
the execution's stable hash and the repeat index — so re-measuring the same
variant returns the same sequence of times (experiments are reproducible
end to end), while different variants get independent draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.rng import spawn

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative noise: ``t_observed = t_true · exp(N(0, σ)) · spike``."""

    sigma: float = 0.02
    #: probability of an OS-interference spike on any single run
    spike_probability: float = 0.01
    #: spike magnitude (multiplier on the run time)
    spike_factor: float = 1.12
    seed: int = 0

    def factor(self, execution_hash: int, repeat: int = 0) -> float:
        """Noise multiplier for the ``repeat``-th run of a given execution."""
        rng = spawn(self.seed, "noise", execution_hash, repeat)
        f = float(rng.lognormal(mean=0.0, sigma=self.sigma)) if self.sigma > 0 else 1.0
        if self.spike_probability > 0 and rng.random() < self.spike_probability:
            f *= self.spike_factor
        return f

    def factors(
        self, execution_hashes: Sequence[int], repeats: int
    ) -> np.ndarray:
        """Noise multipliers for a batch: ``(n, repeats)`` array.

        Entry ``[i, r]`` equals ``factor(execution_hashes[i], r)`` exactly —
        each (execution, repeat) pair owns an independent, deterministic RNG
        stream, so batch and scalar measurements observe identical noise.
        The noise-free case (``exact()`` models, analysis paths) short-
        circuits to ones without spawning any streams; the noisy case still
        spawns one stream per pair, which is irreducible if scalar
        equivalence is to hold, but is a small cost next to the vectorized
        cost-model pass.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        n = len(execution_hashes)
        if self.sigma <= 0 and self.spike_probability <= 0:
            return np.ones((n, repeats))
        out = np.empty((n, repeats))
        for i, h in enumerate(execution_hashes):
            for r in range(repeats):
                out[i, r] = self.factor(int(h), r)
        return out

    def exact(self) -> "NoiseModel":
        """A copy with noise disabled (used by analysis tools and tests)."""
        return NoiseModel(sigma=0.0, spike_probability=0.0, seed=self.seed)
