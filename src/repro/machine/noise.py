"""Measurement-noise model.

Real autotuning measurements jitter: frequency scaling, cache/TLB state and
OS interference perturb every run by a few percent, with occasional larger
spikes.  The noise model reproduces that with a multiplicative log-normal
term plus a rare positive outlier.

The noise is **counter-based**: instead of spawning a PRNG stream per
(execution, repeat) pair, both draws a pair needs — a standard normal for
the log-normal term and a uniform for the spike — are derived directly from
a 128-bit BLAKE2b digest of ``(seed, execution hash, repeat)`` via the
inverse normal CDF.  The properties that matter are preserved:

* **determinism** — the same (seed, execution, repeat) always observes the
  same multiplier, so experiments are reproducible end to end;
* **independence** — distinct executions and repeats get cryptographically
  independent draws;
* **scalar/batch equivalence** — :meth:`factor` and :meth:`factors` share
  one array code path, so a batch entry is bit-identical to the scalar
  call.  Unlike the earlier stream-per-pair design, a batch costs two
  hasher copies per pair plus one vectorized NumPy pass — no
  ``SeedSequence``/``Generator`` construction at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import ndtri

from repro.util.rng import hash_bits_grid

__all__ = ["NoiseModel"]


def _uniforms(bits: np.ndarray) -> np.ndarray:
    """Map uint64 words onto the open interval (0, 1).

    The top 53 bits give the usual double-precision uniform grid; the
    half-ULP offset keeps 0 and 1 unreachable so ``ndtri`` stays finite.
    """
    return (bits >> np.uint64(11)) * 2.0**-53 + 2.0**-54


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative noise: ``t_observed = t_true · exp(N(0, σ)) · spike``."""

    sigma: float = 0.02
    #: probability of an OS-interference spike on any single run
    spike_probability: float = 0.01
    #: spike magnitude (multiplier on the run time)
    spike_factor: float = 1.12
    seed: int = 0

    def _factor_grid(
        self, execution_hashes: Sequence[int], repeat_indices: Sequence[int]
    ) -> np.ndarray:
        """Multipliers for every (hash, repeat) pair: ``(n, m)`` array.

        The single code path behind :meth:`factor` and :meth:`factors` —
        routing both through the same array ops is what guarantees their
        results are bit-identical.
        """
        bits = hash_bits_grid(
            ["noise", self.seed],
            [int(h) for h in execution_hashes],
            [int(r) for r in repeat_indices],
        )
        shape = bits.shape[:2]
        if self.sigma > 0:
            out = np.exp(self.sigma * ndtri(_uniforms(bits[..., 0])))
        else:
            out = np.ones(shape)
        if self.spike_probability > 0:
            spiked = _uniforms(bits[..., 1]) < self.spike_probability
            out = np.where(spiked, out * self.spike_factor, out)
        return out

    def factor(self, execution_hash: int, repeat: int = 0) -> float:
        """Noise multiplier for the ``repeat``-th run of a given execution."""
        if self.sigma <= 0 and self.spike_probability <= 0:
            return 1.0
        return float(self._factor_grid([execution_hash], [repeat])[0, 0])

    def factors(
        self, execution_hashes: Sequence[int], repeats: int
    ) -> np.ndarray:
        """Noise multipliers for a batch: ``(n, repeats)`` array.

        Entry ``[i, r]`` equals ``factor(execution_hashes[i], r)`` exactly.
        The noise-free case (``exact()`` models, analysis paths) short-
        circuits to ones without hashing anything.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        n = len(execution_hashes)
        if self.sigma <= 0 and self.spike_probability <= 0:
            return np.ones((n, repeats))
        return self._factor_grid(execution_hashes, range(repeats))

    def exact(self) -> "NoiseModel":
        """A copy with noise disabled (used by analysis tools and tests)."""
        return NoiseModel(sigma=0.0, spike_probability=0.0, seed=self.seed)
