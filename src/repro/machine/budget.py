"""Budgeted measurement: a hard cap on background ground-truth probing.

The continual-learning loop measures served rankings asynchronously to
obtain labels.  On a real installation that probing competes with the
machine's actual workload, so it must run under an explicit budget — so
many evaluations and so many simulated seconds per window, never more.
:class:`BudgetedMachine` wraps a :class:`SimulatedMachine` and enforces
exactly that: measurement calls that would exceed the remaining budget
raise :class:`MeasurementBudgetExceeded` (or return ``None`` from the
``try_`` variants) *before* charging anything, so a probe either runs in
full or not at all — no partially charged batches.

The wrapper keeps its own counters (the underlying machine may be shared
with other consumers) and can be refilled per collection window with
:meth:`refill` — or automatically on a wall-clock schedule armed with
:meth:`refill_every` ("so many probes per N seconds"), which is how a
long-running continual-learning deployment budgets probing without anyone
remembering to call :meth:`refill`.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.machine.executor import BatchMeasurement, SimulatedMachine
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = ["BudgetedMachine", "MeasurementBudgetExceeded"]


class MeasurementBudgetExceeded(RuntimeError):
    """A measurement was requested beyond the configured probing budget."""


class BudgetedMachine:
    """A measurement budget enforced in front of a :class:`SimulatedMachine`.

    ``max_evaluations`` caps the number of (tuning, instance) evaluations;
    ``max_wall_s`` caps the *simulated* testbed seconds those evaluations
    would consume.  Either may be ``None`` (unlimited).
    """

    def __init__(
        self,
        machine: SimulatedMachine,
        max_evaluations: "int | None" = None,
        max_wall_s: "float | None" = None,
    ) -> None:
        if max_evaluations is not None and max_evaluations < 0:
            raise ValueError(f"max_evaluations must be >= 0, got {max_evaluations}")
        if max_wall_s is not None and max_wall_s < 0:
            raise ValueError(f"max_wall_s must be >= 0, got {max_wall_s}")
        self.machine = machine
        self.max_evaluations = max_evaluations
        self.max_wall_s = max_wall_s
        self.spent_evaluations = 0
        self.spent_wall_s = 0.0
        #: probes refused because the budget would have been exceeded
        self.refused = 0
        #: wall-clock budget window in seconds (None = manual refills only)
        self.refill_window_s: "float | None" = None
        #: completed automatic window rollovers
        self.auto_refills = 0
        self._clock: "Callable[[], float]" = time.monotonic
        self._window_start = 0.0

    # -- budget arithmetic -----------------------------------------------------

    @property
    def remaining_evaluations(self) -> "int | None":
        """Evaluations left in the budget (None = unlimited)."""
        self._auto_refill()
        if self.max_evaluations is None:
            return None
        return max(0, self.max_evaluations - self.spent_evaluations)

    @property
    def remaining_wall_s(self) -> "float | None":
        """Simulated seconds left in the budget (None = unlimited)."""
        self._auto_refill()
        if self.max_wall_s is None:
            return None
        return max(0.0, self.max_wall_s - self.spent_wall_s)

    def _fits(
        self,
        evaluations_left: "int | None",
        wall_left: "float | None",
        instance: StencilInstance,
        tunings: Sequence[TuningVector],
        repeats: int,
    ) -> bool:
        """Whether this batch fits the given allowances (None = unlimited).

        The wall-clock check prices the batch through the machine's cost
        model — cached and noise-free, so repeated pricing of the same
        batch costs dictionary lookups.
        """
        if evaluations_left is not None and len(tunings) > evaluations_left:
            return False
        if wall_left is not None:
            cost = float(
                self.machine.wall_clock_costs(instance, list(tunings), repeats).sum()
            )
            if cost > wall_left + 1e-12:
                return False
        return True

    def affordable(
        self,
        instance: StencilInstance,
        tunings: Sequence[TuningVector],
        repeats: int = 3,
    ) -> bool:
        """Whether measuring this batch fits the *remaining* budget."""
        return self._fits(
            self.remaining_evaluations, self.remaining_wall_s, instance, tunings, repeats
        )

    def ever_affordable(
        self,
        instance: StencilInstance,
        tunings: Sequence[TuningVector],
        repeats: int = 3,
    ) -> bool:
        """Whether this batch could fit a *fresh* (fully refilled) budget.

        Distinguishes "wait for the next refill" from "will never fit":
        consumers use it to drop impossible probes instead of stalling
        head-of-line behind them forever.
        """
        return self._fits(
            self.max_evaluations, self.max_wall_s, instance, tunings, repeats
        )

    def refill(
        self,
        max_evaluations: "int | None" = None,
        max_wall_s: "float | None" = None,
    ) -> None:
        """Reset spent counters for a new collection window.

        New caps may be supplied; omitted ones keep their current value.
        A manual refill also restarts the automatic window, if one is
        armed — "refill now" means "the new window starts now".
        """
        if max_evaluations is not None:
            self.max_evaluations = max_evaluations
        if max_wall_s is not None:
            self.max_wall_s = max_wall_s
        self.spent_evaluations = 0
        self.spent_wall_s = 0.0
        if self.refill_window_s is not None:
            self._window_start = self._clock()

    def refill_every(
        self,
        seconds: "float | None",
        clock: "Callable[[], float] | None" = None,
    ) -> "BudgetedMachine":
        """Arm (or with ``None`` disarm) automatic wall-clock-window refills.

        Once armed, the spent counters reset whenever ``seconds`` of real
        time have passed since the window opened — checked lazily at every
        affordability decision, so no timer thread is involved.  Several
        idle windows collapse into **one** reset (budget never accumulates
        across windows), and the window grid stays aligned to the arming
        instant: a refill at 2.3 windows leaves the next boundary at 3.0,
        not 3.3.

        The accounting contract with all-or-nothing batches: a batch is
        priced, admitted and charged entirely against the window observed
        when its measurement *starts*.  A boundary passing mid-measurement
        takes effect at the next affordability check — an inflight batch
        is never split across windows and never double-refunded.

        ``clock`` defaults to :func:`time.monotonic`; tests inject a fake.
        Arming starts a fresh window with full budget.  Returns ``self``
        so construction can chain: ``BudgetedMachine(m, 100).refill_every(60)``.
        """
        if seconds is None:
            self.refill_window_s = None
            return self
        if seconds <= 0:
            raise ValueError(f"refill window must be positive, got {seconds}")
        if clock is not None:
            self._clock = clock
        self.refill_window_s = float(seconds)
        self._window_start = self._clock()
        self.spent_evaluations = 0
        self.spent_wall_s = 0.0
        return self

    def _auto_refill(self) -> None:
        """Roll the budget window forward if its wall-clock span has passed."""
        if self.refill_window_s is None:
            return
        elapsed = self._clock() - self._window_start
        if elapsed >= self.refill_window_s:
            # advance by whole windows: long idle stretches do not bank
            # multiple budgets, and the boundary grid stays fixed
            windows = int(elapsed // self.refill_window_s)
            self._window_start += windows * self.refill_window_s
            self.spent_evaluations = 0
            self.spent_wall_s = 0.0
            self.auto_refills += 1

    # -- measurement -----------------------------------------------------------

    def measure_batch(
        self,
        instance: StencilInstance,
        tunings: Sequence[TuningVector],
        repeats: int = 3,
    ) -> BatchMeasurement:
        """Measure a batch, charging the budget; raises if it does not fit."""
        result = self.try_measure_batch(instance, tunings, repeats)
        if result is None:
            raise MeasurementBudgetExceeded(
                f"measuring {len(tunings)} tunings (repeats={repeats}) exceeds the "
                f"remaining budget ({self.remaining_evaluations} evaluations, "
                f"{self.remaining_wall_s} simulated s)"
            )
        return result

    def try_measure_batch(
        self,
        instance: StencilInstance,
        tunings: Sequence[TuningVector],
        repeats: int = 3,
    ) -> "BatchMeasurement | None":
        """Measure a batch if the budget allows; ``None`` if it does not.

        All-or-nothing: a batch that does not fit charges nothing (it only
        counts toward :attr:`refused`).
        """
        if not self.affordable(instance, tunings, repeats):
            self.refused += 1
            return None
        wall_before = self.machine.simulated_wall_s
        result = self.machine.measure_batch(instance, list(tunings), repeats=repeats)
        self.spent_evaluations += len(tunings)
        self.spent_wall_s += self.machine.simulated_wall_s - wall_before
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BudgetedMachine(spent={self.spent_evaluations}"
            f"/{self.max_evaluations} evals, "
            f"{self.spent_wall_s:.1f}/{self.max_wall_s} sim s)"
        )
