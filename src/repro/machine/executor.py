"""The simulated machine: measurement front-end over the cost model.

:class:`SimulatedMachine` is the single entry point every other component
uses to "run" a stencil variant.  It mirrors how the paper's testbed is
used by the autotuners:

* ``measure()`` performs a full autotuning **evaluation** — several timed
  runs of one compiled variant — returning the median; it increments the
  evaluation counter that search budgets are charged against;
* ``wall_clock_cost()`` returns the simulated wall-clock seconds such an
  evaluation would have consumed on the real machine (process setup plus
  the timed sweeps), which feeds the time-to-solution accounting of Fig. 5
  and Table II;
* noise-free "true" times are available for analysis (``true_time``) so
  ranking quality can be evaluated against ground truth.

Sweep costs are cached per execution: the cost model is deterministic, so
repeated queries are free — mirroring how a real harness caches binaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cost import CostModel, SweepCost
from repro.machine.noise import NoiseModel
from repro.machine.spec import MachineSpec, XEON_E5_2680_V3
from repro.stencil.execution import StencilExecution
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = ["Measurement", "SimulatedMachine"]


@dataclass(frozen=True)
class Measurement:
    """Result of one autotuning evaluation (several timed runs)."""

    execution: StencilExecution
    times: tuple[float, ...]

    @property
    def time(self) -> float:
        """Median run time in seconds — the value autotuners compare."""
        return float(np.median(self.times))

    @property
    def best(self) -> float:
        """Fastest observed run."""
        return float(min(self.times))

    @property
    def gflops(self) -> float:
        """Sustained GFlop/s at the median time."""
        return self.execution.instance.flops / self.time / 1e9

    def __repr__(self) -> str:
        return (
            f"Measurement({self.execution.instance.label()}, "
            f"t={self.time * 1e3:.3f}ms, {self.gflops:.2f} GFlop/s)"
        )


class SimulatedMachine:
    """Measurement provider shared by training, search and experiments."""

    #: fixed per-evaluation process/setup overhead on the simulated testbed
    SETUP_SECONDS = 0.05
    #: timed sweeps per run (kernels are run repeatedly and averaged)
    SWEEPS_PER_RUN = 5

    def __init__(
        self,
        spec: MachineSpec = XEON_E5_2680_V3,
        noise: NoiseModel | None = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.noise = NoiseModel(seed=seed) if noise is None else noise
        self.cost_model = CostModel(spec)
        self._cost_cache: dict[StencilExecution, SweepCost] = {}
        self.evaluations = 0
        self.simulated_wall_s = 0.0

    # -- core measurement API ------------------------------------------------

    def sweep_cost(self, execution: StencilExecution) -> SweepCost:
        """Cached noise-free cost breakdown."""
        cost = self._cost_cache.get(execution)
        if cost is None:
            cost = self.cost_model.sweep_cost(execution)
            self._cost_cache[execution] = cost
        return cost

    def true_time(self, execution: StencilExecution) -> float:
        """Noise-free seconds per sweep (ground truth for rank evaluation)."""
        return self.sweep_cost(execution).total_s

    def run_time(self, execution: StencilExecution, repeat: int = 0) -> float:
        """One noisy run (does not charge the evaluation budget)."""
        base = self.true_time(execution)
        return base * self.noise.factor(execution.stable_hash(), repeat)

    def measure(self, execution: StencilExecution, repeats: int = 3) -> Measurement:
        """One autotuning evaluation: ``repeats`` timed runs, median reported.

        Charges one unit of evaluation budget and accumulates the simulated
        wall-clock the evaluation would have cost on the real testbed.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        times = tuple(self.run_time(execution, r) for r in range(repeats))
        self.evaluations += 1
        self.simulated_wall_s += self.wall_clock_cost(execution, repeats)
        return Measurement(execution, times)

    def measure_tuning(
        self,
        instance: StencilInstance,
        tuning: TuningVector,
        repeats: int = 3,
    ) -> Measurement:
        """Convenience: measure ``instance`` under ``tuning``."""
        return self.measure(StencilExecution(instance, tuning), repeats)

    def wall_clock_cost(self, execution: StencilExecution, repeats: int = 3) -> float:
        """Simulated testbed seconds for one evaluation of ``execution``."""
        per_run = self.true_time(execution) * self.SWEEPS_PER_RUN
        return self.SETUP_SECONDS + repeats * per_run

    # -- derived conveniences --------------------------------------------------

    def gflops(self, execution: StencilExecution) -> float:
        """Noise-free sustained GFlop/s."""
        return execution.instance.flops / self.true_time(execution) / 1e9

    def true_times(
        self, instance: StencilInstance, tunings: list[TuningVector]
    ) -> np.ndarray:
        """Vector of noise-free times for many tunings of one instance."""
        return np.array(
            [self.true_time(StencilExecution(instance, t)) for t in tunings]
        )

    def best_tuning(
        self, instance: StencilInstance, tunings: list[TuningVector]
    ) -> tuple[TuningVector, float]:
        """Ground-truth best tuning among candidates (oracle, for analysis)."""
        times = self.true_times(instance, tunings)
        idx = int(np.argmin(times))
        return tunings[idx], float(times[idx])

    # -- budget accounting -------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the evaluation counter and simulated wall clock."""
        self.evaluations = 0
        self.simulated_wall_s = 0.0

    def fork(self) -> "SimulatedMachine":
        """A fresh machine sharing spec/noise but with independent counters.

        Search-method comparisons give each algorithm its own fork so budget
        accounting never leaks between competitors, while the underlying
        deterministic timings stay identical.
        """
        clone = SimulatedMachine(self.spec, self.noise)
        clone._cost_cache = self._cost_cache  # deterministic → shareable
        return clone

    def __repr__(self) -> str:
        return (
            f"SimulatedMachine({self.spec.name!r}, evaluations={self.evaluations})"
        )
