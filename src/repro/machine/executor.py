"""The simulated machine: measurement front-end over the cost model.

:class:`SimulatedMachine` is the single entry point every other component
uses to "run" a stencil variant.  It mirrors how the paper's testbed is
used by the autotuners:

* ``measure()`` performs a full autotuning **evaluation** — several timed
  runs of one compiled variant — returning the median; it increments the
  evaluation counter that search budgets are charged against;
* ``measure_batch()`` / ``true_times_batch()`` evaluate *n* tunings of one
  instance through the vectorized cost pipeline
  (:meth:`~repro.machine.cost.CostModel.sweep_costs_batch`) — one NumPy
  pass instead of ``n`` scalar model walks.  Budgets are charged
  identically to ``n`` scalar calls (``evaluations += n``, per-execution
  wall-clock accrued), and noise is drawn from the same per-(execution,
  repeat) streams, so batch and scalar measurements are interchangeable;
* ``wall_clock_cost()`` returns the simulated wall-clock seconds such an
  evaluation would have consumed on the real machine (process setup plus
  the timed sweeps), which feeds the time-to-solution accounting of Fig. 5
  and Table II;
* noise-free "true" times are available for analysis (``true_time``) so
  ranking quality can be evaluated against ground truth.

**When to use scalar vs. batch**: anything that evaluates one variant at a
time (interactive inspection, hill-climbing's single proposals) uses the
scalar calls; anything holding a population, candidate set or training
corpus for one instance should use the batch calls — training-set
generation, preset ranking and the population-based searches all do.

**Caching semantics**: sweep costs are cached per execution *stable hash*
(64-bit, process-stable) — the cost model is deterministic, so repeated
queries are free, mirroring how a real harness caches binaries.  Scalar
and batch paths share the caches: a time computed by either path is
returned verbatim by the other, so mixed usage stays exactly consistent.
The cache is FIFO-bounded (``max_cache_entries``) so corpus-scale training
runs cannot grow it without bound; evicted entries are simply recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.machine.cost import CostModel, SweepCost
from repro.machine.noise import NoiseModel
from repro.machine.spec import MachineSpec, XEON_E5_2680_V3
from repro.stencil.execution import StencilExecution, execution_hashes
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = ["BatchMeasurement", "FifoCache", "Measurement", "SimulatedMachine"]


class FifoCache:
    """A dict-backed cache with optional max-entries FIFO eviction.

    Python dicts preserve insertion order, so the oldest entry is simply
    the first key.  ``max_entries=None`` means unbounded.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._data: dict = {}

    def get(self, key, default=None):
        return self._data.get(key, default)

    def put(self, key, value) -> None:
        if key in self._data:
            self._data[key] = value
            return
        if self.max_entries is not None and len(self._data) >= self.max_entries:
            self._data.pop(next(iter(self._data)))
        self._data[key] = value

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


@dataclass(frozen=True)
class Measurement:
    """Result of one autotuning evaluation (several timed runs)."""

    execution: StencilExecution
    times: tuple[float, ...]

    @property
    def time(self) -> float:
        """Median run time in seconds — the value autotuners compare."""
        return float(np.median(self.times))

    @property
    def best(self) -> float:
        """Fastest observed run."""
        return float(min(self.times))

    @property
    def gflops(self) -> float:
        """Sustained GFlop/s at the median time."""
        return self.execution.instance.flops / self.time / 1e9

    def __repr__(self) -> str:
        return (
            f"Measurement({self.execution.instance.label()}, "
            f"t={self.time * 1e3:.3f}ms, {self.gflops:.2f} GFlop/s)"
        )


@dataclass(frozen=True)
class BatchMeasurement:
    """Result of ``n`` autotuning evaluations of one instance.

    ``times`` is an ``(n, repeats)`` array; row ``i`` holds the timed runs
    of ``tunings[i]`` and matches what ``n`` scalar :class:`Measurement`
    calls would have observed.
    """

    instance: StencilInstance
    tunings: tuple[TuningVector, ...]
    times: np.ndarray

    def __len__(self) -> int:
        return len(self.tunings)

    @property
    def medians(self) -> np.ndarray:
        """Median run time per tuning — what autotuners compare."""
        return np.median(self.times, axis=1)

    @property
    def best(self) -> np.ndarray:
        """Fastest observed run per tuning."""
        return self.times.min(axis=1)

    @property
    def gflops(self) -> np.ndarray:
        """Sustained GFlop/s per tuning at the median time."""
        return self.instance.flops / self.medians / 1e9

    def measurements(self) -> Iterator[Measurement]:
        """Scalar :class:`Measurement` views (compat with scalar consumers)."""
        for tuning, row in zip(self.tunings, self.times):
            yield Measurement(
                StencilExecution(self.instance, tuning),
                tuple(float(t) for t in row),
            )

    def __repr__(self) -> str:
        return (
            f"BatchMeasurement({self.instance.label()}, n={len(self.tunings)}, "
            f"repeats={self.times.shape[1] if self.times.size else 0})"
        )


class SimulatedMachine:
    """Measurement provider shared by training, search and experiments."""

    #: fixed per-evaluation process/setup overhead on the simulated testbed
    SETUP_SECONDS = 0.05
    #: timed sweeps per run (kernels are run repeatedly and averaged)
    SWEEPS_PER_RUN = 5
    #: default FIFO bound on the cost caches (corpus-scale training stays
    #: far below this; the cap only exists so long-lived machines cannot
    #: grow without bound)
    DEFAULT_CACHE_ENTRIES = 262_144

    def __init__(
        self,
        spec: MachineSpec = XEON_E5_2680_V3,
        noise: NoiseModel | None = None,
        seed: int = 0,
        max_cache_entries: int | None = DEFAULT_CACHE_ENTRIES,
    ) -> None:
        self.spec = spec
        self.noise = NoiseModel(seed=seed) if noise is None else noise
        self.cost_model = CostModel(spec)
        #: stable_hash -> SweepCost (scalar path's full breakdowns)
        self._cost_cache = FifoCache(max_cache_entries)
        #: stable_hash -> total_s (shared by scalar and batch paths)
        self._time_cache = FifoCache(max_cache_entries)
        self.evaluations = 0
        self.simulated_wall_s = 0.0

    # -- core measurement API ------------------------------------------------

    def sweep_cost(self, execution: StencilExecution) -> SweepCost:
        """Cached noise-free cost breakdown."""
        key = execution.stable_hash()
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = self.cost_model.sweep_cost(execution)
            self._cost_cache.put(key, cost)
            self._time_cache.put(key, cost.total_s)
        return cost

    def true_time(self, execution: StencilExecution) -> float:
        """Noise-free seconds per sweep (ground truth for rank evaluation)."""
        t = self._time_cache.get(execution.stable_hash())
        if t is not None:
            return t
        return self.sweep_cost(execution).total_s

    def run_time(self, execution: StencilExecution, repeat: int = 0) -> float:
        """One noisy run (does not charge the evaluation budget)."""
        base = self.true_time(execution)
        return base * self.noise.factor(execution.stable_hash(), repeat)

    def measure(self, execution: StencilExecution, repeats: int = 3) -> Measurement:
        """One autotuning evaluation: ``repeats`` timed runs, median reported.

        Charges one unit of evaluation budget and accumulates the simulated
        wall-clock the evaluation would have cost on the real testbed.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        times = tuple(self.run_time(execution, r) for r in range(repeats))
        self.evaluations += 1
        self.simulated_wall_s += self.wall_clock_cost(execution, repeats)
        return Measurement(execution, times)

    def measure_tuning(
        self,
        instance: StencilInstance,
        tuning: TuningVector,
        repeats: int = 3,
    ) -> Measurement:
        """Convenience: measure ``instance`` under ``tuning``."""
        return self.measure(StencilExecution(instance, tuning), repeats)

    def wall_clock_cost(self, execution: StencilExecution, repeats: int = 3) -> float:
        """Simulated testbed seconds for one evaluation of ``execution``."""
        per_run = self.true_time(execution) * self.SWEEPS_PER_RUN
        return self.SETUP_SECONDS + repeats * per_run

    # -- batch measurement API -------------------------------------------------

    def true_times_batch(
        self,
        instance: StencilInstance,
        tunings: Sequence[TuningVector],
        hashes: "Sequence[int] | None" = None,
    ) -> np.ndarray:
        """Noise-free times for ``n`` tunings of one instance, one model pass.

        Cache-aware per tuning: hits (from either the scalar or a previous
        batch path) are returned verbatim; only the misses go through the
        vectorized cost model, and their times are cached for both paths.
        """
        if hashes is None:
            hashes = execution_hashes(instance, tunings)
        out = np.empty(len(tunings))
        missing: list[int] = []
        for i, h in enumerate(hashes):
            t = self._time_cache.get(h)
            if t is None:
                cost = self._cost_cache.get(h)
                t = None if cost is None else cost.total_s
            if t is None:
                missing.append(i)
            else:
                out[i] = t
        if missing:
            batch = self.cost_model.sweep_costs_batch(
                instance, [tunings[i] for i in missing]
            )
            for i, total in zip(missing, batch.total_s):
                t = float(total)
                out[i] = t
                self._time_cache.put(hashes[i], t)
        return out

    def measure_batch(
        self,
        instance: StencilInstance,
        tunings: Sequence[TuningVector],
        repeats: int = 3,
        hashes: "Sequence[int] | None" = None,
    ) -> BatchMeasurement:
        """``n`` autotuning evaluations in one vectorized pass.

        Budgets are charged exactly as ``n`` scalar :meth:`measure` calls:
        ``evaluations`` grows by ``n`` and the simulated wall-clock accrues
        setup plus timed sweeps per execution.  Noise is seeded per
        (execution hash, repeat), so ``times[i]`` equals the scalar
        measurement of ``tunings[i]``.  ``hashes`` may carry precomputed
        :func:`execution_hashes` to avoid re-digesting in hot loops.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        if hashes is None:
            hashes = execution_hashes(instance, tunings)
        base = self.true_times_batch(instance, tunings, hashes=hashes)
        factors = self.noise.factors(hashes, repeats)
        times = base[:, np.newaxis] * factors
        self.evaluations += len(tunings)
        per_run = base * self.SWEEPS_PER_RUN
        self.simulated_wall_s += float(
            np.sum(self.SETUP_SECONDS + repeats * per_run)
        )
        return BatchMeasurement(instance, tuple(tunings), times)

    def wall_clock_costs(
        self,
        instance: StencilInstance,
        tunings: Sequence[TuningVector],
        repeats: int = 3,
        hashes: "Sequence[int] | None" = None,
    ) -> np.ndarray:
        """Per-execution simulated testbed seconds for a batch of tunings."""
        per_run = (
            self.true_times_batch(instance, tunings, hashes=hashes)
            * self.SWEEPS_PER_RUN
        )
        return self.SETUP_SECONDS + repeats * per_run

    # -- derived conveniences --------------------------------------------------

    def gflops(self, execution: StencilExecution) -> float:
        """Noise-free sustained GFlop/s."""
        return execution.instance.flops / self.true_time(execution) / 1e9

    def true_times(
        self, instance: StencilInstance, tunings: Sequence[TuningVector]
    ) -> np.ndarray:
        """Vector of noise-free times for many tunings of one instance."""
        return self.true_times_batch(instance, list(tunings))

    def best_tuning(
        self, instance: StencilInstance, tunings: Sequence[TuningVector]
    ) -> tuple[TuningVector, float]:
        """Ground-truth best tuning among candidates (oracle, for analysis)."""
        times = self.true_times(instance, tunings)
        idx = int(np.argmin(times))
        return tunings[idx], float(times[idx])

    # -- budget accounting -------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the evaluation counter and simulated wall clock."""
        self.evaluations = 0
        self.simulated_wall_s = 0.0

    def fork(self) -> "SimulatedMachine":
        """A fresh machine sharing spec/noise but with independent counters.

        Search-method comparisons give each algorithm its own fork so budget
        accounting never leaks between competitors, while the underlying
        deterministic timings stay identical (the cost caches are shared —
        the model is deterministic, so sharing is safe).
        """
        clone = SimulatedMachine(self.spec, self.noise)
        clone._cost_cache = self._cost_cache  # deterministic → shareable
        clone._time_cache = self._time_cache
        return clone

    def __repr__(self) -> str:
        return (
            f"SimulatedMachine({self.spec.name!r}, evaluations={self.evaluations})"
        )
