"""Layer-condition cache-traffic analysis.

For a blocked stencil sweep the memory traffic per updated point depends on
how much of the stencil's reuse the cache hierarchy captures.  The classic
*layer condition* analysis (Stengel et al., the paper's ref. [17]) gives
three regimes per input buffer, evaluated against a cache of capacity *C*:

1. **Plane reuse** — the cache holds all ``P_z`` x/y-planes the pattern
   touches (each of ``(bx + 2rx)(by + 2ry)`` points).  Every input point is
   loaded once: traffic factor 1.
2. **Row reuse** — planes spill, but the ``P_z · P_y`` current rows fit.
   Each plane is re-fetched once per distinct z-offset: factor ``P_z``.
3. **No reuse** — even the rows spill; every distinct (y, z) offset misses:
   factor ``P_z · P_y`` (x-direction reuse inside a cache line survives
   regardless, so the factor never exceeds the number of touched rows).

Real caches do not switch regimes at a hard boundary (associativity
conflicts, prefetching and fragmentation smear the transition), so the
factors are blended with a logistic ramp in ``log(working set / capacity)``.
That smoothing also gives the tuning landscape realistic rounded ridges
instead of cliffs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.spec import MachineSpec
from repro.stencil.kernel import StencilKernel
from repro.stencil.pattern import StencilPattern

__all__ = ["BatchTrafficReport", "TrafficModel", "TrafficReport"]


def _logistic_excess(working_set, capacity, width: float = 0.35):
    """0 → working set far below capacity, 1 → far above (log-space ramp).

    Accepts scalars or arrays (any broadcastable mix); returns a ``float``
    for all-scalar input and an array otherwise.  The array path applies the
    identical formula elementwise, which is what lets the batch traffic
    analysis evaluate the layer-condition regime blend for every tuning in
    one pass.
    """
    scalar = np.ndim(working_set) == 0 and np.ndim(capacity) == 0
    cap = np.asarray(capacity, dtype=float)
    ws = np.maximum(np.asarray(working_set, dtype=float), 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        x = np.log(ws / cap) / width
        ramp = 1.0 / (1.0 + np.exp(-x))
    out = np.where(cap > 0, ramp, 1.0)
    return float(out) if scalar else out


@dataclass(frozen=True)
class TrafficReport:
    """Bytes moved per updated grid point, per hierarchy boundary.

    ``dram_bytes`` is the DRAM↔L3 traffic that the bandwidth model consumes;
    ``level_bytes`` maps each cache level name to the bytes crossing the
    boundary *below* it (L1 → registers etc.), used for the in-cache ECM
    contribution.
    """

    dram_bytes: float
    level_bytes: dict[str, float]
    buffer_factors: tuple[float, ...]

    @property
    def total_factor(self) -> float:
        """Sum of per-buffer DRAM traffic factors (diagnostic)."""
        return float(sum(self.buffer_factors))


@dataclass(frozen=True)
class BatchTrafficReport:
    """Struct-of-arrays :class:`TrafficReport` for ``n`` tunings at once.

    ``dram_bytes`` is ``(n,)``; ``level_bytes`` maps each cache level name
    to an ``(n,)`` array; ``buffer_factors`` is ``(n, num_buffers)``.
    """

    dram_bytes: np.ndarray
    level_bytes: dict[str, np.ndarray]
    buffer_factors: np.ndarray

    def __len__(self) -> int:
        return len(self.dram_bytes)


class TrafficModel:
    """Computes per-point traffic for a blocked sweep on a given machine."""

    #: write-allocate + write-back for the output grid (bytes = 2 × itemsize)
    OUTPUT_STREAMS = 2.0

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    # -- per-buffer analysis -------------------------------------------------

    @staticmethod
    def pattern_planes(pattern: StencilPattern) -> tuple[int, int]:
        """(P_z, P_y): distinct z-planes and distinct y-rows per plane."""
        p_z = pattern.planes(axis=2)
        # max over z-planes of the number of distinct y offsets in the plane
        rows_per_plane: dict[int, set[int]] = {}
        for (dx, dy, dz) in pattern.offsets:
            rows_per_plane.setdefault(dz, set()).add(dy)
        p_y = max(len(rows) for rows in rows_per_plane.values())
        return p_z, p_y

    def buffer_factor(
        self,
        pattern: StencilPattern,
        eff_block: tuple[int, int, int],
        itemsize: int,
        capacity_bytes: float,
    ) -> float:
        """Traffic factor (loads per point) for one buffer at one cache level."""
        bx, by, bz = eff_block
        rx, ry, rz = pattern.extent
        p_z, p_y = self.pattern_planes(pattern)

        # working set needed for full plane reuse within the tile traversal
        ws_planes = p_z * (by + 2 * ry) * (bx + 2 * rx) * itemsize
        # working set needed for row reuse
        ws_rows = p_z * p_y * (bx + 2 * rx) * itemsize

        spill_planes = _logistic_excess(ws_planes, capacity_bytes)
        spill_rows = _logistic_excess(ws_rows, capacity_bytes)

        f_best, f_mid, f_worst = 1.0, float(p_z), float(p_z * p_y)
        factor = (
            (1.0 - spill_planes) * f_best
            + spill_planes * (1.0 - spill_rows) * f_mid
            + spill_planes * spill_rows * f_worst
        )
        return factor

    def halo_overfetch(
        self,
        pattern: StencilPattern,
        eff_block: tuple[int, int, int],
        itemsize: int,
        line_bytes: int,
    ) -> float:
        """Redundant-traffic multiplier from tile halos and cache-line grain.

        Small tiles fetch their halo regions redundantly (neighbouring tiles
        re-load them) and waste partial cache lines on the unit-stride axis:
        a ``bx = 4`` double tile touches whole 64-byte lines to use 32 bytes.
        The y/z halo terms are damped by half because adjacent tiles often
        find each other's halo rows still cached.
        """
        bx, by, bz = eff_block
        rx, ry, rz = pattern.extent
        row_bytes = (bx + 2 * rx) * itemsize
        lines = np.ceil(row_bytes / line_bytes) * line_bytes
        x_factor = float(lines / max(bx * itemsize, 1))
        y_factor = 1.0 + (ry / by if by > 0 else 0.0)
        z_factor = 1.0 + (rz / bz if bz > 0 else 0.0)
        return x_factor * y_factor * z_factor

    # -- whole-kernel analysis -------------------------------------------------

    def analyze(
        self,
        kernel: StencilKernel,
        eff_block: tuple[int, int, int],
        threads: int,
        grid_points: int | None = None,
    ) -> TrafficReport:
        """Per-point traffic for the kernel at every hierarchy boundary.

        The outermost (last) cache level's factors determine DRAM traffic;
        inner levels use their own (smaller) capacities, so a block that fits
        L3 but not L2 still pays L2-boundary refills — exactly the ECM view.
        All input streams plus the output stream compete for capacity, so
        each buffer sees only a share of the level.

        If ``grid_points`` is given, the *whole-problem footprint* is checked
        against the last-level cache: grids that fit in L3 stop producing
        DRAM traffic after the first sweep (the measurement loop runs several
        sweeps back to back), which is why small 2-D benchmarks like
        ``edge 512²`` are compute-bound on the real machine.
        """
        itemsize = kernel.dtype.itemsize
        streams = kernel.num_buffers + 0.5  # inputs + (half-weighted) output
        level_bytes: dict[str, float] = {}
        dram_factors: tuple[float, ...] = ()

        for level in self.spec.caches:
            capacity = float(level.effective_capacity(threads))
            capacity *= 0.8 / streams
            factors = tuple(
                self.buffer_factor(p, eff_block, itemsize, capacity)
                for p in kernel.buffer_patterns
            )
            bytes_in = sum(factors) * itemsize
            extra = kernel.extra_point_reads * itemsize
            level_bytes[level.name] = bytes_in + extra + self.OUTPUT_STREAMS * itemsize
            dram_factors = factors

        # tile-boundary redundancy only matters at the DRAM boundary
        last = self.spec.caches[-1]
        overfetch = tuple(
            self.halo_overfetch(p, eff_block, itemsize, last.line_bytes)
            for p in kernel.buffer_patterns
        )
        dram_in = sum(f * o for f, o in zip(dram_factors, overfetch)) * itemsize
        dram_bytes = (
            dram_in
            + kernel.extra_point_reads * itemsize
            + self.OUTPUT_STREAMS * itemsize
        )

        if grid_points is not None:
            footprint = (kernel.num_buffers + 1) * grid_points * itemsize
            llc = float(last.size_bytes)
            spill = _logistic_excess(footprint, llc * 0.9, width=0.25)
            # compulsory first-sweep traffic keeps a floor under the factor
            dram_bytes *= max(spill, 0.15)

        level_bytes[last.name] = dram_bytes
        return TrafficReport(
            dram_bytes=dram_bytes,
            level_bytes=level_bytes,
            buffer_factors=dram_factors,
        )

    # -- batch analysis --------------------------------------------------------

    def buffer_factor_batch(
        self,
        pattern: StencilPattern,
        bx: np.ndarray,
        by: np.ndarray,
        itemsize: int,
        capacity_bytes,
    ) -> np.ndarray:
        """Vectorized :meth:`buffer_factor`: ``(n,)`` factors for one buffer.

        ``capacity_bytes`` may be scalar (private levels) or ``(n,)``
        (shared levels divided by the per-tuning thread count).
        """
        rx, ry, rz = pattern.extent
        p_z, p_y = self.pattern_planes(pattern)

        ws_planes = p_z * (by + 2 * ry) * (bx + 2 * rx) * itemsize
        ws_rows = p_z * p_y * (bx + 2 * rx) * itemsize

        spill_planes = _logistic_excess(ws_planes, capacity_bytes)
        spill_rows = _logistic_excess(ws_rows, capacity_bytes)

        f_best, f_mid, f_worst = 1.0, float(p_z), float(p_z * p_y)
        return (
            (1.0 - spill_planes) * f_best
            + spill_planes * (1.0 - spill_rows) * f_mid
            + spill_planes * spill_rows * f_worst
        )

    def halo_overfetch_batch(
        self,
        pattern: StencilPattern,
        bx: np.ndarray,
        by: np.ndarray,
        bz: np.ndarray,
        itemsize: int,
        line_bytes: int,
    ) -> np.ndarray:
        """Vectorized :meth:`halo_overfetch`: ``(n,)`` multipliers."""
        rx, ry, rz = pattern.extent
        row_bytes = (bx + 2 * rx) * itemsize
        lines = np.ceil(row_bytes / line_bytes) * line_bytes
        x_factor = lines / np.maximum(bx * itemsize, 1)
        y_factor = 1.0 + ry / by
        z_factor = 1.0 + rz / bz
        return x_factor * y_factor * z_factor

    def analyze_batch(
        self,
        kernel: StencilKernel,
        eff_blocks: np.ndarray,
        threads: np.ndarray,
        grid_points: int | None = None,
    ) -> BatchTrafficReport:
        """Vectorized :meth:`analyze` over ``(n, 3)`` effective blocks.

        One NumPy pass per (cache level × buffer pattern) instead of one
        Python call per tuning; semantics — including the shared-capacity
        division by the per-tuning thread count and the whole-problem
        footprint check — match the scalar path to float rounding.
        """
        eb = np.asarray(eff_blocks, dtype=np.int64)
        threads = np.asarray(threads, dtype=np.int64)
        bx, by, bz = eb[:, 0], eb[:, 1], eb[:, 2]

        itemsize = kernel.dtype.itemsize
        streams = kernel.num_buffers + 0.5
        level_bytes: dict[str, np.ndarray] = {}
        dram_factors: list[np.ndarray] = []

        for level in self.spec.caches:
            if level.shared:
                capacity = (level.size_bytes // np.maximum(threads, 1)).astype(float)
            else:
                capacity = float(level.size_bytes)
            capacity = capacity * (0.8 / streams)
            factors = [
                self.buffer_factor_batch(p, bx, by, itemsize, capacity)
                for p in kernel.buffer_patterns
            ]
            bytes_in = sum(factors) * itemsize
            extra = kernel.extra_point_reads * itemsize
            level_bytes[level.name] = bytes_in + extra + self.OUTPUT_STREAMS * itemsize
            dram_factors = factors

        last = self.spec.caches[-1]
        dram_in = sum(
            f * self.halo_overfetch_batch(p, bx, by, bz, itemsize, last.line_bytes)
            for f, p in zip(dram_factors, kernel.buffer_patterns)
        ) * itemsize
        dram_bytes = (
            dram_in
            + kernel.extra_point_reads * itemsize
            + self.OUTPUT_STREAMS * itemsize
        )

        if grid_points is not None:
            footprint = (kernel.num_buffers + 1) * grid_points * itemsize
            llc = float(last.size_bytes)
            spill = _logistic_excess(footprint, llc * 0.9, width=0.25)
            dram_bytes = dram_bytes * max(spill, 0.15)

        level_bytes[last.name] = dram_bytes
        return BatchTrafficReport(
            dram_bytes=dram_bytes,
            level_bytes=level_bytes,
            buffer_factors=np.column_stack(dram_factors),
        )
