"""Machine specifications.

:data:`XEON_E5_2680_V3` mirrors the paper's evaluation platform: a
12-core Haswell-EP at 2.5 GHz with AVX2 (256-bit vectors, FMA), 32 KB L1d /
256 KB L2 per core, a 30 MB shared L3, and four DDR4-2133 channels.

The spec also carries *behavioral* calibration constants (code-generation
efficiency, loop and scheduling overheads).  Absolute times produced by the
model are not meant to match the authors' silicon — the reproduction
compares performance *shapes* — but the constants are chosen so GFlop/s
magnitudes land in the ranges the paper's Fig. 5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stencil.kernel import DType
from repro.util.validation import check_positive

__all__ = ["CacheLevel", "MachineSpec", "XEON_E5_2680_V3"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    ``size_bytes`` is the total capacity of the unit (per-core for private
    levels, whole-chip for shared ones); ``bandwidth_gbs`` is the sustained
    bandwidth *per core* to the next-closer level.
    """

    name: str
    size_bytes: int
    line_bytes: int = 64
    shared: bool = False
    bandwidth_gbs: float = 100.0

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_positive("line_bytes", self.line_bytes)
        check_positive("bandwidth_gbs", self.bandwidth_gbs)

    def effective_capacity(self, threads: int) -> int:
        """Capacity available to one thread (shared levels are divided)."""
        if self.shared:
            return self.size_bytes // max(threads, 1)
        return self.size_bytes


@dataclass(frozen=True)
class MachineSpec:
    """Complete description of the simulated machine."""

    name: str
    cores: int
    freq_ghz: float
    simd_bytes: int = 32  # AVX2: 256-bit vectors
    fma_ports: int = 2
    load_ports: int = 2
    caches: tuple[CacheLevel, ...] = field(default_factory=tuple)
    #: sustained DRAM bandwidth with all cores streaming (GB/s)
    mem_bandwidth_gbs: float = 52.0
    #: sustained DRAM bandwidth of a single core (GB/s)
    mem_bandwidth_single_gbs: float = 11.0
    #: fraction of theoretical core throughput that generated stencil code
    #: actually sustains (address arithmetic, imperfect scheduling, ...)
    codegen_efficiency: float = 0.12
    #: overhead per dynamically scheduled OpenMP chunk (microseconds)
    chunk_overhead_us: float = 0.35
    #: one-time parallel-region fork/join overhead (microseconds)
    parallel_overhead_us: float = 6.0
    #: per-(y,z)-row loop start/stop cost (cycles)
    row_overhead_cycles: float = 9.0
    #: per-tile prologue/epilogue cost (cycles)
    tile_overhead_cycles: float = 160.0
    #: number of architectural vector registers (register-pressure model)
    vector_registers: int = 16

    def __post_init__(self) -> None:
        check_positive("cores", self.cores)
        check_positive("freq_ghz", self.freq_ghz)
        check_positive("simd_bytes", self.simd_bytes)
        if len(self.caches) < 1:
            raise ValueError("a machine needs at least one cache level")

    # -- derived quantities -------------------------------------------------

    def lanes(self, dtype: DType | str) -> int:
        """SIMD lanes for the scalar type (8 float / 4 double for AVX2)."""
        return self.simd_bytes // DType.parse(dtype).itemsize

    def peak_flops_per_cycle(self, dtype: DType | str) -> float:
        """Per-core peak: FMA ports × lanes × 2 flops."""
        return self.fma_ports * self.lanes(dtype) * 2.0

    def peak_gflops(self, dtype: DType | str, cores: int | None = None) -> float:
        """Chip peak GFlop/s for ``cores`` cores (default: all)."""
        n = self.cores if cores is None else cores
        return self.peak_flops_per_cycle(dtype) * self.freq_ghz * n

    def mem_bandwidth(self, threads):
        """Sustained DRAM bandwidth (GB/s) for ``threads`` streaming cores.

        A standard saturation curve: bandwidth rises with core count and
        saturates near the chip limit (a single core cannot saturate DDR4).
        Accepts a scalar thread count (returns ``float``) or an ``(n,)``
        array of per-tuning thread counts (returns an array) — the batch
        cost pipeline uses the latter.
        """
        b_inf = self.mem_bandwidth_gbs
        b_one = self.mem_bandwidth_single_gbs
        # hyperbolic saturation through (1, b_one) with asymptote b_inf
        k = b_one / (b_inf - b_one) if b_inf > b_one else 1e9
        if np.ndim(threads) == 0:
            t = max(1, min(threads, self.cores))
            return b_inf * (k * t) / (1.0 + k * t)
        t = np.clip(np.asarray(threads), 1, self.cores)
        return b_inf * (k * t) / (1.0 + k * t)

    def cycle_time_s(self) -> float:
        """Seconds per cycle."""
        return 1e-9 / self.freq_ghz

    def cache(self, name: str) -> CacheLevel:
        """Look up a cache level by name (e.g. ``"L2"``)."""
        for level in self.caches:
            if level.name == name:
                return level
        raise KeyError(name)


#: The paper's evaluation platform (Intel Xeon E5-2680 v3, Haswell-EP).
XEON_E5_2680_V3 = MachineSpec(
    name="Intel Xeon E5-2680 v3",
    cores=12,
    freq_ghz=2.5,
    caches=(
        CacheLevel("L1", 32 * 1024, shared=False, bandwidth_gbs=130.0),
        CacheLevel("L2", 256 * 1024, shared=False, bandwidth_gbs=60.0),
        CacheLevel("L3", 30 * 1024 * 1024, shared=True, bandwidth_gbs=30.0),
    ),
)
