"""Simulated execution substrate (replaces the paper's Xeon E5-2680 v3 testbed).

The reproduction cannot run PATUS-generated AVX binaries on the paper's
hardware, so this package provides an analytical performance model with the
same *landscape structure* a real machine exposes to the autotuner:

* an execution-cache-memory (ECM-style) cost composition of compute and
  memory phases (Stengel et al., cited as [17] in the paper);
* **layer-condition** cache analysis — loop-blocking changes per-point
  memory traffic in the classic three-regime way (planes fit / rows fit /
  nothing fits), producing the tile-size sweet spots blocking exists for;
* a SIMD/unroll model — vector remainder losses for small innermost blocks,
  instruction-level-parallelism gains from unrolling with a
  register-pressure penalty that grows with the stencil's live-value count;
* an OpenMP scheduling model — chunking trades per-chunk dispatch overhead
  against load imbalance, with an under-subscription cliff when there are
  fewer tiles than cores;
* reproducible measurement noise (log-normal, seeded per execution).

All simulated "measurements" flow through :class:`SimulatedMachine`, which
also counts evaluations so search budgets are accounted exactly like
iterative compilation runs in the paper.

Every model exposes the same physics through two paths: a **scalar** path
(one execution at a time, full diagnostic reports — the oracle) and a
**batch** path (``sweep_costs_batch`` / ``measure_batch`` /
``true_times_batch``) that evaluates *n* tunings of one instance in a
single vectorized NumPy pass.  Training-set generation, preset ranking and
the population-based searches run on the batch path; its results are
pinned against the scalar oracle to ≤1e-12 relative error by the
equivalence test suite.  Costs are cached per execution stable-hash with a
FIFO bound; scalar and batch share the cache, so mixing the paths on one
machine never produces two different times for the same execution.
"""

from repro.machine.spec import CacheLevel, MachineSpec, XEON_E5_2680_V3
from repro.machine.cache import BatchTrafficReport, TrafficModel, TrafficReport
from repro.machine.simd import SimdModel
from repro.machine.threads import BatchScheduleReport, ScheduleModel, ScheduleReport
from repro.machine.cost import BatchSweepCost, CostModel, SweepCost
from repro.machine.noise import NoiseModel
from repro.machine.executor import (
    BatchMeasurement,
    FifoCache,
    Measurement,
    SimulatedMachine,
)
from repro.machine.budget import BudgetedMachine, MeasurementBudgetExceeded

__all__ = [
    "BatchMeasurement",
    "BudgetedMachine",
    "MeasurementBudgetExceeded",
    "BatchScheduleReport",
    "BatchSweepCost",
    "BatchTrafficReport",
    "CacheLevel",
    "CostModel",
    "FifoCache",
    "MachineSpec",
    "Measurement",
    "NoiseModel",
    "ScheduleModel",
    "ScheduleReport",
    "SimdModel",
    "SimulatedMachine",
    "SweepCost",
    "TrafficModel",
    "TrafficReport",
    "XEON_E5_2680_V3",
]
