"""Simulated execution substrate (replaces the paper's Xeon E5-2680 v3 testbed).

The reproduction cannot run PATUS-generated AVX binaries on the paper's
hardware, so this package provides an analytical performance model with the
same *landscape structure* a real machine exposes to the autotuner:

* an execution-cache-memory (ECM-style) cost composition of compute and
  memory phases (Stengel et al., cited as [17] in the paper);
* **layer-condition** cache analysis — loop-blocking changes per-point
  memory traffic in the classic three-regime way (planes fit / rows fit /
  nothing fits), producing the tile-size sweet spots blocking exists for;
* a SIMD/unroll model — vector remainder losses for small innermost blocks,
  instruction-level-parallelism gains from unrolling with a
  register-pressure penalty that grows with the stencil's live-value count;
* an OpenMP scheduling model — chunking trades per-chunk dispatch overhead
  against load imbalance, with an under-subscription cliff when there are
  fewer tiles than cores;
* reproducible measurement noise (log-normal, seeded per execution).

All simulated "measurements" flow through :class:`SimulatedMachine`, which
also counts evaluations so search budgets are accounted exactly like
iterative compilation runs in the paper.
"""

from repro.machine.spec import CacheLevel, MachineSpec, XEON_E5_2680_V3
from repro.machine.cache import TrafficModel, TrafficReport
from repro.machine.simd import SimdModel
from repro.machine.threads import ScheduleModel, ScheduleReport
from repro.machine.cost import CostModel, SweepCost
from repro.machine.noise import NoiseModel
from repro.machine.executor import Measurement, SimulatedMachine

__all__ = [
    "CacheLevel",
    "CostModel",
    "MachineSpec",
    "Measurement",
    "NoiseModel",
    "ScheduleModel",
    "ScheduleReport",
    "SimdModel",
    "SimulatedMachine",
    "SweepCost",
    "TrafficModel",
    "TrafficReport",
    "XEON_E5_2680_V3",
]
