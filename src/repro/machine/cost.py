"""ECM-style cost composition: one sweep's simulated execution time.

The node-level time of a blocked, threaded stencil sweep is composed as

``T_sweep = max(T_core, T_L2, T_L3, T_DRAM) · imbalance + T_overheads``

where ``T_core`` comes from the SIMD/unroll model, the transfer terms from
the layer-condition traffic model with per-level bandwidths, and imbalance /
scheduling overhead from the chunking model.  The ``max`` expresses the
bottleneck view of the execution-cache-memory model: a memory-bound stencil
(e.g. the 7-point double-precision Laplacian at 256³) is insensitive to
unrolling but very sensitive to blocking, while a compute-bound one (e.g.
tricubic's 4×4×4 cube, 66 reads/point) behaves the other way around — the
qualitative structure the paper's benchmarks exhibit.

Two evaluation paths share the same composition:

* the **scalar** path (:meth:`CostModel.sweep_cost`) builds a full
  :class:`SweepCost` with nested schedule/traffic reports for one
  execution — the oracle, and the right tool when a single variant's
  breakdown is being inspected;
* the **batch** path (:meth:`CostModel.sweep_costs_batch`) evaluates *n*
  tunings of one instance in a single vectorized NumPy pass, returning a
  struct-of-arrays :class:`BatchSweepCost`.  This is what makes large
  training corpora, preset ranking (8640 candidates) and population-based
  search cheap; it is tested against the scalar oracle to ≤1e-12 relative
  error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.machine.cache import TrafficModel, TrafficReport
from repro.machine.simd import SimdModel
from repro.machine.spec import MachineSpec, XEON_E5_2680_V3
from repro.machine.threads import ScheduleModel, ScheduleReport
from repro.stencil.execution import StencilExecution
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = ["BatchSweepCost", "CostModel", "SweepCost"]


@dataclass(frozen=True)
class SweepCost:
    """Breakdown of one sweep's noise-free execution time (seconds)."""

    t_core: float
    t_l2: float
    t_l3: float
    t_dram: float
    schedule: ScheduleReport
    traffic: TrafficReport
    total_s: float

    @property
    def bottleneck(self) -> str:
        """Which term dominates the node-level time."""
        terms = {
            "core": self.t_core,
            "L2": self.t_l2,
            "L3": self.t_l3,
            "dram": self.t_dram,
        }
        return max(terms, key=terms.__getitem__)

    @property
    def memory_bound(self) -> bool:
        """True iff a transfer term (not the core) dominates."""
        return self.bottleneck != "core"


_BOTTLENECK_NAMES = ("core", "L2", "L3", "dram")


@dataclass(frozen=True)
class BatchSweepCost:
    """Struct-of-arrays cost breakdown for ``n`` tunings of one instance.

    Every field is an ``(n,)`` float array; row ``i`` corresponds to the
    scalar :class:`SweepCost` of tuning ``i``.  The full schedule/traffic
    reports are intentionally not materialized per row — consumers that
    need them should use the scalar path.
    """

    t_core: np.ndarray
    t_l2: np.ndarray
    t_l3: np.ndarray
    t_dram: np.ndarray
    imbalance: np.ndarray
    overhead_s: np.ndarray
    threads_used: np.ndarray
    total_s: np.ndarray

    def __len__(self) -> int:
        return len(self.total_s)

    @property
    def bottlenecks(self) -> list[str]:
        """Dominating term per tuning (ties resolve like the scalar path)."""
        stacked = np.stack([self.t_core, self.t_l2, self.t_l3, self.t_dram])
        return [_BOTTLENECK_NAMES[i] for i in np.argmax(stacked, axis=0)]

    @property
    def memory_bound(self) -> np.ndarray:
        """Boolean mask: True where a transfer term dominates."""
        stacked = np.stack([self.t_core, self.t_l2, self.t_l3, self.t_dram])
        return np.argmax(stacked, axis=0) != 0


class CostModel:
    """Noise-free sweep-time model for a given machine specification."""

    def __init__(self, spec: MachineSpec = XEON_E5_2680_V3) -> None:
        self.spec = spec
        self.traffic_model = TrafficModel(spec)
        self.simd_model = SimdModel(spec)
        self.schedule_model = ScheduleModel(spec)

    def sweep_cost(self, execution: StencilExecution) -> SweepCost:
        """Full cost breakdown for one Jacobi sweep of ``execution``."""
        spec = self.spec
        inst = execution.instance
        kernel = inst.kernel
        tuning = execution.tuning

        eff_block = execution.effective_block
        ebx, eby, ebz = eff_block
        tile_points = max(ebx * eby * ebz, 1)
        sched = self.schedule_model.schedule(execution.num_tiles, tuning.chunk)
        threads = sched.threads_used

        # --- in-core compute --------------------------------------------
        cycles = self.simd_model.cycles_per_point(kernel, ebx, tuning.unroll)
        cycles += spec.row_overhead_cycles / ebx
        cycles += spec.tile_overhead_cycles / tile_points
        t_core = inst.num_points * cycles * spec.cycle_time_s() / threads

        # --- cache / memory transfers ------------------------------------
        traffic = self.traffic_model.analyze(
            kernel, eff_block, threads, grid_points=inst.num_points
        )
        n = inst.num_points
        # bytes crossing each boundary: L1 misses are served by L2, etc.
        l2_bw = spec.cache("L2").bandwidth_gbs * 1e9 * threads
        l3_bw = spec.cache("L3").bandwidth_gbs * 1e9 * threads
        t_l2 = n * traffic.level_bytes["L1"] / l2_bw
        t_l3 = n * traffic.level_bytes["L2"] / l3_bw
        t_dram = n * traffic.level_bytes["L3"] / (spec.mem_bandwidth(threads) * 1e9)

        t_node = max(t_core, t_l2, t_l3, t_dram)
        total = t_node * sched.imbalance + sched.overhead_s
        return SweepCost(
            t_core=t_core,
            t_l2=t_l2,
            t_l3=t_l3,
            t_dram=t_dram,
            schedule=sched,
            traffic=traffic,
            total_s=total,
        )

    def sweep_costs_batch(
        self, instance: StencilInstance, tunings: Sequence[TuningVector]
    ) -> BatchSweepCost:
        """Cost breakdowns for ``n`` tunings of ``instance``, one NumPy pass.

        Mirrors :meth:`sweep_cost` term by term over ``(n,)`` arrays; the
        scalar path stays the tested oracle.  Raises like the scalar
        constructor path for 2-D instances with ``bz != 1``.
        """
        spec = self.spec
        kernel = instance.kernel
        sx, sy, sz = instance.size

        raw = np.array([t.as_tuple() for t in tunings], dtype=np.int64).reshape(-1, 5)
        bx, by, bz, unroll, chunk = raw.T
        if instance.dims == 2 and raw.size and int(bz.max()) != 1:
            raise ValueError(
                f"2-D execution requires bz = 1, got bz = {int(bz.max())}"
            )

        ebx = np.minimum(bx, sx)
        eby = np.minimum(by, sy)
        ebz = np.minimum(bz, sz)
        tile_points = np.maximum(ebx * eby * ebz, 1)
        num_tiles = (-(-sx // bx)) * (-(-sy // by)) * (-(-sz // bz))
        sched = self.schedule_model.schedule_batch(num_tiles, chunk)
        threads = sched.threads_used

        # --- in-core compute --------------------------------------------
        cycles = self.simd_model.cycles_per_point_batch(kernel, ebx, unroll)
        cycles = cycles + spec.row_overhead_cycles / ebx
        cycles = cycles + spec.tile_overhead_cycles / tile_points
        t_core = instance.num_points * cycles * spec.cycle_time_s() / threads

        # --- cache / memory transfers ------------------------------------
        traffic = self.traffic_model.analyze_batch(
            kernel,
            np.column_stack([ebx, eby, ebz]),
            threads,
            grid_points=instance.num_points,
        )
        n = instance.num_points
        l2_bw = spec.cache("L2").bandwidth_gbs * 1e9 * threads
        l3_bw = spec.cache("L3").bandwidth_gbs * 1e9 * threads
        t_l2 = n * traffic.level_bytes["L1"] / l2_bw
        t_l3 = n * traffic.level_bytes["L2"] / l3_bw
        t_dram = n * traffic.level_bytes["L3"] / (spec.mem_bandwidth(threads) * 1e9)

        t_node = np.maximum(np.maximum(t_core, t_l2), np.maximum(t_l3, t_dram))
        total = t_node * sched.imbalance + sched.overhead_s
        return BatchSweepCost(
            t_core=t_core,
            t_l2=t_l2,
            t_l3=t_l3,
            t_dram=t_dram,
            imbalance=sched.imbalance,
            overhead_s=sched.overhead_s,
            threads_used=threads,
            total_s=total,
        )

    def sweep_times_batch(
        self, instance: StencilInstance, tunings: Sequence[TuningVector]
    ) -> np.ndarray:
        """Noise-free seconds per sweep for ``n`` tunings of one instance."""
        return self.sweep_costs_batch(instance, tunings).total_s

    def sweep_time(self, execution: StencilExecution) -> float:
        """Noise-free seconds per sweep."""
        return self.sweep_cost(execution).total_s

    def gflops(self, execution: StencilExecution) -> float:
        """Noise-free sustained GFlop/s for the sweep."""
        return execution.instance.flops / self.sweep_time(execution) / 1e9
