"""ECM-style cost composition: one sweep's simulated execution time.

The node-level time of a blocked, threaded stencil sweep is composed as

``T_sweep = max(T_core, T_L2, T_L3, T_DRAM) · imbalance + T_overheads``

where ``T_core`` comes from the SIMD/unroll model, the transfer terms from
the layer-condition traffic model with per-level bandwidths, and imbalance /
scheduling overhead from the chunking model.  The ``max`` expresses the
bottleneck view of the execution-cache-memory model: a memory-bound stencil
(e.g. the 7-point double-precision Laplacian at 256³) is insensitive to
unrolling but very sensitive to blocking, while a compute-bound one (e.g.
tricubic's 4×4×4 cube, 66 reads/point) behaves the other way around — the
qualitative structure the paper's benchmarks exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import TrafficModel, TrafficReport
from repro.machine.simd import SimdModel
from repro.machine.spec import MachineSpec, XEON_E5_2680_V3
from repro.machine.threads import ScheduleModel, ScheduleReport
from repro.stencil.execution import StencilExecution

__all__ = ["CostModel", "SweepCost"]


@dataclass(frozen=True)
class SweepCost:
    """Breakdown of one sweep's noise-free execution time (seconds)."""

    t_core: float
    t_l2: float
    t_l3: float
    t_dram: float
    schedule: ScheduleReport
    traffic: TrafficReport
    total_s: float

    @property
    def bottleneck(self) -> str:
        """Which term dominates the node-level time."""
        terms = {
            "core": self.t_core,
            "L2": self.t_l2,
            "L3": self.t_l3,
            "dram": self.t_dram,
        }
        return max(terms, key=terms.__getitem__)

    @property
    def memory_bound(self) -> bool:
        """True iff a transfer term (not the core) dominates."""
        return self.bottleneck != "core"


class CostModel:
    """Noise-free sweep-time model for a given machine specification."""

    def __init__(self, spec: MachineSpec = XEON_E5_2680_V3) -> None:
        self.spec = spec
        self.traffic_model = TrafficModel(spec)
        self.simd_model = SimdModel(spec)
        self.schedule_model = ScheduleModel(spec)

    def sweep_cost(self, execution: StencilExecution) -> SweepCost:
        """Full cost breakdown for one Jacobi sweep of ``execution``."""
        spec = self.spec
        inst = execution.instance
        kernel = inst.kernel
        tuning = execution.tuning

        eff_block = execution.effective_block
        ebx, eby, ebz = eff_block
        tile_points = max(ebx * eby * ebz, 1)
        sched = self.schedule_model.schedule(execution.num_tiles, tuning.chunk)
        threads = sched.threads_used

        # --- in-core compute --------------------------------------------
        cycles = self.simd_model.cycles_per_point(kernel, ebx, tuning.unroll)
        cycles += spec.row_overhead_cycles / ebx
        cycles += spec.tile_overhead_cycles / tile_points
        t_core = inst.num_points * cycles * spec.cycle_time_s() / threads

        # --- cache / memory transfers ------------------------------------
        traffic = self.traffic_model.analyze(
            kernel, eff_block, threads, grid_points=inst.num_points
        )
        n = inst.num_points
        # bytes crossing each boundary: L1 misses are served by L2, etc.
        l2_bw = spec.cache("L2").bandwidth_gbs * 1e9 * threads
        l3_bw = spec.cache("L3").bandwidth_gbs * 1e9 * threads
        t_l2 = n * traffic.level_bytes["L1"] / l2_bw
        t_l3 = n * traffic.level_bytes["L2"] / l3_bw
        t_dram = n * traffic.level_bytes["L3"] / (spec.mem_bandwidth(threads) * 1e9)

        t_node = max(t_core, t_l2, t_l3, t_dram)
        total = t_node * sched.imbalance + sched.overhead_s
        return SweepCost(
            t_core=t_core,
            t_l2=t_l2,
            t_l3=t_l3,
            t_dram=t_dram,
            schedule=sched,
            traffic=traffic,
            total_s=total,
        )

    def sweep_time(self, execution: StencilExecution) -> float:
        """Noise-free seconds per sweep."""
        return self.sweep_cost(execution).total_s

    def gflops(self, execution: StencilExecution) -> float:
        """Noise-free sustained GFlop/s for the sweep."""
        return execution.instance.flops / self.sweep_time(execution) / 1e9
