"""SIMD / unrolling in-core throughput model.

The innermost (x) loop of a PATUS-generated kernel is vectorized with AVX2
and optionally unrolled.  Three effects shape per-point compute cost:

* **Vector remainder** — an innermost extent that is not a multiple of the
  lane count wastes lanes in the final iteration; tiny blocks (bx < lanes)
  waste most of the vector.
* **Unrolling** — replicating the loop body hides latency (fewer loop
  branches per point, more independent FMA chains) up to a sweet spot,
  after which **register pressure** forces spills: the live-value count
  grows with both the unroll factor and the number of rows/planes the
  stencil keeps in flight.
* **Loop overhead** — per-iteration increment/compare/branch cycles are
  amortized over ``unroll × lanes`` points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.spec import MachineSpec
from repro.stencil.kernel import StencilKernel

__all__ = ["SimdModel"]


@dataclass(frozen=True)
class SimdModel:
    """Computes per-point core cycles for a kernel's inner loop."""

    spec: MachineSpec

    def vector_efficiency(self, inner_extent: int, lanes: int) -> float:
        """Fraction of lanes doing useful work over the innermost extent.

        >>> m = SimdModel.__new__(SimdModel)  # doctest helper, no spec needed
        >>> SimdModel.vector_efficiency(m, 16, 8)
        1.0
        >>> SimdModel.vector_efficiency(m, 4, 8)
        0.5
        """
        if inner_extent <= 0:
            return 1e-3
        full, rem = divmod(inner_extent, lanes)
        iters = full + (1 if rem else 0)
        return inner_extent / (iters * lanes)

    def unroll_factor_cycles(self, kernel: StencilKernel, unroll: int) -> float:
        """Multiplier on body cycles from unrolling (< 1 helps, > 1 hurts).

        ILP benefit follows a saturating curve; register pressure kicks in
        when ``live values ≈ unroll × rows-in-flight`` exceeds the register
        file, multiplying cost by a spill penalty.
        """
        u = max(unroll, 1)
        # latency hiding: perfect pipelining would save the ~15% dependent-
        # chain stall of the rolled loop; saturates by u ≈ 4
        ilp_gain = 1.15 - 0.15 * (1.0 - 1.0 / u) / (1.0 - 1.0 / 4.0)
        ilp_gain = max(ilp_gain, 0.97)

        rows_in_flight = max(kernel.pattern.planes(axis=2), 1) + max(
            kernel.num_buffers - 1, 0
        )
        live = 2 + u * rows_in_flight
        excess = max(0, live - self.spec.vector_registers)
        spill_penalty = 1.0 + 0.045 * excess
        return ilp_gain * spill_penalty

    def loop_overhead_cycles(self, unroll: int, lanes: int) -> float:
        """Loop bookkeeping cycles charged per updated point."""
        u = max(unroll, 1)
        return 2.0 / (u * lanes)

    def body_cycles_per_point(self, kernel: StencilKernel) -> float:
        """Steady-state cycles per point from FMA and load-port pressure."""
        lanes = self.spec.lanes(kernel.dtype)
        flops = kernel.flops_per_point
        loads = kernel.reads_per_point
        fma_cycles = flops / (self.spec.fma_ports * lanes * 2.0)
        load_cycles = loads / (self.spec.load_ports * lanes)
        raw = max(fma_cycles, load_cycles)
        return raw / self.spec.codegen_efficiency

    def cycles_per_point(
        self, kernel: StencilKernel, inner_extent: int, unroll: int
    ) -> float:
        """Total in-core cycles per updated point for the given tuning."""
        lanes = self.spec.lanes(kernel.dtype)
        eff = self.vector_efficiency(inner_extent, lanes)
        body = self.body_cycles_per_point(kernel) / eff
        body *= self.unroll_factor_cycles(kernel, unroll)
        return body + self.loop_overhead_cycles(unroll, lanes)

    def cycles_per_point_batch(
        self, kernel: StencilKernel, inner_extent: np.ndarray, unroll: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`cycles_per_point` over ``(n,)`` tuning arrays.

        The per-kernel quantities (body cycles, rows in flight) are computed
        once and broadcast; only the tuning-dependent terms (vector
        efficiency, unroll multiplier, loop overhead) are per-element.
        Operation order mirrors the scalar path so results agree to float
        rounding.
        """
        lanes = self.spec.lanes(kernel.dtype)
        inner = np.asarray(inner_extent, dtype=np.int64)
        u = np.maximum(np.asarray(unroll, dtype=np.int64), 1)

        # vector efficiency (scalar: vector_efficiency)
        full, rem = np.divmod(inner, lanes)
        iters = full + (rem != 0)
        eff = np.where(
            inner > 0, inner / np.maximum(iters * lanes, 1), 1e-3
        )

        # unroll multiplier (scalar: unroll_factor_cycles)
        ilp_gain = 1.15 - 0.15 * (1.0 - 1.0 / u) / (1.0 - 1.0 / 4.0)
        ilp_gain = np.maximum(ilp_gain, 0.97)
        rows_in_flight = max(kernel.pattern.planes(axis=2), 1) + max(
            kernel.num_buffers - 1, 0
        )
        live = 2 + u * rows_in_flight
        excess = np.maximum(0, live - self.spec.vector_registers)
        spill_penalty = 1.0 + 0.045 * excess

        body = self.body_cycles_per_point(kernel) / eff
        body = body * (ilp_gain * spill_penalty)
        return body + 2.0 / (u * lanes)
