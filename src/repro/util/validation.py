"""Argument-validation helpers with consistent error messages.

Raising early with a precise message is the library-wide convention: every
public constructor validates its inputs through these helpers so that a
malformed stencil/tuning specification fails at construction, not deep inside
the machine model.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_type",
    "check_positive",
    "check_in_range",
    "check_power_of_two",
    "is_power_of_two",
]


def check_type(name: str, value: Any, *types: type) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = " or ".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Raise :class:`ValueError` unless ``value`` is positive (``> 0`` by default)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Raise :class:`ValueError` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def is_power_of_two(value: int) -> bool:
    """True iff ``value`` is a positive integral power of two.

    >>> [v for v in range(1, 9) if is_power_of_two(v)]
    [1, 2, 4, 8]
    """
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def check_power_of_two(name: str, value: int) -> int:
    """Raise :class:`ValueError` unless ``value`` is a power of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value
