"""ASCII table / series rendering for experiment harnesses.

The experiment modules print the same rows and series the paper's tables and
figures report.  This module renders them readably in a terminal without any
plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["Table", "format_table", "format_series", "format_histogram"]


def _fmt_cell(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


@dataclass
class Table:
    """A simple column-oriented table builder.

    >>> t = Table(["name", "value"])
    >>> t.add_row(["x", 1.5])
    >>> print(t.render(floatfmt=".1f"))
    name | value
    ---- | -----
    x    | 1.5
    """

    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    title: str | None = None

    def add_row(self, row: Sequence[Any]) -> None:
        """Append one row; its length must match the header."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def add_mapping(self, row: Mapping[str, Any], default: Any = "") -> None:
        """Append a row given as a dict keyed by column name."""
        self.add_row([row.get(col, default) for col in self.columns])

    def sort_by(self, column: str, reverse: bool = False) -> None:
        """Sort rows in place by the named column."""
        idx = list(self.columns).index(column)
        self.rows.sort(key=lambda r: r[idx], reverse=reverse)

    def render(self, floatfmt: str = ".4g") -> str:
        """Render the table as aligned ASCII text."""
        header = [str(c) for c in self.columns]
        body = [[_fmt_cell(v, floatfmt) for v in row] for row in self.rows]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
        lines.append(" | ".join("-" * w for w in widths))
        for row in body:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = ".4g",
) -> str:
    """One-shot helper: build and render a :class:`Table`."""
    t = Table(list(columns), title=title)
    for row in rows:
        t.add_row(list(row))
    return t.render(floatfmt=floatfmt)


def format_series(
    x: Sequence[Any],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render several aligned series (one column per named series).

    Used by the figure harnesses to print e.g. GFlop/s versus evaluation
    count for every search method, matching the paper's line plots.
    """
    columns = [x_label, *series.keys()]
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv, *(vals[i] for vals in series.values())])
    return format_table(columns, rows, title=title, floatfmt=floatfmt)


def format_histogram(
    values: Sequence[float],
    bins: int = 20,
    width: int = 40,
    lo: float | None = None,
    hi: float | None = None,
    floatfmt: str = ".2f",
) -> str:
    """Render a vertical ASCII histogram (poor-man's violin plot for Fig. 7)."""
    import numpy as np

    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return "(empty)"
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    if hi <= lo:
        hi = lo + 1.0
    counts, edges = np.histogram(arr, bins=bins, range=(lo, hi))
    peak = max(int(counts.max()), 1)
    lines = []
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(
            f"[{format(left, floatfmt)}, {format(right, floatfmt)}) "
            f"{bar} {int(count)}"
        )
    return "\n".join(lines)
