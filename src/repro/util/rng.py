"""Deterministic random-number plumbing.

All stochastic components of the library (search algorithms, training-set
generation, measurement noise) draw from :class:`numpy.random.Generator`
streams derived here.  Two properties matter for a reproduction study:

* **Global reproducibility** — a single integer seed reproduces every
  experiment end to end.
* **Stream independence** — independent components (e.g. two search
  algorithms tuning the same stencil) must not share a stream, otherwise
  adding an evaluation to one perturbs the other.  We derive child streams
  with :func:`numpy.random.SeedSequence.spawn` and with stable string keys
  hashed via :func:`hash_seed`.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "hash_seed",
    "hash_seed_many",
    "hash_bits",
    "hash_bits_grid",
    "spawn",
    "as_generator",
    "RngFactory",
]

_MASK64 = (1 << 64) - 1


def _absorb(h: "hashlib.blake2b", parts: Iterable[object]) -> None:
    """Feed ``repr``-encoded, NUL-separated parts into a hasher."""
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")


def hash_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from arbitrary hashable-by-repr parts.

    Uses BLAKE2b over the ``repr`` of each part, so the result is stable
    across processes and Python versions (unlike built-in ``hash``).

    >>> hash_seed("blur", (1024, 768), 3) == hash_seed("blur", (1024, 768), 3)
    True
    >>> hash_seed("blur") != hash_seed("edge")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    _absorb(h, parts)
    return int.from_bytes(h.digest(), "little") & _MASK64


def hash_seed_many(
    prefix: Sequence[object], suffixes: Iterable[object]
) -> list[int]:
    """``hash_seed(*prefix, s)`` for every ``s``, digesting the prefix once.

    The batch counterpart of :func:`hash_seed`: when many keys share a
    common prefix (e.g. the instance part of an execution hash), the prefix
    is absorbed once and the hasher state copied per suffix — same results,
    one pass over the shared parts.

    >>> hash_seed_many(["blur", (1024, 768)], [1, 2]) == [
    ...     hash_seed("blur", (1024, 768), 1), hash_seed("blur", (1024, 768), 2)]
    True
    """
    base = hashlib.blake2b(digest_size=8)
    _absorb(base, prefix)
    out: list[int] = []
    for suffix in suffixes:
        h = base.copy()
        _absorb(h, (suffix,))
        out.append(int.from_bytes(h.digest(), "little") & _MASK64)
    return out


def hash_bits(*parts: object, words: int = 2) -> tuple[int, ...]:
    """``words`` independent 64-bit values derived from one key.

    Same absorb convention as :func:`hash_seed` (``repr``-encoded,
    NUL-separated), but with a wider digest split into little-endian 64-bit
    words — the scalar counterpart of :func:`hash_bits_grid`.

    >>> hash_bits("noise", 0, 1, 2) == hash_bits("noise", 0, 1, 2)
    True
    >>> hash_bits("a")[0] != hash_bits("b")[0]
    True
    """
    h = hashlib.blake2b(digest_size=8 * words)
    _absorb(h, parts)
    digest = h.digest()
    return tuple(
        int.from_bytes(digest[8 * i : 8 * (i + 1)], "little") for i in range(words)
    )


def hash_bits_grid(
    prefix: Sequence[object],
    rows: Sequence[object],
    cols: Sequence[object],
    words: int = 2,
) -> np.ndarray:
    """:func:`hash_bits` for every ``(prefix, row, col)`` key, as a grid.

    Returns a ``(len(rows), len(cols), words)`` uint64 array with
    ``out[i, j] == hash_bits(*prefix, rows[i], cols[j], words=words)``.
    The prefix is absorbed once and the row digests once per row, so an
    ``n × m`` grid costs ``n + n·m`` hasher copies instead of ``n·m`` full
    re-digests — this is what lets counter-based consumers (the measurement
    noise model) evaluate whole batches without per-cell stream objects.

    >>> g = hash_bits_grid(["noise", 7], [11, 12], [0, 1])
    >>> tuple(int(w) for w in g[1, 0]) == hash_bits("noise", 7, 12, 0)
    True
    """
    base = hashlib.blake2b(digest_size=8 * words)
    _absorb(base, prefix)
    buf = bytearray()
    for row in rows:
        hr = base.copy()
        _absorb(hr, (row,))
        for col in cols:
            h = hr.copy()
            _absorb(h, (col,))
            buf += h.digest()
    out = np.frombuffer(bytes(buf), dtype="<u8")
    return out.reshape(len(rows), len(cols), words)


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces an OS-entropy generator; an existing generator is
    returned unchanged (shared stream, caller's responsibility).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: int | None, *key: object) -> np.random.Generator:
    """Return an independent generator for ``(seed, key...)``.

    The same ``(seed, key)`` pair always yields the same stream, and
    different keys yield (cryptographically) independent streams.
    """
    return np.random.default_rng(np.random.SeedSequence([seed or 0, hash_seed(*key)]))


class RngFactory:
    """Factory handing out named, independent random streams.

    A factory is constructed once per experiment from the experiment's master
    seed; components then request streams by name::

        rngs = RngFactory(seed=42)
        ga_rng = rngs.get("search", "genetic", trial=0)
        noise_rng = rngs.get("machine-noise")

    Requesting the same name twice returns a *fresh* generator over the same
    stream, so components can be re-run identically.
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._seed = 0 if seed is None else int(seed)

    @property
    def seed(self) -> int:
        """The master seed this factory derives all streams from."""
        return self._seed

    def get(self, *key: object, **kw: object) -> np.random.Generator:
        """Return the generator for stream ``key`` (kwargs folded into the key)."""
        flat: list[object] = list(key)
        for name in sorted(kw):
            flat.append((name, kw[name]))
        return spawn(self._seed, *flat)

    def child(self, *key: object) -> "RngFactory":
        """Return a sub-factory whose streams are all namespaced under ``key``."""
        return RngFactory(hash_seed(self._seed, *key))

    def integers(self, n: int, low: int, high: int, *key: object) -> np.ndarray:
        """Draw ``n`` integers in ``[low, high)`` from the named stream."""
        return self.get(*key).integers(low, high, size=n)

    def permutation(self, items: Sequence[object] | Iterable[object], *key: object) -> list[object]:
        """Return a deterministic permutation of ``items`` under the named stream."""
        seq = list(items)
        order = self.get(*key).permutation(len(seq))
        return [seq[i] for i in order]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed})"
