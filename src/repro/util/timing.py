"""Wall-clock timing helpers used by the experiment harnesses (Table II)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Render a duration the way the paper's Table II does (ms / s / m / h).

    >>> format_seconds(0.0004)
    '<1 ms'
    >>> format_seconds(0.02)
    '0.02s'
    >>> format_seconds(260)
    '4m 20s'
    >>> format_seconds(115200)
    '32h 0m'
    """
    if seconds < 1e-3:
        return "<1 ms"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f} ms" if seconds >= 0.1 else f"{seconds:.2g}s"
    if seconds < 60:
        return f"{seconds:.2f}s".rstrip("0").rstrip(".") + ("s" if "." not in f"{seconds:.2f}s" else "")
    if seconds < 3600:
        m, s = divmod(int(round(seconds)), 60)
        return f"{m}m {s}s"
    h, rem = divmod(int(round(seconds)), 3600)
    return f"{h}h {rem // 60}m"


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    >>> sw = Stopwatch()
    >>> with sw.lap("train"):
    ...     pass
    >>> "train" in sw.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    class _Lap:
        def __init__(self, watch: "Stopwatch", name: str) -> None:
            self._watch = watch
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "Stopwatch._Lap":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc: object) -> None:
            elapsed = time.perf_counter() - self._start
            self._watch.laps[self._name] = self._watch.laps.get(self._name, 0.0) + elapsed

    def lap(self, name: str) -> "Stopwatch._Lap":
        """Context manager accumulating elapsed wall time under ``name``."""
        return Stopwatch._Lap(self, name)

    def total(self) -> float:
        """Sum of all laps, in seconds."""
        return sum(self.laps.values())

    def report(self) -> str:
        """Render laps as ``name: duration`` lines."""
        return "\n".join(f"{k}: {format_seconds(v)}" for k, v in self.laps.items())
