"""Shared plumbing: deterministic RNG streams, ASCII reports, timing, validation.

Nothing in this package knows about stencils or machine models; it is the
dependency-free bottom layer of the library.
"""

from repro.util.rng import RngFactory, as_generator, hash_seed, spawn
from repro.util.tables import Table, format_series, format_table
from repro.util.timing import Stopwatch, format_seconds
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_type,
)

__all__ = [
    "RngFactory",
    "Stopwatch",
    "Table",
    "as_generator",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
    "check_type",
    "format_seconds",
    "format_series",
    "format_table",
    "hash_seed",
    "spawn",
]
