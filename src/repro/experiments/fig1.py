"""Fig. 1: the 3-D training stencil shapes, rendered per z-plane.

The paper's Fig. 1 sketches the four synthetic shape families the training
generator draws from (line, hyperplane, hypercube, laplacian).  This
harness renders each family's occupancy matrix plane by plane as ASCII art
and reports the point counts per radius — the data behind the drawing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stencil.pattern import StencilPattern
from repro.stencil.shapes import TRAINING_SHAPES
from repro.util.tables import Table

__all__ = ["run_fig1", "format_fig1", "render_pattern", "Fig1Result"]


def render_pattern(pattern: StencilPattern) -> str:
    """ASCII rendering: one block per z-plane, ``#`` = read, ``o`` = origin."""
    r = pattern.radius
    dense = pattern.to_dense(r)
    blocks: list[str] = []
    for zi in range(2 * r + 1):
        dz = zi - r
        plane = dense[:, :, zi]
        if plane.sum() == 0:
            continue
        lines = [f"z = {dz:+d}"]
        for yi in range(2 * r + 1):
            row = []
            for xi in range(2 * r + 1):
                if plane[xi, yi]:
                    row.append("o" if (xi == r and yi == r and dz == 0) else "#")
                else:
                    row.append(".")
            lines.append(" ".join(row))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


@dataclass
class Fig1Result:
    """Renderings and point counts per shape family."""

    renderings: dict[str, str]
    point_counts: dict[str, dict[int, int]]


def run_fig1(radius: int = 1, max_radius: int = 3) -> Fig1Result:
    """Render every family at ``radius`` and tabulate counts up to ``max_radius``."""
    renderings = {
        name: render_pattern(fn(3, radius)) for name, fn in TRAINING_SHAPES.items()
    }
    counts = {
        name: {r: fn(3, r).num_points for r in range(1, max_radius + 1)}
        for name, fn in TRAINING_SHAPES.items()
    }
    return Fig1Result(renderings=renderings, point_counts=counts)


def format_fig1(result: Fig1Result) -> str:
    """Render the figure: per-family ASCII art plus the count table."""
    blocks = ["Fig. 1 — 3D training stencil shapes"]
    for name, art in result.renderings.items():
        blocks.append(f"--- {name} ---\n{art}")
    radii = sorted(next(iter(result.point_counts.values())))
    table = Table(["shape", *[f"r={r}" for r in radii]], title="points per radius")
    for name, counts in result.point_counts.items():
        table.add_row([name, *[counts[r] for r in radii]])
    blocks.append(table.render())
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_fig1(run_fig1()))


if __name__ == "__main__":  # pragma: no cover
    main()
