"""Shared experiment plumbing: machines, trained tuners, scaling.

The expensive shared artifact is the trained model family: several
experiments need ordinal-regression tuners at multiple training-set sizes.
:class:`ExperimentContext` builds the largest requested set once and
derives the smaller sizes by per-group subsampling (the paper's sizes are
nested samples of the same generation process), caching tuners per size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.dataset import TrainingSet
from repro.autotune.training import TrainingSetBuilder
from repro.features.encoder import FeatureEncoder
from repro.learn.ranksvm import RankSVMConfig
from repro.machine.executor import SimulatedMachine
from repro.search.base import SearchAlgorithm
from repro.search.differential import DifferentialEvolution
from repro.search.evolution_strategy import EvolutionStrategy
from repro.search.genetic import GenerationalGA
from repro.search.steady_state import SteadyStateGA
from repro.stencil.instance import StencilInstance
from repro.tuning.space import patus_space

__all__ = ["experiment_scale", "ExperimentContext", "SEARCH_METHODS"]

#: the four iterative-compilation baselines of §VI-A, by display name
SEARCH_METHODS: dict[str, type[SearchAlgorithm]] = {
    "genetic algorithm": GenerationalGA,
    "differential evolution": DifferentialEvolution,
    "evolutive strategy": EvolutionStrategy,
    "sGA": SteadyStateGA,
}


def experiment_scale() -> str:
    """``small`` (default) or ``paper``, from the REPRO_SCALE env var."""
    scale = os.environ.get("REPRO_SCALE", "small").lower()
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_SCALE must be 'small' or 'paper', got {scale!r}")
    return scale


@dataclass
class ExperimentContext:
    """Lazy provider of machines, training sets and trained tuners."""

    seed: int = 0
    C: float = 0.01
    machine: SimulatedMachine = field(default=None)  # type: ignore[assignment]
    encoder: FeatureEncoder = field(default_factory=FeatureEncoder)
    _base_set: TrainingSet | None = field(default=None, repr=False)
    _tuners: dict[int, OrdinalAutotuner] = field(default_factory=dict, repr=False)
    _sets: dict[int, TrainingSet] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.machine is None:
            self.machine = SimulatedMachine(seed=self.seed)

    # -- training sets ---------------------------------------------------------

    def base_training_set(self, max_size: int) -> TrainingSet:
        """The largest training set built so far (rebuilt if too small)."""
        if self._base_set is None or len(self._base_set) < max_size:
            builder = TrainingSetBuilder(
                machine=self.machine.fork(), encoder=self.encoder, seed=self.seed
            )
            self._base_set = builder.build(max_size)
            self._sets = {}
            self._tuners = {}
        return self._base_set

    def training_set(self, size: int) -> TrainingSet:
        """A training set of ~``size`` points (nested subsample of the base)."""
        if size not in self._sets:
            base = self.base_training_set(size)
            self._sets[size] = base.subset_points(size, rng_seed=self.seed)
        return self._sets[size]

    def tuner(self, size: int) -> OrdinalAutotuner:
        """A trained ordinal-regression tuner for the given set size."""
        if size not in self._tuners:
            tuner = OrdinalAutotuner(
                encoder=self.encoder,
                config=RankSVMConfig(C=self.C, seed=self.seed),
            )
            tuner.train(self.training_set(size))
            self._tuners[size] = tuner
        return self._tuners[size]

    # -- searches ----------------------------------------------------------------

    def search(self, name: str, instance: StencilInstance) -> SearchAlgorithm:
        """A fresh, independently seeded search algorithm for one instance."""
        cls = SEARCH_METHODS[name]
        return cls(
            space=patus_space(instance.dims),
            machine=self.machine.fork(),
            seed=self.seed,
        )
