"""Experiment harnesses: one module per table/figure of the paper.

Every harness regenerates the corresponding table's rows or figure's series
and prints them in the paper's layout:

* :mod:`repro.experiments.table2` — pre-processing/regression timing vs
  training-set size;
* :mod:`repro.experiments.table3` — the benchmark registry;
* :mod:`repro.experiments.fig4` — speedup over the GA-1024 base
  configuration for all 17 benchmarks, 4 searches × 4 model sizes;
* :mod:`repro.experiments.fig5` — search-progress curves (GFlop/s versus
  evaluations) plus time-to-solution for four stencils;
* :mod:`repro.experiments.fig6` — per-instance Kendall τ at two training
  sizes;
* :mod:`repro.experiments.fig7` — Kendall-τ distribution across twelve
  training sizes.

Each module is executable (``python -m repro.experiments.fig4``) and scaled
by the ``REPRO_SCALE`` environment variable: ``small`` (default, minutes on
a laptop) or ``paper`` (the full configuration of the paper).
"""

from repro.experiments.common import ExperimentContext, experiment_scale

__all__ = ["ExperimentContext", "experiment_scale"]
