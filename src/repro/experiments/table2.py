"""Table II: computing time of the autotuning phases vs training-set size.

For each training-set size the paper reports four columns:

* **TS Comp.** — compiling all training codes (constant ≈ 32 h: binaries
  depend on the code and unroll factor, not on how many points are drawn);
* **TS Generation** — executing the training points (4 m … 145 m);
* **Training** — fitting SVM-Rank (0.01 s … 0.36 s);
* **Regression** — ranking a candidate set with the trained model (< 1 ms).

Compilation and generation are *simulated-testbed* seconds from the
accounting models; training and regression are *measured* wall-clock of
this implementation (expect a constant-factor gap to the paper's C binary —
recorded in EXPERIMENTS.md).  Training-set generation rides the vectorized
batch measurement pipeline (one cost-model pass per instance), so the real
wall-clock of this harness is dominated by SVM training, not simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import ExperimentContext, experiment_scale
from repro.stencil.suite import benchmark_by_id
from repro.tuning.presets import preset_candidates
from repro.util.tables import Table
from repro.util.timing import format_seconds

__all__ = ["Table2Config", "Table2Result", "run_table2", "format_table2"]

PAPER_SIZES = (960, 1920, 2880, 3840, 4800, 5760, 6720, 7680, 8640, 9600, 16000, 32000)
SMALL_SIZES = (960, 3840, 9600)


@dataclass
class Table2Config:
    """Sizes to sweep; defaults follow REPRO_SCALE."""

    sizes: tuple[int, ...] = field(
        default_factory=lambda: PAPER_SIZES
        if experiment_scale() == "paper"
        else SMALL_SIZES
    )
    seed: int = 0


@dataclass
class Table2Result:
    """One row per training-set size."""

    rows: list[dict[str, float]]


def run_table2(
    config: "Table2Config | None" = None, context: "ExperimentContext | None" = None
) -> Table2Result:
    """Measure all four phases at every size."""
    config = config or Table2Config()
    context = context or ExperimentContext(seed=config.seed)
    # rank target: the biggest candidate set (8640 3-D configs), as in §VI-A
    rank_instance = benchmark_by_id("laplacian-128x128x128")
    candidates = preset_candidates(3)

    rows: list[dict[str, float]] = []
    context.base_training_set(max(config.sizes))
    for size in config.sizes:
        ts = context.training_set(size)
        tuner = context.tuner(size)
        tuner.score_candidates(rank_instance, candidates)  # warm + measure
        rows.append(
            {
                "size": float(len(ts)),
                "ts_comp_s": ts.compile_wall_s,
                "ts_generation_s": ts.generation_wall_s,
                "training_s": tuner.last_train_seconds,
                "regression_s": tuner.last_rank_seconds,
            }
        )
    return Table2Result(rows=rows)


def format_table2(result: Table2Result) -> str:
    """Render in the paper's column layout."""
    table = Table(
        ["TS Size", "TS Comp.", "TS Generation", "Training", "Regression"],
        title="Table II — computing time of the autotuning phases",
    )
    for row in result.rows:
        table.add_row(
            [
                int(row["size"]),
                format_seconds(row["ts_comp_s"]),
                format_seconds(row["ts_generation_s"]),
                f"{row['training_s']:.2f}s",
                format_seconds(row["regression_s"]),
            ]
        )
    return table.render()


def main() -> None:  # pragma: no cover - CLI entry
    print(format_table2(run_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
