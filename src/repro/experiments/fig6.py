"""Fig. 6: Kendall τ per training instance, at two training-set sizes.

The paper takes the orderings present in the training set, re-ranks every
instance's executions with the trained model, and plots the per-instance τ
for sizes 960 and 6720: larger sets raise the coefficients and tighten the
spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import ExperimentContext, experiment_scale
from repro.util.tables import Table

__all__ = ["Fig6Config", "Fig6Result", "run_fig6", "format_fig6"]


@dataclass
class Fig6Config:
    """Two training sizes to contrast (the paper uses 960 and 6720)."""

    sizes: tuple[int, int] = field(
        default_factory=lambda: (960, 6720)
        if experiment_scale() == "paper"
        else (960, 3840)
    )
    seed: int = 0


@dataclass
class Fig6Result:
    """Per-size: τ value per instance index (the scatter of the figure)."""

    taus: dict[int, list[float]]

    def stats(self, size: int) -> dict[str, float]:
        """Summary statistics for one size's τ distribution."""
        arr = np.array(self.taus[size])
        return {
            "mean": float(arr.mean()),
            "median": float(np.median(arr)),
            "q25": float(np.percentile(arr, 25)),
            "q75": float(np.percentile(arr, 75)),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "negative_fraction": float((arr < 0).mean()),
        }


def run_fig6(
    config: "Fig6Config | None" = None, context: "ExperimentContext | None" = None
) -> Fig6Result:
    """Train at both sizes and collect per-instance τ on the training set."""
    config = config or Fig6Config()
    context = context or ExperimentContext(seed=config.seed)
    context.base_training_set(max(config.sizes))
    taus: dict[int, list[float]] = {}
    for size in config.sizes:
        tuner = context.tuner(size)
        data = context.training_set(size).data
        assert tuner.model is not None
        per_group = tuner.model.kendall_per_group(data)
        taus[size] = [per_group[g] for g in sorted(per_group)]  # type: ignore[index]
    return Fig6Result(taus=taus)


def format_fig6(result: Fig6Result) -> str:
    """Render summary statistics per size plus the per-instance series."""
    table = Table(
        ["size", "mean", "median", "q25", "q75", "min", "max", "neg.frac"],
        title="Fig. 6 — Kendall τ on the training set",
    )
    for size in result.taus:
        s = Fig6Result.stats(result, size)
        table.add_row(
            [
                size,
                s["mean"],
                s["median"],
                s["q25"],
                s["q75"],
                s["min"],
                s["max"],
                s["negative_fraction"],
            ]
        )
    lines = [table.render(floatfmt=".3f")]
    for size, taus in result.taus.items():
        head = ", ".join(f"{t:.2f}" for t in taus[:20])
        lines.append(f"size={size}: first 20 instance τ values: {head} ...")
    return "\n\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_fig6(run_fig6()))


if __name__ == "__main__":  # pragma: no cover
    main()
