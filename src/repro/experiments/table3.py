"""Table III: the stencil test benchmarks.

Prints the registry exactly as the paper tabulates it — 9 kernels, their
types, shapes, buffer reads and evaluated sizes, 17 benchmarks in total —
and cross-checks the counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stencil.suite import BENCHMARKS, TEST_BENCHMARKS
from repro.util.tables import Table

__all__ = ["run_table3", "format_table3", "Table3Result"]


@dataclass
class Table3Result:
    """Rows of Table III plus the benchmark count."""

    rows: list[dict[str, object]]
    num_benchmarks: int


def run_table3() -> Table3Result:
    """Collect the registry rows."""
    rows: list[dict[str, object]] = []
    for bench in BENCHMARKS.values():
        kernel = bench.kernel
        sizes = ", ".join(
            f"{s[0]}x{s[1]}" if kernel.dims == 2 else f"{s[0]}x{s[1]}x{s[2]}"
            for s in bench.sizes
        )
        rows.append(
            {
                "stencil": bench.name,
                "type": f"{kernel.dims}D",
                "points": kernel.pattern.num_points,
                "radius": kernel.radius,
                "buffers": kernel.num_buffers,
                "dtype": kernel.dtype.value,
                "sizes": sizes,
            }
        )
    return Table3Result(rows=rows, num_benchmarks=len(TEST_BENCHMARKS))


def format_table3(result: Table3Result) -> str:
    """Render the registry in the paper's layout."""
    table = Table(
        ["stencil", "type", "points", "radius", "buffers", "dtype", "sizes"],
        title="Table III — stencil test benchmarks "
        f"({len(result.rows)} kernels, {result.num_benchmarks} benchmarks)",
    )
    for row in result.rows:
        table.add_mapping(row)
    return table.render()


def main() -> None:  # pragma: no cover - CLI entry
    print(format_table3(run_table3()))


if __name__ == "__main__":  # pragma: no cover
    main()
