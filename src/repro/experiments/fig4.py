"""Fig. 4: speedup over the GA-1024 base configuration, all 17 benchmarks.

For every test benchmark the paper compares, relative to the best solution
a generational GA finds in 1024 evaluations:

* the other three searches at 1024 evaluations each;
* the ordinal-regression model's top-ranked configuration from the
  pre-defined candidate set, at four training sizes (960 / 3840 / 6720 /
  16000).

Speedups use noise-free ground-truth times (measurement noise would only
blur the comparison; the paper's bars average repeated runs to the same
effect).  A speedup > 1 means the method beat the GA's solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    SEARCH_METHODS,
    ExperimentContext,
    experiment_scale,
)
from repro.stencil.suite import TEST_BENCHMARKS, benchmark_by_id
from repro.tuning.presets import preset_candidates
from repro.util.tables import Table

__all__ = ["Fig4Config", "Fig4Result", "run_fig4", "format_fig4"]

PAPER_TRAINING_SIZES = (960, 3840, 6720, 16000)
SMALL_TRAINING_SIZES = (960, 3840)
SMALL_BENCHMARKS = (
    "blur-1024x768",
    "tricubic-256x256x256",
    "edge-512x512",
    "divergence-128x128x128",
    "gradient-256x256x256",
    "laplacian-128x128x128",
)


@dataclass
class Fig4Config:
    """Benchmarks, budget and model sizes; defaults follow REPRO_SCALE."""

    benchmarks: tuple[str, ...] = field(
        default_factory=lambda: tuple(i.label() for i in TEST_BENCHMARKS)
        if experiment_scale() == "paper"
        else SMALL_BENCHMARKS
    )
    evaluations: int = field(
        default_factory=lambda: 1024 if experiment_scale() == "paper" else 256
    )
    training_sizes: tuple[int, ...] = field(
        default_factory=lambda: PAPER_TRAINING_SIZES
        if experiment_scale() == "paper"
        else SMALL_TRAINING_SIZES
    )
    seed: int = 0


@dataclass
class Fig4Result:
    """speedups[benchmark][method] relative to the GA base configuration."""

    speedups: dict[str, dict[str, float]]
    base_times: dict[str, float]
    evaluations: int


def run_fig4(
    config: "Fig4Config | None" = None, context: "ExperimentContext | None" = None
) -> Fig4Result:
    """Run all searches and tuners on every configured benchmark."""
    config = config or Fig4Config()
    context = context or ExperimentContext(seed=config.seed)
    machine = context.machine
    context.base_training_set(max(config.training_sizes))

    speedups: dict[str, dict[str, float]] = {}
    base_times: dict[str, float] = {}
    for label in config.benchmarks:
        instance = benchmark_by_id(label)
        candidates = preset_candidates(instance.dims)
        per_method: dict[str, float] = {}

        # searches (GA first: it defines the base configuration), then the
        # ordinal-regression picks; all ground-truth times for this
        # benchmark come from one vectorized pass
        search_picks = {
            name: context.search(name, instance)
            .tune(instance, budget=config.evaluations)
            .best_tuning
            for name in SEARCH_METHODS
        }
        model_picks = {
            size: context.tuner(size).best(instance, candidates)
            for size in config.training_sizes
        }
        picks = list(search_picks.values()) + list(model_picks.values())
        times = machine.true_times_batch(instance, picks)
        search_best = dict(zip(search_picks, times[: len(search_picks)]))
        base = float(search_best["genetic algorithm"])
        base_times[label] = base
        for name, best_time in search_best.items():
            per_method[f"{name} {config.evaluations} evaluations"] = base / float(
                best_time
            )
        for size, t in zip(model_picks, times[len(search_picks) :]):
            per_method[f"ord.regression C={context.C} size={size}"] = base / float(t)

        speedups[label] = per_method
    return Fig4Result(
        speedups=speedups, base_times=base_times, evaluations=config.evaluations
    )


def format_fig4(result: Fig4Result) -> str:
    """Render one row per benchmark, one column per method."""
    methods = list(next(iter(result.speedups.values())).keys())
    table = Table(
        ["benchmark", *methods],
        title=(
            "Fig. 4 — speedup vs base configuration found by a genetic "
            f"algorithm after {result.evaluations} evaluations"
        ),
    )
    for label, per_method in result.speedups.items():
        table.add_row([label, *(per_method[m] for m in methods)])
    return table.render(floatfmt=".3f")


def main() -> None:  # pragma: no cover - CLI entry
    print(format_fig4(run_fig4()))


if __name__ == "__main__":  # pragma: no cover
    main()
