"""Fig. 7: the Kendall-τ distribution across training-set sizes.

The paper's box/violin plot over twelve sizes (960 … 32000, C = 0.01):
the median improves slightly with more data while the variance shrinks
markedly — the ranking quality *stabilizes*.  This harness reports the
box-plot numbers (quartiles, whiskers, median) and an ASCII density sketch
per size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import ExperimentContext, experiment_scale
from repro.util.tables import Table, format_histogram

__all__ = ["Fig7Config", "Fig7Result", "run_fig7", "format_fig7"]

PAPER_SIZES = (960, 1920, 2880, 3840, 4800, 5760, 6720, 7680, 8640, 9600, 16000, 32000)
SMALL_SIZES = (960, 1920, 3840, 7680)


@dataclass
class Fig7Config:
    """Training sizes to sweep; defaults follow REPRO_SCALE."""

    sizes: tuple[int, ...] = field(
        default_factory=lambda: PAPER_SIZES
        if experiment_scale() == "paper"
        else SMALL_SIZES
    )
    seed: int = 0


@dataclass
class Fig7Result:
    """τ distribution per size."""

    taus: dict[int, np.ndarray]

    def box_stats(self, size: int) -> dict[str, float]:
        """Median, quartiles, IQR whiskers and spread for one size."""
        arr = self.taus[size]
        q1, med, q3 = (float(np.percentile(arr, p)) for p in (25, 50, 75))
        iqr = q3 - q1
        return {
            "median": med,
            "q1": q1,
            "q3": q3,
            "iqr": iqr,
            "lo_whisker": float(arr[arr >= q1 - 1.5 * iqr].min()),
            "hi_whisker": float(arr[arr <= q3 + 1.5 * iqr].max()),
            "std": float(arr.std()),
        }


def run_fig7(
    config: "Fig7Config | None" = None, context: "ExperimentContext | None" = None
) -> Fig7Result:
    """Train at every size and collect the training-set τ distributions."""
    config = config or Fig7Config()
    context = context or ExperimentContext(seed=config.seed)
    context.base_training_set(max(config.sizes))
    taus: dict[int, np.ndarray] = {}
    for size in config.sizes:
        tuner = context.tuner(size)
        data = context.training_set(size).data
        assert tuner.model is not None
        per_group = tuner.model.kendall_per_group(data)
        taus[size] = np.array(list(per_group.values()))
    return Fig7Result(taus=taus)


def format_fig7(result: Fig7Result, histograms: bool = False) -> str:
    """Render box-plot numbers per size (and optional ASCII densities)."""
    table = Table(
        ["size", "median", "q1", "q3", "iqr", "lo whisker", "hi whisker", "std"],
        title="Fig. 7 — Kendall τ distribution vs training-set size (C = 0.01)",
    )
    for size in result.taus:
        s = result.box_stats(size)
        table.add_row(
            [
                size,
                s["median"],
                s["q1"],
                s["q3"],
                s["iqr"],
                s["lo_whisker"],
                s["hi_whisker"],
                s["std"],
            ]
        )
    blocks = [table.render(floatfmt=".3f")]
    if histograms:
        for size, arr in result.taus.items():
            blocks.append(f"size={size}")
            blocks.append(format_histogram(arr, bins=16, lo=-1.0, hi=1.0))
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_fig7(run_fig7(), histograms=True))


if __name__ == "__main__":  # pragma: no cover
    main()
