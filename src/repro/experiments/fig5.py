"""Fig. 5: search progress and time-to-solution for four stencils.

The paper plots, for gradient 256³, tricubic 256³, blur 1024×768 and
divergence 128³:

* best-so-far performance (GFlop/s) of each search at evaluation counts
  2⁰ … 2¹⁰;
* the ordinal-regression tuners as horizontal lines (they spend no
  evaluations);
* a side bar chart of time-to-solution — accumulated testbed seconds for
  the searches versus the milliseconds the model needs to rank candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    SEARCH_METHODS,
    ExperimentContext,
    experiment_scale,
)
from repro.stencil.suite import benchmark_by_id
from repro.tuning.presets import preset_candidates
from repro.util.tables import Table, format_series

__all__ = ["Fig5Config", "Fig5Result", "run_fig5", "format_fig5"]

PAPER_STENCILS = (
    "gradient-256x256x256",
    "tricubic-256x256x256",
    "blur-1024x768",
    "divergence-128x128x128",
)


@dataclass
class Fig5Config:
    """Stencils, budget and model sizes; defaults follow REPRO_SCALE."""

    stencils: tuple[str, ...] = field(
        default_factory=lambda: PAPER_STENCILS
        if experiment_scale() == "paper"
        else PAPER_STENCILS[:2]
    )
    evaluations: int = field(
        default_factory=lambda: 1024 if experiment_scale() == "paper" else 256
    )
    training_sizes: tuple[int, ...] = field(
        default_factory=lambda: (960, 3840, 6720, 16000)
        if experiment_scale() == "paper"
        else (960, 3840)
    )
    seed: int = 0


@dataclass
class StencilProgress:
    """All series for one stencil."""

    label: str
    checkpoints: list[int]
    #: search name -> GFlop/s best-so-far at each checkpoint
    search_curves: dict[str, list[float]]
    #: "ord.regression size=N" -> constant GFlop/s level
    regression_levels: dict[str, float]
    #: method -> time-to-solution in seconds
    time_to_solution: dict[str, float]


@dataclass
class Fig5Result:
    """Per-stencil progress bundles."""

    stencils: list[StencilProgress]


def run_fig5(
    config: "Fig5Config | None" = None, context: "ExperimentContext | None" = None
) -> Fig5Result:
    """Collect progress curves, regression levels and time-to-solution."""
    config = config or Fig5Config()
    context = context or ExperimentContext(seed=config.seed)
    machine = context.machine
    context.base_training_set(max(config.training_sizes))

    max_exp = config.evaluations.bit_length() - 1
    checkpoints = [2**e for e in range(max_exp + 1)]

    out: list[StencilProgress] = []
    for label in config.stencils:
        instance = benchmark_by_id(label)
        flops = instance.flops
        candidates = preset_candidates(instance.dims)

        curves: dict[str, list[float]] = {}
        tts: dict[str, float] = {}
        for name in SEARCH_METHODS:
            result = context.search(name, instance).tune(
                instance, budget=config.evaluations
            )
            curve = result.best_curve(checkpoints)
            curves[name] = [flops / curve[k] / 1e9 for k in checkpoints]
            tts[name] = result.total_wall_s

        # one vectorized ground-truth pass over all model picks
        levels: dict[str, float] = {}
        picks = {
            size: context.tuner(size).best(instance, candidates)
            for size in config.training_sizes
        }
        pick_times = machine.true_times_batch(instance, list(picks.values()))
        for size, t in zip(picks, pick_times):
            key = f"ord.regression size={size}"
            levels[key] = flops / float(t) / 1e9
            tts[key] = context.tuner(size).last_rank_seconds

        out.append(
            StencilProgress(
                label=label,
                checkpoints=checkpoints,
                search_curves=curves,
                regression_levels=levels,
                time_to_solution=tts,
            )
        )
    return Fig5Result(stencils=out)


def format_fig5(result: Fig5Result) -> str:
    """Render curve tables plus time-to-solution bars per stencil."""
    blocks: list[str] = []
    for sp in result.stencils:
        blocks.append(
            format_series(
                sp.checkpoints,
                sp.search_curves,
                x_label="evaluations",
                floatfmt=".2f",
                title=f"Fig. 5 — {sp.label}: best-so-far GFlop/s",
            )
        )
        level_table = Table(
            ["model", "GFlop/s"], title="ordinal-regression levels (no evaluations)"
        )
        for name, level in sp.regression_levels.items():
            level_table.add_row([name, level])
        blocks.append(level_table.render(floatfmt=".2f"))
        tts_table = Table(["method", "time-to-solution"], title="time-to-solution")
        for name, seconds in sp.time_to_solution.items():
            tts_table.add_row([name, f"{seconds:.4g}s"])
        blocks.append(tts_table.render())
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_fig5(run_fig5()))


if __name__ == "__main__":  # pragma: no cover
    main()
