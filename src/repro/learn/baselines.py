"""The two traditional ML-autotuning strawmen the paper argues against (§IV-A).

* :class:`RuntimeRegression` — "numerically model the performance with
  regression": ridge regression on log-runtime.  Ranking candidates by
  predicted runtime requires the model to get *absolute* performance right,
  which the paper argues is a harder problem than ranking.
* :class:`VariantClassifier` — "select the best variant from a finite set
  of classes": a fixed codebook of tuning configurations (the winners seen
  in training) and a one-vs-rest ridge classifier on instance features.
  Its prediction quality is capped by the codebook — the class-coverage
  problem the paper describes.

Both expose the same scoring interface as :class:`~repro.learn.ranksvm.
RankSVM` (higher score = predicted faster) so the ablation benchmarks can
swap models freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ranking.partial import RankingGroups

__all__ = ["RuntimeRegression", "VariantClassifier"]


def _ridge_solve(A: np.ndarray, b: np.ndarray, alpha: float) -> np.ndarray:
    """Ridge least squares via the normal equations (d × d solve)."""
    d = A.shape[1]
    gram = A.T @ A + alpha * np.eye(d)
    return np.linalg.solve(gram, A.T @ b)


@dataclass
class RuntimeRegression:
    """Ridge regression on log-runtime; scores are negated predictions."""

    alpha: float = 1e-3
    w_: np.ndarray | None = field(default=None, repr=False)
    bias_: float = 0.0

    def fit(self, data: RankingGroups) -> "RuntimeRegression":
        """Least-squares fit of ``log(time) ≈ w·x + b``."""
        y = np.log(np.asarray(data.times, dtype=float))
        X = data.X
        Xb = np.column_stack([X, np.ones(len(X))])
        coef = _ridge_solve(Xb, y, self.alpha)
        self.w_ = coef[:-1]
        self.bias_ = float(coef[-1])
        return self

    def predict_log_time(self, X: np.ndarray) -> np.ndarray:
        """Predicted log-runtime per row."""
        if self.w_ is None:
            raise RuntimeError("RuntimeRegression is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X @ self.w_ + self.bias_

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Higher = predicted faster (negated log-time)."""
        return -self.predict_log_time(X)

    def rank(self, X: np.ndarray) -> np.ndarray:
        """Candidate indices best-first."""
        return np.argsort(-self.decision_function(X), kind="stable")


@dataclass
class VariantClassifier:
    """Best-variant classification with a winner codebook.

    Training: for every instance group, the fastest execution's *tuning
    feature block* becomes that group's class label; the ``num_classes``
    most frequent winners form the codebook.  A one-vs-rest ridge model maps
    instance features to class scores.

    Scoring candidates: each candidate is scored by the (negated) distance
    of its tuning features to the predicted class's codebook entry — the
    classifier can only express "pick something close to a known winner".
    """

    num_classes: int = 16
    alpha: float = 1e-2
    #: column range of the tuning block inside the feature vector
    tuning_slice: slice = field(default_factory=lambda: slice(None))
    codebook_: np.ndarray | None = field(default=None, repr=False)
    coef_: np.ndarray | None = field(default=None, repr=False)

    def fit(self, data: RankingGroups) -> "VariantClassifier":
        """Build the codebook and train one-vs-rest ridge scorers."""
        winners: list[np.ndarray] = []
        instance_rows: list[np.ndarray] = []
        for _, rows in data.iter_groups():
            best = rows[np.argmin(data.times[rows])]
            winners.append(data.X[best, self.tuning_slice])
            instance_rows.append(data.X[best])
        W = np.array(winners)
        # cluster identical winners; keep the most frequent distinct ones
        uniq, inv, counts = np.unique(
            np.round(W, 6), axis=0, return_inverse=True, return_counts=True
        )
        top = np.argsort(-counts)[: self.num_classes]
        self.codebook_ = uniq[top]
        # assign every group to its nearest codebook class
        labels = np.array(
            [int(np.argmin(((self.codebook_ - w) ** 2).sum(axis=1))) for w in W]
        )
        X = np.array(instance_rows)
        Xb = np.column_stack([X, np.ones(len(X))])
        n_classes = self.codebook_.shape[0]
        Y = -np.ones((len(X), n_classes))
        Y[np.arange(len(X)), labels] = 1.0
        self.coef_ = _ridge_solve(Xb, Y, self.alpha)
        return self

    def predict_class(self, x_instance: np.ndarray) -> int:
        """Codebook index predicted for one (encoded) instance row."""
        if self.coef_ is None or self.codebook_ is None:
            raise RuntimeError("VariantClassifier is not fitted")
        xb = np.append(np.asarray(x_instance, dtype=float), 1.0)
        scores = xb @ self.coef_
        return int(np.argmax(scores))

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Score candidates of one instance by closeness to the predicted winner.

        All rows of ``X`` must belong to the same instance (as in candidate
        ranking); the first row's instance features select the class.
        """
        if self.codebook_ is None:
            raise RuntimeError("VariantClassifier is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        cls = self.predict_class(X[0])
        target = self.codebook_[cls]
        d = ((X[:, self.tuning_slice] - target) ** 2).sum(axis=1)
        return -d

    def rank(self, X: np.ndarray) -> np.ndarray:
        """Candidate indices best-first."""
        return np.argsort(-self.decision_function(X), kind="stable")
