"""Ordinal-regression learning (the paper's core contribution, §IV).

:class:`RankSVM` implements the paper's Eq. 3 — a linear SVM over
within-query preference pairs with slack weight ``C/m′`` — from scratch on
numpy/scipy (the environment has no sklearn and no SVM-Rank binary).  The
pairwise hinge objective is optimized without ever materializing the pair
difference matrix: gradients are accumulated through the sample matrix with
index-weighted sums, so training 32 000-sample sets takes well under a
second, matching Table II.

:mod:`repro.learn.baselines` provides the two strawmen the paper argues
against (§IV-A): runtime regression and best-variant classification, used
by the ablation benchmarks.
"""

from repro.learn.solvers import (
    SolverResult,
    pairwise_hinge_loss,
    solve_lbfgs,
    solve_sgd,
)
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.learn.baselines import RuntimeRegression, VariantClassifier
from repro.learn.model_io import load_model, save_model

__all__ = [
    "RankSVM",
    "RankSVMConfig",
    "RuntimeRegression",
    "SolverResult",
    "VariantClassifier",
    "load_model",
    "pairwise_hinge_loss",
    "save_model",
    "solve_lbfgs",
    "solve_sgd",
]
