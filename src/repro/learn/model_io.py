"""Model persistence.

A trained autotuning model is the artifact the paper's workflow ships: the
expensive training phase runs once per machine, then the model is loaded at
compile time to rank candidates.  Models are stored as ``.npz`` archives
holding the weight vector, the hyper-parameters and an encoder fingerprint
so a model cannot silently be applied to a mismatched feature layout.

Writes are **atomic**: the archive is written to a same-directory temp file
and moved into place with :func:`os.replace`, so a reader (for example a
running tuning service hot-loading a new version from the model registry)
can never observe a half-written model.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.learn.ranksvm import RankSVM, RankSVMConfig

__all__ = ["save_model", "load_model", "MODEL_FORMAT_VERSION"]

#: on-disk archive format; bump when the layout changes incompatibly
MODEL_FORMAT_VERSION = 1
_FORMAT_VERSION = MODEL_FORMAT_VERSION


def save_model(
    model: RankSVM,
    path: "str | Path",
    encoder_fingerprint: str = "",
) -> Path:
    """Serialize a fitted :class:`RankSVM` to ``path`` (.npz)."""
    if model.w_ is None:
        raise ValueError("cannot save an unfitted model")
    path = Path(path)
    config = {
        "C": model.config.C,
        "margin": model.config.margin,
        "solver": model.config.solver,
        "max_iter": model.config.max_iter,
        "tol": model.config.tol,
        "max_pairs_per_group": model.config.max_pairs_per_group,
        "tie_tol": model.config.tie_tol,
        "seed": model.config.seed,
    }
    final = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    tmp = final.with_name(final.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(
            fh,
            w=model.w_,
            meta=np.array(
                json.dumps(
                    {
                        "format_version": _FORMAT_VERSION,
                        "config": config,
                        "num_pairs": model.num_pairs_,
                        "encoder_fingerprint": encoder_fingerprint,
                    }
                )
            ),
        )
    os.replace(tmp, final)
    return final


def load_model(
    path: "str | Path", expect_fingerprint: str | None = None
) -> RankSVM:
    """Load a model saved by :func:`save_model`.

    ``expect_fingerprint`` (if given) must match the fingerprint recorded at
    save time — guards against pairing a model with the wrong encoder.
    """
    try:
        with np.load(Path(path), allow_pickle=False) as archive:
            w = archive["w"]
            meta = json.loads(str(archive["meta"]))
    except FileNotFoundError:
        raise
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise ValueError(
            f"corrupted or unreadable model archive {str(path)!r}: {exc}"
        ) from exc
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format: {meta.get('format_version')}")
    if expect_fingerprint is not None:
        stored = meta.get("encoder_fingerprint", "")
        if stored != expect_fingerprint:
            raise ValueError(
                f"encoder fingerprint mismatch: model was trained with "
                f"{stored!r}, expected {expect_fingerprint!r}"
            )
    cfg = meta["config"]
    model = RankSVM(
        RankSVMConfig(
            C=cfg["C"],
            margin=cfg["margin"],
            solver=cfg["solver"],
            max_iter=cfg["max_iter"],
            tol=cfg["tol"],
            max_pairs_per_group=cfg["max_pairs_per_group"],
            tie_tol=cfg["tie_tol"],
            seed=cfg["seed"],
        )
    )
    model.w_ = np.asarray(w, dtype=float)
    model.num_pairs_ = int(meta.get("num_pairs", 0))
    return model
