"""Primal solvers for the pairwise ranking SVM objective.

The objective (paper Eq. 3, hinge form) over preference pairs
``P = {(i, j) : sample i should outrank sample j}`` is::

    f(w) = 1/2 ||w||² + (C / m) Σ_{(i,j) ∈ P}  ℓ(w·x_i − w·x_j)

with ``m = |P|`` and ℓ the (squared) hinge on a unit margin.  Two solvers
are provided:

* :func:`solve_lbfgs` — deterministic L-BFGS on the *squared* hinge
  (continuously differentiable, so quasi-Newton converges cleanly).  The
  gradient is computed without forming the ``m × d`` pair-difference
  matrix: hinge activations are scattered back onto samples with
  ``np.bincount`` and pushed through ``Xᵀ`` once per iteration —
  O(n·d + m) per iteration regardless of pair count.
* :func:`solve_sgd` — a Pegasos-style stochastic subgradient method on the
  standard hinge with averaged iterates; kept both as an independent
  cross-check of the L-BFGS solution and for streaming-scale training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.util.rng import as_generator

__all__ = ["SolverResult", "pairwise_hinge_loss", "solve_lbfgs", "solve_sgd"]


@dataclass(frozen=True)
class SolverResult:
    """Trained weights plus convergence diagnostics."""

    w: np.ndarray
    objective: float
    iterations: int
    converged: bool
    solver: str


def _check_inputs(X: np.ndarray, better: np.ndarray, worse: np.ndarray) -> None:
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got ndim={X.ndim}")
    if better.shape != worse.shape or better.ndim != 1:
        raise ValueError("better/worse must be equal-length 1-D index arrays")
    if better.size == 0:
        raise ValueError("no preference pairs — nothing to learn from")
    n = X.shape[0]
    if better.max(initial=-1) >= n or worse.max(initial=-1) >= n:
        raise IndexError("pair indices out of range")


def pairwise_hinge_loss(
    w: np.ndarray,
    X: np.ndarray,
    better: np.ndarray,
    worse: np.ndarray,
    C: float,
    margin: float = 1.0,
    squared: bool = True,
) -> float:
    """Objective value ``f(w)`` (used by tests and line-search diagnostics)."""
    scores = X @ w
    viol = np.maximum(0.0, margin - (scores[better] - scores[worse]))
    penalty = (viol**2).sum() if squared else viol.sum()
    return 0.5 * float(w @ w) + (C / better.size) * float(penalty)


def _objective_and_grad(
    w: np.ndarray,
    X: np.ndarray,
    better: np.ndarray,
    worse: np.ndarray,
    C: float,
    margin: float,
) -> tuple[float, np.ndarray]:
    """Squared-hinge objective and gradient without materializing pairs."""
    n = X.shape[0]
    m = better.size
    scores = X @ w
    viol = margin - (scores[better] - scores[worse])
    active = viol > 0.0
    va = viol[active]
    obj = 0.5 * float(w @ w) + (C / m) * float((va**2).sum())

    # d/dw Σ va² = Σ 2 va · (x_worse − x_better) = Xᵀ g with scattered weights
    g_per_sample = np.bincount(worse[active], weights=2.0 * va, minlength=n)
    g_per_sample -= np.bincount(better[active], weights=2.0 * va, minlength=n)
    grad = w + (C / m) * (X.T @ g_per_sample)
    return obj, grad


def solve_lbfgs(
    X: np.ndarray,
    better: np.ndarray,
    worse: np.ndarray,
    C: float,
    margin: float = 1.0,
    max_iter: int = 200,
    tol: float = 1e-7,
    w0: np.ndarray | None = None,
) -> SolverResult:
    """Deterministic squared-hinge RankSVM solve via L-BFGS."""
    _check_inputs(X, better, worse)
    d = X.shape[1]
    x0 = np.zeros(d) if w0 is None else np.asarray(w0, dtype=float).copy()
    result = optimize.minimize(
        _objective_and_grad,
        x0,
        args=(X, better, worse, float(C), float(margin)),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iter, "ftol": tol, "gtol": 1e-9},
    )
    return SolverResult(
        w=np.asarray(result.x, dtype=float),
        objective=float(result.fun),
        iterations=int(result.nit),
        converged=bool(result.success),
        solver="lbfgs",
    )


def solve_sgd(
    X: np.ndarray,
    better: np.ndarray,
    worse: np.ndarray,
    C: float,
    margin: float = 1.0,
    epochs: int = 30,
    batch_size: int = 256,
    rng: np.random.Generator | int | None = None,
    average: bool = True,
    w0: np.ndarray | None = None,
) -> SolverResult:
    """Pegasos-style SGD on the (linear) pairwise hinge.

    The regularizer weight is λ = 1/(C·m·…) in Pegasos form; here we keep
    the same objective as :func:`solve_lbfgs` (linear hinge variant) and use
    the standard 1/(λt) step schedule with iterate averaging.  ``w0``
    optionally warm-starts the iterate from a previous solution.
    """
    _check_inputs(X, better, worse)
    gen = as_generator(rng)
    n_pairs = better.size
    m = float(n_pairs)
    lam = 1.0  # coefficient of the 1/2||w||² term
    w = np.zeros(X.shape[1]) if w0 is None else np.asarray(w0, dtype=float).copy()
    w_sum = np.zeros_like(w)
    t = 0
    for _ in range(epochs):
        order = gen.permutation(n_pairs)
        for start in range(0, n_pairs, batch_size):
            t += 1
            idx = order[start : start + batch_size]
            b, wr = better[idx], worse[idx]
            margins = X[b] @ w - X[wr] @ w
            active = margins < margin
            eta = 1.0 / (lam * t)
            w *= 1.0 - eta * lam
            if active.any():
                diff = X[b[active]].sum(axis=0) - X[wr[active]].sum(axis=0)
                # per-pair weight C/m, batch-scaled to an unbiased estimate
                scale = eta * (C / m) * (n_pairs / idx.size)
                w += scale * diff
            w_sum += w
    w_final = w_sum / max(t, 1) if average else w
    obj = pairwise_hinge_loss(w_final, X, better, worse, C, margin, squared=False)
    return SolverResult(
        w=w_final, objective=obj, iterations=t, converged=True, solver="sgd"
    )
