"""RankSVM: the ordinal-regression model of the paper (Eq. 3).

The model learns a linear scoring function ``r(x) = w·x`` such that within
every stencil instance, faster executions score **higher**.  Training
consumes a :class:`~repro.ranking.partial.RankingGroups` dataset (features,
runtimes, instance ids); the per-instance partial rankings generate the
preference-pair constraints, weighted ``C/m′`` exactly as in the paper.

Conventions:

* ``decision_function`` returns scores, **higher = predicted faster**;
* ``rank`` returns candidate indices best-first;
* ``kendall_per_group`` reproduces the paper's §VI-B evaluation — the τ
  between predicted and true orderings, one value per instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.learn.solvers import SolverResult, solve_lbfgs, solve_sgd
from repro.ranking.kendall import kendall_tau
from repro.ranking.partial import RankingGroups

__all__ = ["RankSVM", "RankSVMConfig"]


@dataclass(frozen=True)
class RankSVMConfig:
    """Hyper-parameters; the paper uses a linear kernel with ``C = 0.01``.

    ``pair_weighting`` selects how the slack term scales with the number of
    preference pairs ``m``:

    * ``"sum"`` (default) — ``C · Σ ξ``.  This matches the *practical*
      strength of SVM-Rank's default ``c = 0.01``: Joachims' 1-slack
      structural formulation lets the margin violation scale with the
      number of swapped pairs, so the effective per-pair pressure does not
      vanish as the training set grows.
    * ``"mean"`` — ``(C / m) · Σ ξ``, the literal Eq. 3 of the paper.  With
      ``C = 0.01`` and tens of thousands of pairs the regularizer dominates
      and the model stays heavily underfit; kept for the faithfulness
      ablation (``benchmarks/bench_ablation_c.py``).
    """

    C: float = 0.01
    margin: float = 1.0
    solver: str = "lbfgs"
    pair_weighting: str = "sum"
    max_iter: int = 150
    tol: float = 1e-9
    #: cap on preference pairs per instance (None = all pairs)
    max_pairs_per_group: int | None = 3000
    #: relative runtime difference below which executions count as tied
    tie_tol: float = 0.005
    seed: int = 0

    def __post_init__(self) -> None:
        if self.C <= 0:
            raise ValueError(f"C must be > 0, got {self.C}")
        if self.solver not in ("lbfgs", "sgd"):
            raise ValueError(f"unknown solver {self.solver!r}; expected lbfgs/sgd")
        if self.pair_weighting not in ("sum", "mean"):
            raise ValueError(
                f"unknown pair_weighting {self.pair_weighting!r}; expected sum/mean"
            )


@dataclass
class RankSVM:
    """Linear ordinal-regression SVM over partial rankings."""

    config: RankSVMConfig = field(default_factory=RankSVMConfig)
    w_: np.ndarray | None = field(default=None, repr=False)
    solver_result_: SolverResult | None = field(default=None, repr=False)
    num_pairs_: int = 0

    # -- training ------------------------------------------------------------

    def fit(
        self, data: RankingGroups, warm_start: "np.ndarray | None" = None
    ) -> "RankSVM":
        """Train on a grouped dataset; returns self.

        ``warm_start`` optionally seeds the solver with a previous weight
        vector (e.g. the currently serving model's ``w_``) instead of zeros.
        The objective is convex, so the solution is the same up to solver
        tolerance — warm starts buy convergence speed when the data shifts
        incrementally, which is exactly the continual-retraining case.

        >>> import numpy as np
        >>> from repro.ranking.partial import RankingGroups
        >>> X = np.array([[0.0], [1.0], [0.0], [1.0]])
        >>> times = np.array([2.0, 1.0, 4.0, 3.0])  # feature 1 → faster
        >>> groups = np.array([0, 0, 1, 1])
        >>> model = RankSVM().fit(RankingGroups(X, times, groups))
        >>> bool(model.w_[0] > 0)
        True
        """
        cfg = self.config
        better, worse = data.all_pairs(
            tie_tol=cfg.tie_tol,
            max_pairs_per_group=cfg.max_pairs_per_group,
            rng=cfg.seed,
        )
        self.num_pairs_ = int(better.size)
        if warm_start is not None:
            warm_start = np.asarray(warm_start, dtype=float)
            if warm_start.shape != (data.X.shape[1],):
                raise ValueError(
                    f"warm_start has shape {warm_start.shape}, "
                    f"expected ({data.X.shape[1]},)"
                )
        # solvers implement (C/m)·Σξ; "sum" weighting passes C·m to cancel m
        c_eff = cfg.C * better.size if cfg.pair_weighting == "sum" else cfg.C
        if cfg.solver == "lbfgs":
            result = solve_lbfgs(
                data.X,
                better,
                worse,
                C=c_eff,
                margin=cfg.margin,
                max_iter=cfg.max_iter,
                tol=cfg.tol,
                w0=warm_start,
            )
        else:
            result = solve_sgd(
                data.X,
                better,
                worse,
                C=c_eff,
                margin=cfg.margin,
                rng=cfg.seed,
                w0=warm_start,
            )
        self.w_ = result.w
        self.solver_result_ = result
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.w_ is not None

    def _require_fit(self) -> np.ndarray:
        if self.w_ is None:
            raise RuntimeError("RankSVM is not fitted; call fit() first")
        return self.w_

    # -- inference -------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Scores for candidate feature rows (higher = predicted faster)."""
        w = self._require_fit()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[np.newaxis, :]
        if X.shape[1] != w.size:
            raise ValueError(
                f"feature dimension mismatch: model has {w.size}, X has {X.shape[1]}"
            )
        return X @ w

    def rank(self, X: np.ndarray) -> np.ndarray:
        """Candidate indices sorted best-first (stable under score ties)."""
        return np.argsort(-self.decision_function(X), kind="stable")

    def predict_best(self, X: np.ndarray) -> int:
        """Index of the top-ranked candidate."""
        return int(self.rank(X)[0])

    # -- evaluation ---------------------------------------------------------------

    def kendall_per_group(
        self, data: RankingGroups, variant: str = "gamma"
    ) -> dict[object, float]:
        """Per-instance Kendall τ between predicted and true orderings.

        Scores predict "faster", so τ is computed between the *negated*
        score and the runtime: +1 means the model orders the group exactly
        as the machine does.
        """
        scores = self.decision_function(data.X)
        out: dict[object, float] = {}
        for gid, rows in data.iter_groups():
            if rows.size < 2:
                continue
            out[gid] = kendall_tau(-scores[rows], data.times[rows], variant=variant)
        return out

    def mean_kendall(self, data: RankingGroups, variant: str = "gamma") -> float:
        """Mean per-group τ (the headline number of Fig. 6/7)."""
        taus = list(self.kendall_per_group(data, variant).values())
        return float(np.mean(taus)) if taus else 0.0
