"""Grouped cross-validation for the ranking model.

The paper fixes ``C = 0.01`` (SVM-Rank's default); §VII notes parameter
sensitivity as a study dimension.  This module provides the tooling a
practitioner needs to *select* C on a new machine: k-fold cross-validation
that splits **by instance group** (a stencil instance's executions must
never straddle folds, otherwise the validation τ leaks training
information), scoring each fold by mean per-group Kendall τ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.ranking.partial import RankingGroups
from repro.util.rng import spawn

__all__ = ["CVResult", "grouped_kfold", "cross_validate", "select_c"]


def grouped_kfold(
    groups: np.ndarray, k: int, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split row indices into k folds without splitting any group.

    Returns ``[(train_rows, test_rows), ...]`` with every group appearing
    in exactly one test fold.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    ids = np.unique(groups)
    if ids.size < k:
        raise ValueError(f"cannot make {k} folds from {ids.size} groups")
    rng = spawn(seed, "grouped-kfold")
    rng.shuffle(ids)
    folds = np.array_split(ids, k)
    out: list[tuple[np.ndarray, np.ndarray]] = []
    for fold_ids in folds:
        test_mask = np.isin(groups, fold_ids)
        out.append((np.flatnonzero(~test_mask), np.flatnonzero(test_mask)))
    return out


@dataclass(frozen=True)
class CVResult:
    """Cross-validation outcome for one hyper-parameter setting."""

    config: RankSVMConfig
    fold_taus: tuple[float, ...]

    @property
    def mean_tau(self) -> float:
        """Mean held-out τ across folds."""
        return float(np.mean(self.fold_taus))

    @property
    def std_tau(self) -> float:
        """Fold-to-fold standard deviation."""
        return float(np.std(self.fold_taus))


def cross_validate(
    data: RankingGroups, config: RankSVMConfig, k: int = 4, seed: int = 0
) -> CVResult:
    """k-fold grouped CV of one configuration, scored by held-out τ."""
    taus: list[float] = []
    for train_rows, test_rows in grouped_kfold(np.asarray(data.groups), k, seed):
        model = RankSVM(config).fit(data.subset(train_rows))
        taus.append(model.mean_kendall(data.subset(test_rows)))
    return CVResult(config=config, fold_taus=tuple(taus))


def select_c(
    data: RankingGroups,
    c_grid: "tuple[float, ...]" = (1e-3, 1e-2, 1e-1, 1.0),
    k: int = 4,
    seed: int = 0,
    base: "RankSVMConfig | None" = None,
) -> tuple[RankSVMConfig, list[CVResult]]:
    """Pick C by grouped CV; returns the winning config and all results.

    Ties (within one fold standard error) resolve toward *smaller* C — the
    conventional preference for the stronger regularizer.
    """
    base = base or RankSVMConfig()
    results = []
    for C in sorted(c_grid):
        cfg = RankSVMConfig(
            C=C,
            margin=base.margin,
            solver=base.solver,
            pair_weighting=base.pair_weighting,
            max_iter=base.max_iter,
            tol=base.tol,
            max_pairs_per_group=base.max_pairs_per_group,
            tie_tol=base.tie_tol,
            seed=base.seed,
        )
        results.append(cross_validate(data, cfg, k=k, seed=seed))
    best = max(results, key=lambda r: r.mean_tau)
    tolerance = best.std_tau / np.sqrt(max(k, 1))
    for r in results:  # smallest C within one SE of the best
        if r.mean_tau >= best.mean_tau - tolerance:
            return r.config, results
    return best.config, results
