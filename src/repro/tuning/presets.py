"""Pre-defined candidate sets for the standalone autotuner (paper §VI-A).

The paper evaluates the ordinal-regression model by letting it rank a fixed,
statically chosen set of tuning configurations: *"This set consists of 1600
for 2d stencils and 8640 for the 3d cases.  These options are statically
chosen in a way that the search space is hierarchically sampled, by
considering all combinations consisting of power of two values for each
tuning parameter."*

We reproduce that construction: enumerate the full power-of-two
cross-product of the space, order it hierarchically (coarse grids first:
lower maximum refinement level, then lower total refinement, then
lexicographic), and truncate to the requested size.  For the 2-D PATUS space
the full product has exactly 1600 elements, matching the paper; the 3-D
product is larger, and truncation keeps the hierarchically coarsest 8640 —
the same kind of "sampled hierarchically" subset the paper describes.
"""

from __future__ import annotations

from itertools import product

from repro.tuning.space import TuningSpace, patus_space
from repro.tuning.vector import TuningVector

__all__ = [
    "hierarchical_pow2_candidates",
    "preset_candidates",
    "PRESET_SIZE_2D",
    "PRESET_SIZE_3D",
]

#: Candidate-set sizes used throughout the paper's evaluation.
PRESET_SIZE_2D = 1600
PRESET_SIZE_3D = 8640


def _refinement_levels(grid: tuple[int, ...], value: int) -> int:
    """Position of ``value`` inside its parameter grid = its refinement depth."""
    return grid.index(value)


def hierarchical_pow2_candidates(
    space: TuningSpace, max_size: int | None = None
) -> list[TuningVector]:
    """All power-of-two grid combinations, hierarchically ordered.

    The ordering key per combination is ``(max level, sum of levels,
    lexicographic levels)`` where a parameter's *level* is its index in the
    parameter's power-of-two grid.  Level-0 everywhere is the coarsest
    configuration; increasing the key refines one axis at a time — exactly a
    hierarchical sampling of the grid.  Truncating the ordered list therefore
    keeps a well-spread, coarse-to-fine subset.
    """
    grids = [p.grid() for p in space.parameters]
    combos = []
    for values in product(*grids):
        levels = tuple(
            _refinement_levels(grid, v) for grid, v in zip(grids, values)
        )
        key = (max(levels), sum(levels), levels)
        combos.append((key, values))
    combos.sort(key=lambda item: item[0])
    if max_size is not None:
        combos = combos[:max_size]
    return [TuningVector.from_iterable(values) for _, values in combos]


def preset_candidates(dims: int) -> list[TuningVector]:
    """The paper's pre-defined candidate set: 1600 (2-D) or 8640 (3-D).

    >>> len(preset_candidates(2))
    1600
    >>> len(preset_candidates(3))
    8640
    """
    if dims == 2:
        return hierarchical_pow2_candidates(patus_space(2), PRESET_SIZE_2D)
    if dims == 3:
        return hierarchical_pow2_candidates(patus_space(3), PRESET_SIZE_3D)
    raise ValueError(f"dims must be 2 or 3, got {dims}")
