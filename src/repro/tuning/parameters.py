"""Parameter types composing a tuning space.

Each parameter knows its own domain, how to sample uniformly from it, how to
clip arbitrary values back into it, how to propose neighbours (for local
search moves), and its canonical power-of-two grid (for the paper's
pre-defined candidate sets).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_power_of_two

__all__ = ["Parameter", "IntParameter", "PowerOfTwoParameter"]


class Parameter(abc.ABC):
    """Abstract integer tuning parameter over a closed range."""

    name: str
    lo: int
    hi: int

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw a uniform random legal value."""

    @abc.abstractmethod
    def clip(self, value: float) -> int:
        """Map an arbitrary real to the nearest legal value."""

    @abc.abstractmethod
    def grid(self) -> tuple[int, ...]:
        """The canonical power-of-two grid inside the domain."""

    @abc.abstractmethod
    def cardinality(self) -> int:
        """Number of legal values."""

    def contains(self, value: int) -> bool:
        """True iff ``value`` is a legal setting for this parameter."""
        return self.clip(value) == value

    def neighbor(self, value: int, rng: np.random.Generator, scale: float = 1.0) -> int:
        """A local move: perturb ``value`` by a step proportional to ``scale``.

        The default implementation takes a geometric-ish step in the clipped
        domain; power-of-two parameters override this to move along the
        exponent axis, which is the natural metric for block sizes.
        """
        span = max(self.hi - self.lo, 1)
        step = rng.normal(0.0, max(scale * span * 0.1, 0.5))
        return self.clip(value + step)

    def normalize(self, value: int) -> float:
        """Map a legal value into ``[0, 1]`` (linear by default)."""
        if self.hi == self.lo:
            return 0.0
        return (value - self.lo) / (self.hi - self.lo)

    def from_unit(self, u: float) -> int:
        """Inverse of :meth:`normalize`: map ``[0, 1]`` to the nearest legal
        value (continuous optimizers like DE/ES navigate this unit space)."""
        u = float(np.clip(u, 0.0, 1.0))
        return self.clip(self.lo + u * (self.hi - self.lo))


@dataclass
class IntParameter(Parameter):
    """Uniform integer range ``[lo, hi]``.

    ``grid_values`` optionally overrides the default power-of-two grid used
    by the pre-defined candidate sets (e.g. the unroll factor uses
    ``{0, 2, 4, 8}`` because ``u = 0`` means "no unrolling" and is equivalent
    to ``u = 1``).

    >>> p = IntParameter("u", 0, 8)
    >>> p.cardinality()
    9
    >>> p.clip(12.7)
    8
    """

    name: str
    lo: int
    hi: int
    grid_values: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"{self.name}: hi < lo ({self.hi} < {self.lo})")
        if self.grid_values is not None:
            bad = [v for v in self.grid_values if not self.lo <= v <= self.hi]
            if bad:
                raise ValueError(f"{self.name}: grid values {bad} outside [{self.lo}, {self.hi}]")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    def clip(self, value: float) -> int:
        return int(np.clip(round(float(value)), self.lo, self.hi))

    def grid(self) -> tuple[int, ...]:
        if self.grid_values is not None:
            return tuple(self.grid_values)
        vals = [v for v in _pow2_between(max(self.lo, 1), self.hi)]
        if self.lo <= 0:
            vals = [self.lo, *vals]
        return tuple(dict.fromkeys(vals))

    def cardinality(self) -> int:
        return self.hi - self.lo + 1


@dataclass
class PowerOfTwoParameter(Parameter):
    """Power-of-two values in ``[lo, hi]`` (both powers of two).

    Block sizes are navigated on the exponent axis: a "step of one" doubles
    or halves the block, which matches how tile-size landscapes behave.

    >>> p = PowerOfTwoParameter("bx", 2, 1024)
    >>> p.cardinality()
    10
    >>> p.clip(100)
    128
    """

    name: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        check_power_of_two(f"{self.name}.lo", self.lo)
        check_power_of_two(f"{self.name}.hi", self.hi)
        if self.hi < self.lo:
            raise ValueError(f"{self.name}: hi < lo ({self.hi} < {self.lo})")

    @property
    def lo_exp(self) -> int:
        return int(self.lo).bit_length() - 1

    @property
    def hi_exp(self) -> int:
        return int(self.hi).bit_length() - 1

    def sample(self, rng: np.random.Generator) -> int:
        return 1 << int(rng.integers(self.lo_exp, self.hi_exp + 1))

    def clip(self, value: float) -> int:
        value = float(max(value, 1))
        exp = int(np.clip(round(np.log2(value)), self.lo_exp, self.hi_exp))
        return 1 << exp

    def grid(self) -> tuple[int, ...]:
        return tuple(1 << e for e in range(self.lo_exp, self.hi_exp + 1))

    def cardinality(self) -> int:
        return self.hi_exp - self.lo_exp + 1

    def neighbor(self, value: int, rng: np.random.Generator, scale: float = 1.0) -> int:
        exp = int(max(value, 1)).bit_length() - 1
        step = int(round(rng.normal(0.0, max(scale, 0.5))))
        if step == 0:
            step = int(rng.choice([-1, 1]))
        new_exp = int(np.clip(exp + step, self.lo_exp, self.hi_exp))
        return 1 << new_exp

    def normalize(self, value: int) -> float:
        """Log-scale normalization: exponent mapped linearly into [0, 1]."""
        if self.hi_exp == self.lo_exp:
            return 0.0
        exp = np.log2(max(float(value), 1.0))
        return float((exp - self.lo_exp) / (self.hi_exp - self.lo_exp))

    def from_unit(self, u: float) -> int:
        """Unit space maps linearly onto the *exponent* axis."""
        u = float(np.clip(u, 0.0, 1.0))
        exp = self.lo_exp + u * (self.hi_exp - self.lo_exp)
        return 1 << int(round(exp))


def _pow2_between(lo: int, hi: int) -> list[int]:
    vals = []
    v = 1
    while v <= hi:
        if v >= lo:
            vals.append(v)
        v <<= 1
    return vals
