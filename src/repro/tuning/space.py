"""The tuning space ``T`` the autotuner explores (paper §IV, §V).

A :class:`TuningSpace` is an ordered set of :class:`~repro.tuning.parameters.
Parameter` objects together with vector-level operations used by the search
algorithms: uniform sampling, clipping, neighbour moves, crossover and
array encoding/decoding.  :func:`patus_space` builds the concrete PATUS
space used throughout the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.tuning.parameters import IntParameter, Parameter, PowerOfTwoParameter
from repro.tuning.vector import TuningVector
from repro.util.rng import as_generator

__all__ = ["TuningSpace", "patus_space"]

_PARAM_ORDER = ("bx", "by", "bz", "unroll", "chunk")


@dataclass
class TuningSpace:
    """Search space over tuning vectors for a stencil of given dimensionality.

    >>> space = patus_space(dims=3)
    >>> space.dims, len(space.parameters)
    (3, 5)
    >>> space.contains(TuningVector(64, 8, 4, 2, 1))
    True
    """

    dims: int
    parameters: tuple[Parameter, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.dims not in (2, 3):
            raise ValueError(f"dims must be 2 or 3, got {self.dims}")
        names = [p.name for p in self.parameters]
        if names != list(_PARAM_ORDER):
            raise ValueError(f"parameters must be named {_PARAM_ORDER}, got {names}")

    # -- basic queries -----------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Canonical parameter names in order."""
        return _PARAM_ORDER

    def parameter(self, name: str) -> Parameter:
        """Look up a parameter by name."""
        for p in self.parameters:
            if p.name == name:
                return p
        raise KeyError(name)

    def cardinality(self) -> int:
        """Size of the full cross-product space.

        The paper quotes ~10^6.5 for OpenTuner's stencil space; the exact
        number here depends on the parameter domains but is of the same
        order for the power-of-two PATUS space.
        """
        n = 1
        for p in self.parameters:
            n *= p.cardinality()
        return n

    def contains(self, vector: TuningVector) -> bool:
        """True iff every component is a legal setting."""
        return all(
            p.contains(v) for p, v in zip(self.parameters, vector.as_tuple())
        )

    # -- sampling / repair ---------------------------------------------------

    def clip(self, values: Iterable[float]) -> TuningVector:
        """Repair an arbitrary real 5-vector into the nearest legal vector."""
        vals = list(values)
        if len(vals) != len(self.parameters):
            raise ValueError(f"expected {len(self.parameters)} values, got {len(vals)}")
        clipped = [p.clip(v) for p, v in zip(self.parameters, vals)]
        return TuningVector.from_iterable(clipped)

    def random_vector(self, rng: np.random.Generator | int | None = None) -> TuningVector:
        """Draw a uniform random tuning vector."""
        gen = as_generator(rng)
        return TuningVector.from_iterable([p.sample(gen) for p in self.parameters])

    def random_vectors(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        unique: bool = True,
        max_tries_factor: int = 50,
    ) -> list[TuningVector]:
        """Draw ``n`` random vectors, de-duplicated by default.

        Falls back to allowing duplicates if the space is too small to supply
        ``n`` distinct vectors within ``n * max_tries_factor`` draws.
        """
        gen = as_generator(rng)
        out: list[TuningVector] = []
        seen: set[TuningVector] = set()
        tries = 0
        while len(out) < n:
            vec = self.random_vector(gen)
            tries += 1
            if unique and vec in seen:
                if tries > n * max_tries_factor:
                    unique = False
                continue
            seen.add(vec)
            out.append(vec)
        return out

    def neighbor(
        self,
        vector: TuningVector,
        rng: np.random.Generator | int | None = None,
        scale: float = 1.0,
        n_moves: int = 1,
    ) -> TuningVector:
        """Propose a local move: perturb ``n_moves`` randomly chosen components."""
        gen = as_generator(rng)
        values = list(vector.as_tuple())
        idxs = gen.choice(len(values), size=min(n_moves, len(values)), replace=False)
        for i in idxs:
            values[i] = self.parameters[i].neighbor(values[i], gen, scale)
        return TuningVector.from_iterable(values)

    def crossover(
        self,
        a: TuningVector,
        b: TuningVector,
        rng: np.random.Generator | int | None = None,
    ) -> TuningVector:
        """Uniform crossover of two parents (used by the genetic algorithms)."""
        gen = as_generator(rng)
        mask = gen.integers(0, 2, size=len(self.parameters)).astype(bool)
        values = [
            av if take_a else bv
            for av, bv, take_a in zip(a.as_tuple(), b.as_tuple(), mask)
        ]
        return TuningVector.from_iterable(values)

    # -- array encoding ------------------------------------------------------

    def encode(self, vectors: Sequence[TuningVector]) -> np.ndarray:
        """Stack vectors into an ``(n, 5)`` float array (raw values)."""
        return np.array([v.as_tuple() for v in vectors], dtype=float)

    def decode(self, array: np.ndarray) -> list[TuningVector]:
        """Clip each row of an ``(n, 5)`` array back into legal vectors."""
        arr = np.atleast_2d(np.asarray(array, dtype=float))
        return [self.clip(row) for row in arr]

    def normalize(self, vectors: Sequence[TuningVector]) -> np.ndarray:
        """Per-parameter ``[0, 1]`` encoding (log-scale for pow-2 params).

        This is the tuning part of the paper's feature vector.
        """
        raw = self.encode(vectors)
        out = np.empty_like(raw)
        for j, p in enumerate(self.parameters):
            out[:, j] = [p.normalize(int(v)) for v in raw[:, j]]
        return out

    def to_unit(self, vector: TuningVector) -> np.ndarray:
        """Map one vector into the continuous unit cube ``[0, 1]^5``."""
        return np.array(
            [p.normalize(v) for p, v in zip(self.parameters, vector.as_tuple())]
        )

    def from_unit(self, unit: np.ndarray) -> TuningVector:
        """Snap a unit-cube point to the nearest legal tuning vector
        (continuous optimizers like DE and ES move in this space)."""
        unit = np.asarray(unit, dtype=float)
        if unit.shape != (len(self.parameters),):
            raise ValueError(f"expected shape ({len(self.parameters)},), got {unit.shape}")
        return TuningVector.from_iterable(
            [p.from_unit(u) for p, u in zip(self.parameters, unit)]
        )


def patus_space(
    dims: int,
    block_lo: int = 2,
    block_hi: int = 1024,
    unroll_hi: int = 8,
    chunk_hi: int = 8,
) -> TuningSpace:
    """The PATUS tuning space of the paper (§V).

    ``bx, by`` (and ``bz`` for 3-D kernels) are power-of-two block sizes in
    ``[2, 1024]``; the unroll factor ranges 0–8 (0 = no unrolling); the chunk
    size is a power of two.  For 2-D stencils the ``bz`` parameter is pinned
    to the single value 1 so that both spaces share the same 5-vector layout
    (and hence the same feature encoding).

    With the default domains, the power-of-two grid cross-product has exactly
    1600 elements for 2-D kernels (10 × 10 block grids, unroll grid
    ``{0, 2, 4, 8}``, chunk grid ``{1, 2, 4, 8}``) — the size of the paper's
    pre-defined 2-D candidate set.
    """
    if dims == 3:
        bz: Parameter = PowerOfTwoParameter("bz", block_lo, block_hi)
    else:
        bz = PowerOfTwoParameter("bz", 1, 1)
    unroll_grid = tuple(v for v in (0, 2, 4, 8) if v <= unroll_hi)
    return TuningSpace(
        dims=dims,
        parameters=(
            PowerOfTwoParameter("bx", block_lo, block_hi),
            PowerOfTwoParameter("by", block_lo, block_hi),
            bz,
            IntParameter("unroll", 0, unroll_hi, grid_values=unroll_grid),
            PowerOfTwoParameter("chunk", 1, chunk_hi),
        ),
    )
