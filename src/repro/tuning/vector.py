"""The tuning vector ``t = (bx, by, bz, u, c)`` (paper §V).

A :class:`TuningVector` is a frozen value object so it can key dictionaries
(evaluation caches, search archives) and be shared freely between search
algorithms and the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["TuningVector"]


@dataclass(frozen=True, order=True)
class TuningVector:
    """Blocking sizes, unroll factor and chunk size for one stencil variant.

    >>> t = TuningVector(bx=64, by=8, bz=4, unroll=2, chunk=1)
    >>> t.block_volume
    2048
    >>> t.as_tuple()
    (64, 8, 4, 2, 1)
    """

    bx: int
    by: int
    bz: int = 1
    unroll: int = 0
    chunk: int = 1
    #: precomputed content hash (set in __post_init__; equal-content vectors
    #: share it, so set-level digests can combine keys instead of re-hashing
    #: every field — see repro.service.cache.candidate_set_hash)
    content_key: int = field(init=False, compare=False, repr=False, default=0)

    def __post_init__(self) -> None:
        for name in ("bx", "by", "bz", "chunk"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
            object.__setattr__(self, name, int(value))
        if not isinstance(self.unroll, (int, np.integer)) or self.unroll < 0:
            raise ValueError(f"unroll must be a non-negative integer, got {self.unroll!r}")
        object.__setattr__(self, "unroll", int(self.unroll))
        # the tuple view and a content key are requested on every encode/hash
        # of every candidate (service hot path); cache both once — the
        # object is frozen anyway
        astuple = (self.bx, self.by, self.bz, self.unroll, self.chunk)
        object.__setattr__(self, "_astuple", astuple)
        object.__setattr__(self, "content_key", hash(astuple))

    @property
    def block(self) -> tuple[int, int, int]:
        """The tile dimensions ``(bx, by, bz)``."""
        return (self.bx, self.by, self.bz)

    @property
    def block_volume(self) -> int:
        """Number of grid points per tile."""
        return self.bx * self.by * self.bz

    @property
    def effective_unroll(self) -> int:
        """Unroll factor as replication count: 0 (off) and 1 both mean ×1."""
        return max(self.unroll, 1)

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        """``(bx, by, bz, unroll, chunk)``."""
        return self._astuple

    def as_array(self) -> np.ndarray:
        """Float array view, in the canonical parameter order."""
        return np.array(self.as_tuple(), dtype=float)

    @classmethod
    def from_iterable(cls, values: "list[int] | tuple[int, ...] | np.ndarray") -> "TuningVector":
        """Build from 5 values in canonical order (inverse of :meth:`as_tuple`)."""
        vals = [int(round(float(v))) for v in values]
        if len(vals) != 5:
            raise ValueError(f"expected 5 values (bx, by, bz, u, c), got {len(vals)}")
        return cls(bx=vals[0], by=vals[1], bz=vals[2], unroll=vals[3], chunk=vals[4])

    def replace(self, **changes: int) -> "TuningVector":
        """Return a copy with some fields replaced."""
        fields = dict(bx=self.bx, by=self.by, bz=self.bz, unroll=self.unroll, chunk=self.chunk)
        fields.update(changes)
        return TuningVector(**fields)

    def __iter__(self) -> Iterator[int]:
        return iter(self.as_tuple())

    def __str__(self) -> str:
        return f"(bx={self.bx}, by={self.by}, bz={self.bz}, u={self.unroll}, c={self.chunk})"
