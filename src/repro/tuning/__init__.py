"""Tuning-parameter modeling (paper §III-B and §V).

The PATUS transformation set exposes five integer parameters per stencil:

* ``bx, by, bz`` — loop-blocking (tile) sizes per dimension, 2 … 1024
  (``bz`` degenerates to 1 for 2-D kernels);
* ``u`` — innermost-loop unroll factor, 0 (no unrolling) … 8;
* ``c`` — chunk size: how many consecutive tiles are assigned to the same
  OpenMP thread.

This package defines the parameter/space abstractions used by both the
search algorithms (which navigate the space) and the feature encoder (which
normalizes tuning vectors into ``[0, 1]``), plus the paper's pre-defined
hierarchical power-of-two candidate sets (1600 configurations for 2-D
stencils, 8640 for 3-D).
"""

from repro.tuning.parameters import IntParameter, Parameter, PowerOfTwoParameter
from repro.tuning.vector import TuningVector
from repro.tuning.space import TuningSpace, patus_space
from repro.tuning.presets import hierarchical_pow2_candidates, preset_candidates

__all__ = [
    "IntParameter",
    "Parameter",
    "PowerOfTwoParameter",
    "TuningSpace",
    "TuningVector",
    "hierarchical_pow2_candidates",
    "patus_space",
    "preset_candidates",
]
