"""Partial-ranking structure of the training data (paper §IV-D).

Runtimes are only comparable *within* one stencil instance ``q = (k, s)``;
the training set is therefore a union of per-instance (partial) rankings
``P₁ … Pₙ``.  :class:`RankingGroups` carries feature rows, runtimes and the
group id of every sample, and knows how to enumerate the within-group
preference pairs the RankSVM constraints are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.util.rng import as_generator

__all__ = ["ranks_from_runtimes", "group_pairs", "RankingGroups"]


def ranks_from_runtimes(times: "np.ndarray | list[float]", tie_tol: float = 0.0) -> np.ndarray:
    """1-based ranks, fastest first, ties sharing a rank (paper Table I).

    ``tie_tol`` treats runtimes within a relative tolerance as tied —
    autotuning practice, since sub-noise differences are not real ordering
    information.

    >>> ranks_from_runtimes([12.0, 13.0, 20.0]).tolist()
    [1, 2, 3]
    >>> ranks_from_runtimes([10.0, 36.0, 35.0]).tolist()
    [1, 3, 2]
    >>> ranks_from_runtimes([5.0, 5.0, 7.0]).tolist()
    [1, 1, 3]
    """
    t = np.asarray(times, dtype=float)
    order = np.argsort(t, kind="stable")
    ranks = np.empty(t.size, dtype=np.int64)
    rank = 1
    prev_time = None
    prev_rank = 1
    for pos, idx in enumerate(order, start=1):
        if prev_time is not None and _tied(t[idx], prev_time, tie_tol):
            ranks[idx] = prev_rank
        else:
            ranks[idx] = pos
            prev_rank = pos
            prev_time = t[idx]
        rank += 1
    return ranks


def _tied(a: float, b: float, tol: float) -> bool:
    if tol <= 0:
        return a == b
    scale = max(abs(a), abs(b), 1e-300)
    return abs(a - b) / scale <= tol


def group_pairs(
    times: np.ndarray,
    tie_tol: float = 0.0,
    max_pairs: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Preference pairs (better_idx, worse_idx) within one group.

    All ordered pairs with a strict (beyond ``tie_tol``) runtime difference
    are produced; if ``max_pairs`` is set, a uniform subsample is drawn —
    the standard way to cap the quadratic pair blow-up on large groups.
    """
    t = np.asarray(times, dtype=float)
    n = t.size
    if n < 2:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    i_idx, j_idx = np.triu_indices(n, k=1)
    ti, tj = t[i_idx], t[j_idx]
    if tie_tol > 0:
        scale = np.maximum(np.maximum(np.abs(ti), np.abs(tj)), 1e-300)
        distinct = np.abs(ti - tj) / scale > tie_tol
    else:
        distinct = ti != tj
    i_idx, j_idx, ti, tj = i_idx[distinct], j_idx[distinct], ti[distinct], tj[distinct]
    better = np.where(ti < tj, i_idx, j_idx)
    worse = np.where(ti < tj, j_idx, i_idx)
    if max_pairs is not None and better.size > max_pairs:
        gen = as_generator(rng)
        sel = gen.choice(better.size, size=max_pairs, replace=False)
        better, worse = better[sel], worse[sel]
    return better, worse


@dataclass
class RankingGroups:
    """A grouped ranking dataset: features, runtimes, group ids.

    ``groups`` assigns each row to the stencil instance it was measured on;
    ids need not be contiguous or sorted.
    """

    X: np.ndarray
    times: np.ndarray
    groups: np.ndarray

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.times = np.asarray(self.times, dtype=float)
        self.groups = np.asarray(self.groups)
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-D, got ndim={self.X.ndim}")
        n = self.X.shape[0]
        if self.times.shape != (n,) or self.groups.shape != (n,):
            raise ValueError(
                f"inconsistent sizes: X has {n} rows, times {self.times.shape}, "
                f"groups {self.groups.shape}"
            )

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def num_groups(self) -> int:
        """Number of distinct stencil instances."""
        return int(np.unique(self.groups).size)

    def iter_groups(self) -> Iterator[tuple[object, np.ndarray]]:
        """Yield ``(group_id, row_indices)`` per instance."""
        ids, inverse = np.unique(self.groups, return_inverse=True)
        for g, gid in enumerate(ids):
            yield gid, np.flatnonzero(inverse == g)

    def all_pairs(
        self,
        tie_tol: float = 0.0,
        max_pairs_per_group: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Global (better, worse) row-index arrays over all groups (the
        union ``⋃ᵢ Pᵢ`` of the paper's Eq. 3)."""
        gen = as_generator(rng)
        betters: list[np.ndarray] = []
        worses: list[np.ndarray] = []
        for _, rows in self.iter_groups():
            b, w = group_pairs(
                self.times[rows],
                tie_tol=tie_tol,
                max_pairs=max_pairs_per_group,
                rng=gen,
            )
            betters.append(rows[b])
            worses.append(rows[w])
        if not betters:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(betters), np.concatenate(worses)

    def subset(self, rows: np.ndarray) -> "RankingGroups":
        """Row-sliced copy (used by train/validation splits)."""
        return RankingGroups(self.X[rows], self.times[rows], self.groups[rows])

    def split_by_group(
        self,
        train_fraction: float,
        rng: np.random.Generator | int | None = None,
    ) -> tuple["RankingGroups", "RankingGroups"]:
        """Split whole groups into train/test (groups never straddle)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        gen = as_generator(rng)
        ids = np.unique(self.groups)
        gen.shuffle(ids)
        n_train = max(1, int(round(train_fraction * ids.size)))
        train_ids = set(ids[:n_train].tolist())
        mask = np.array([g in train_ids for g in self.groups])
        return self.subset(np.flatnonzero(mask)), self.subset(np.flatnonzero(~mask))
