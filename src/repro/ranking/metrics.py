"""Ranking-quality metrics beyond Kendall τ.

These support the evaluation harnesses and the ablation studies: Spearman's
rho as a second correlation view, and autotuning-specific metrics —
``top_k_regret`` (how much slower is the best of the model's top-k picks
than the true optimum) and ``top1_slowdown`` (the Fig. 4 quantity: the
model's single pick versus a reference configuration).
"""

from __future__ import annotations

import numpy as np

__all__ = ["spearman_rho", "top_k_regret", "precision_at_k", "top1_slowdown"]


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with tie handling."""
    v = np.asarray(values, dtype=float)
    order = np.argsort(v, kind="stable")
    ranks = np.empty(v.size, dtype=float)
    ranks[order] = np.arange(1, v.size + 1, dtype=float)
    # average ranks over ties
    unique_vals, inv, counts = np.unique(v, return_inverse=True, return_counts=True)
    sums = np.zeros(unique_vals.size)
    np.add.at(sums, inv, ranks)
    return sums[inv] / counts[inv]


def spearman_rho(x: "np.ndarray | list[float]", y: "np.ndarray | list[float]") -> float:
    """Spearman rank correlation (Pearson correlation of the rank vectors).

    >>> spearman_rho([1, 2, 3], [10, 20, 30])
    1.0
    """
    rx = _rankdata(np.asarray(x, dtype=float))
    ry = _rankdata(np.asarray(y, dtype=float))
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx**2).sum() * (ry**2).sum())
    return float((rx * ry).sum() / denom) if denom > 0 else 0.0


def top_k_regret(times: np.ndarray, scores: np.ndarray, k: int = 1) -> float:
    """Relative regret of the best runtime among the model's top-k picks.

    ``scores`` are model scores where **higher is better**; ``times`` are
    true runtimes (lower is better).  0.0 means the top-k contained the true
    optimum; 0.25 means the best pick is 25 % slower than optimal.
    """
    t = np.asarray(times, dtype=float)
    s = np.asarray(scores, dtype=float)
    if t.shape != s.shape or t.ndim != 1 or t.size == 0:
        raise ValueError("times and scores must be equal-length non-empty 1-D")
    k = max(1, min(k, t.size))
    picks = np.argsort(-s, kind="stable")[:k]
    best_pick = float(t[picks].min())
    best_true = float(t.min())
    return best_pick / best_true - 1.0


def precision_at_k(times: np.ndarray, scores: np.ndarray, k: int = 10) -> float:
    """Fraction of the model's top-k picks that are within the true top-k."""
    t = np.asarray(times, dtype=float)
    s = np.asarray(scores, dtype=float)
    k = max(1, min(k, t.size))
    pred_top = set(np.argsort(-s, kind="stable")[:k].tolist())
    true_top = set(np.argsort(t, kind="stable")[:k].tolist())
    return len(pred_top & true_top) / k


def top1_slowdown(times: np.ndarray, scores: np.ndarray, reference_time: float) -> float:
    """Speedup of the model's top pick relative to a reference runtime.

    This is the Fig. 4 quantity: > 1 means the model's configuration beats
    the reference (e.g. the GA-1024 solution).
    """
    t = np.asarray(times, dtype=float)
    s = np.asarray(scores, dtype=float)
    pick = int(np.argmax(s))
    if t[pick] <= 0:
        raise ValueError("runtimes must be positive")
    return float(reference_time / t[pick])
