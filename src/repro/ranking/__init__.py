"""Rank mathematics: Kendall correlation, partial rankings, rank metrics.

The paper's evaluation (§VI-B) scores ranking quality with the Kendall τ
coefficient between the model's predicted ordering of tuning configurations
and the true runtime ordering, computed per stencil instance (rankings are
only defined *within* an instance — the partial-ranking structure of §IV-D).
"""

from repro.ranking.kendall import (
    count_inversions,
    kendall_tau,
    kendall_tau_naive,
)
from repro.ranking.partial import (
    RankingGroups,
    group_pairs,
    ranks_from_runtimes,
)
from repro.ranking.metrics import (
    precision_at_k,
    spearman_rho,
    top_k_regret,
    top1_slowdown,
)

__all__ = [
    "RankingGroups",
    "count_inversions",
    "group_pairs",
    "kendall_tau",
    "kendall_tau_naive",
    "precision_at_k",
    "ranks_from_runtimes",
    "spearman_rho",
    "top1_slowdown",
    "top_k_regret",
]
