"""Kendall rank correlation (paper §VI-B).

The paper uses ``τ = (Con − Dis) / (Con + Dis)``: +1 for perfect agreement,
−1 for perfect disagreement, ≈0 for independent orderings.  With ties that
denominator excludes tied pairs, which statisticians call the
Goodman–Kruskal gamma; without ties it coincides with the classic τ-a.
Both variants (plus the tie-corrected τ-b) are provided.

Counting discordant pairs is done with Knight's O(n log n) algorithm:
sort by the first ranking, then count inversions of the second with a
merge sort.  A vectorized O(n²) implementation is kept as a cross-check
oracle for the tests and for tiny inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kendall_tau", "kendall_tau_naive", "count_inversions"]


def count_inversions(values: np.ndarray) -> int:
    """Number of pairs ``i < j`` with ``values[i] > values[j]`` (mergesort).

    >>> count_inversions(np.array([1, 2, 3]))
    0
    >>> count_inversions(np.array([3, 2, 1]))
    3
    """
    arr = np.asarray(values).copy()
    n = arr.size
    if n < 2:
        return 0
    buf = np.empty_like(arr)
    inversions = 0
    width = 1
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            if mid >= hi:
                continue
            left, right = arr[lo:mid], arr[mid:hi]
            # each right element jumps over the left elements STRICTLY
            # greater than it (ties are not inversions), hence side="right"
            pos = np.searchsorted(left, right, side="right")
            inversions += int((left.size - pos).sum())
            merged = np.concatenate([left, right])
            order = np.argsort(merged, kind="stable")
            buf[lo:hi] = merged[order]
            arr[lo:hi] = buf[lo:hi]
        width *= 2
    return inversions


def _tie_pairs(sorted_values: np.ndarray) -> int:
    """Number of tied pairs in a sorted array."""
    _, counts = np.unique(sorted_values, return_counts=True)
    return int((counts * (counts - 1) // 2).sum())


def kendall_tau(
    x: "np.ndarray | list[float]",
    y: "np.ndarray | list[float]",
    variant: str = "gamma",
) -> float:
    """Kendall rank correlation between two orderings.

    ``variant``:
      * ``"gamma"`` (paper): ``(Con − Dis) / (Con + Dis)``;
      * ``"a"``: ``(Con − Dis) / (n(n−1)/2)``;
      * ``"b"``: tie-corrected τ-b.

    >>> kendall_tau([1, 2, 3, 4], [1, 2, 3, 4])
    1.0
    >>> kendall_tau([1, 2, 3, 4], [4, 3, 2, 1])
    -1.0
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError(f"need equal-length 1-D inputs, got {xa.shape} vs {ya.shape}")
    n = xa.size
    n0 = n * (n - 1) // 2
    if n0 == 0:
        return 0.0

    # sort by x, breaking x-ties by y (Knight's preparation)
    order = np.lexsort((ya, xa))
    xs, ys = xa[order], ya[order]

    n1 = _tie_pairs(xs)  # ties in x
    n2 = _tie_pairs(np.sort(ya))  # ties in y
    # joint ties (same x and same y)
    joint = np.lexsort((ys, xs))
    pairs_xy = np.column_stack([xs[joint], ys[joint]])
    _, joint_counts = np.unique(pairs_xy, axis=0, return_counts=True)
    n3 = int((joint_counts * (joint_counts - 1) // 2).sum())

    dis = count_inversions(ys)
    # inversions among x-ties are not discordant (they're x-tied pairs)
    dis -= _x_tie_inversions(xs, ys)

    con = n0 - n1 - n2 + n3 - dis
    if variant == "gamma":
        denom = con + dis
        return float((con - dis) / denom) if denom > 0 else 0.0
    if variant == "a":
        return float((con - dis) / n0)
    if variant == "b":
        denom = np.sqrt(float(n0 - n1) * float(n0 - n2))
        return float((con - dis) / denom) if denom > 0 else 0.0
    raise ValueError(f"unknown variant {variant!r}; expected gamma/a/b")


def _x_tie_inversions(xs: np.ndarray, ys: np.ndarray) -> int:
    """Inversions of y occurring inside runs of equal x (not discordant)."""
    total = 0
    start = 0
    for i in range(1, xs.size + 1):
        if i == xs.size or xs[i] != xs[start]:
            if i - start > 1:
                total += count_inversions(ys[start:i])
            start = i
    return total


def kendall_tau_naive(
    x: "np.ndarray | list[float]",
    y: "np.ndarray | list[float]",
    variant: str = "gamma",
) -> float:
    """O(n²) reference implementation (vectorized sign comparison)."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    n = xa.size
    n0 = n * (n - 1) // 2
    if n0 == 0:
        return 0.0
    sx = np.sign(xa[:, None] - xa[None, :])
    sy = np.sign(ya[:, None] - ya[None, :])
    prod = sx * sy
    iu = np.triu_indices(n, k=1)
    con = int((prod[iu] > 0).sum())
    dis = int((prod[iu] < 0).sum())
    if variant == "gamma":
        denom = con + dis
        return float((con - dis) / denom) if denom > 0 else 0.0
    if variant == "a":
        return float((con - dis) / n0)
    if variant == "b":
        n1 = int(((sx[iu] == 0)).sum())
        n2 = int(((sy[iu] == 0)).sum())
        denom = np.sqrt(float(n0 - n1) * float(n0 - n2))
        return float((con - dis) / denom) if denom > 0 else 0.0
    raise ValueError(f"unknown variant {variant!r}")
