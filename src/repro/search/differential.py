"""Differential evolution over the unit-cube view of the tuning space.

DE is a continuous-space method; integer/power-of-two parameters are
handled by keeping the population in ``[0, 1]^5`` (block sizes live on
their exponent axis there) and snapping to legal vectors only for
evaluation — the standard discrete-DE recipe.  Classic *DE/rand/1/bin*
mutation and binomial crossover, in the **synchronous** (generational)
variant: all trial vectors of a generation are built from the same
population snapshot and measured in one batch pass, then selection is
applied — which is what lets the whole generation ride the vectorized
measurement pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.search.base import SearchAlgorithm
from repro.stencil.instance import StencilInstance

__all__ = ["DifferentialEvolution"]


class DifferentialEvolution(SearchAlgorithm):
    """DE/rand/1/bin adapted to the discrete tuning space."""

    name = "differential-evolution"

    population_size: int = 24
    weight: float = 0.7  # F
    crossover_rate: float = 0.6  # CR

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        d = len(self.space.parameters)
        pop_unit = rng.random((self.population_size, d))
        fitness = self._evaluate_population(
            [self.space.from_unit(u) for u in pop_unit]
        )

        while True:
            trial_units = np.empty_like(pop_unit)
            for i in range(self.population_size):
                r1, r2, r3 = rng.choice(
                    [j for j in range(self.population_size) if j != i],
                    size=3,
                    replace=False,
                )
                mutant = pop_unit[r1] + self.weight * (pop_unit[r2] - pop_unit[r3])
                mutant = np.clip(mutant, 0.0, 1.0)
                cross = rng.random(d) < self.crossover_rate
                cross[rng.integers(d)] = True  # guarantee one mutant gene
                trial_units[i] = np.where(cross, mutant, pop_unit[i])
            trial_fit = self.evaluate_batch(
                [self.space.from_unit(u) for u in trial_units]
            )
            improved = trial_fit <= fitness
            pop_unit[improved] = trial_units[improved]
            fitness = np.where(improved, trial_fit, fitness)
