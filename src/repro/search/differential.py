"""Differential evolution over the unit-cube view of the tuning space.

DE is a continuous-space method; integer/power-of-two parameters are
handled by keeping the population in ``[0, 1]^5`` (block sizes live on
their exponent axis there) and snapping to legal vectors only for
evaluation — the standard discrete-DE recipe.  Classic *DE/rand/1/bin*
mutation and binomial crossover.
"""

from __future__ import annotations

import numpy as np

from repro.search.base import SearchAlgorithm
from repro.stencil.instance import StencilInstance

__all__ = ["DifferentialEvolution"]


class DifferentialEvolution(SearchAlgorithm):
    """DE/rand/1/bin adapted to the discrete tuning space."""

    name = "differential-evolution"

    population_size: int = 24
    weight: float = 0.7  # F
    crossover_rate: float = 0.6  # CR

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        d = len(self.space.parameters)
        pop_unit = rng.random((self.population_size, d))
        population = [self.space.from_unit(u) for u in pop_unit]
        fitness = self._evaluate_population(population)

        while True:
            for i in range(self.population_size):
                r1, r2, r3 = rng.choice(
                    [j for j in range(self.population_size) if j != i],
                    size=3,
                    replace=False,
                )
                mutant = pop_unit[r1] + self.weight * (pop_unit[r2] - pop_unit[r3])
                mutant = np.clip(mutant, 0.0, 1.0)
                cross = rng.random(d) < self.crossover_rate
                cross[rng.integers(d)] = True  # guarantee one mutant gene
                trial_unit = np.where(cross, mutant, pop_unit[i])
                trial = self.space.from_unit(trial_unit)
                trial_time = self.evaluate(trial)
                if trial_time <= fitness[i]:
                    pop_unit[i] = trial_unit
                    population[i] = trial
                    fitness[i] = trial_time
