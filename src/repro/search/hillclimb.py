"""First-improvement hill climbing with random restarts.

A deliberately simple local-search baseline: from a random start, propose
single-parameter neighbour moves and accept the first improvement; restart
from a fresh random point after a patience budget of non-improving moves.
Useful in ablations as the "is the landscape even locally searchable?"
control between random search and the evolutionary methods.
"""

from __future__ import annotations

from repro.search.base import SearchAlgorithm
from repro.stencil.instance import StencilInstance

__all__ = ["HillClimber"]


class HillClimber(SearchAlgorithm):
    """First-improvement local search with restarts."""

    name = "hill-climber"

    #: non-improving proposals tolerated before a restart
    patience: int = 24
    #: neighbour step scale (exponent steps for pow-2 parameters)
    scale: float = 1.0

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        while True:  # restarts; BudgetExhausted terminates
            current = self.space.random_vector(rng)
            current_time = self.evaluate(current)
            stale = 0
            while stale < self.patience:
                candidate = self.space.neighbor(current, rng, scale=self.scale)
                if candidate == current:
                    stale += 1
                    continue
                t = self.evaluate(candidate)
                if t < current_time:
                    current, current_time = candidate, t
                    stale = 0
                else:
                    stale += 1
