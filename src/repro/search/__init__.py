"""Iterative-compilation search baselines (paper §VI-A).

The paper compares the ordinal-regression autotuner against four
search-based iterative-compilation methods, each given 1024 evaluations:

* a **generational genetic algorithm** (the paper's most stable method,
  whose 1024-evaluation result is the Fig. 4 speedup baseline);
* a **steady-state genetic algorithm** (sGA);
* **differential evolution**;
* an **evolution strategy**.

All algorithms share the :class:`SearchAlgorithm` budget/accounting
contract: every proposal charges the budget and accrues the simulated
testbed wall-clock; re-proposals of already-measured variants hit the
measurement cache (same observed time, no recompilation) but still count
as an iteration, matching the paper's fixed-iteration methodology.  Also
included: plain random search, an OpenTuner-style multi-armed-bandit
meta-search, and the paper's future-work hybrid (ranking-model-seeded
search).
"""

from repro.search.base import EvaluationRecord, SearchAlgorithm, SearchResult
from repro.search.random_search import RandomSearch
from repro.search.genetic import GenerationalGA
from repro.search.steady_state import SteadyStateGA
from repro.search.differential import DifferentialEvolution
from repro.search.evolution_strategy import EvolutionStrategy
from repro.search.bandit import BanditMetaSearch
from repro.search.hybrid import ModelSeededSearch

__all__ = [
    "BanditMetaSearch",
    "DifferentialEvolution",
    "EvaluationRecord",
    "EvolutionStrategy",
    "GenerationalGA",
    "ModelSeededSearch",
    "RandomSearch",
    "SearchAlgorithm",
    "SearchResult",
    "SteadyStateGA",
]
