"""OpenTuner-style multi-armed-bandit meta-search.

OpenTuner (the paper's §II) runs several sub-searches and allocates each
evaluation to the technique with the best recent payoff via a UCB-style
bandit (AUC credit assignment).  This reproduction implements the same idea
over our four paper searches plus random sampling: each arm proposes one
variant when selected; credit is the recent rate of global-best
improvements; selection is UCB1 over a sliding window.

The paper deliberately avoids OpenTuner in the evaluation ("OpenTuner
automatically drops under-performing search algorithms"), running each
technique for the full budget instead — we include the bandit as an
*extension* for the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.search.base import BudgetExhausted, SearchAlgorithm
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = ["BanditMetaSearch"]


class _Arm:
    """One proposal strategy inside the bandit."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.uses = 0

    def propose(
        self,
        meta: "BanditMetaSearch",
        rng: np.random.Generator,
        history: list[tuple[TuningVector, float]],
    ) -> TuningVector:
        raise NotImplementedError


class _RandomArm(_Arm):
    def propose(self, meta, rng, history):  # noqa: ANN001 - see base signature
        return meta.space.random_vector(rng)


class _MutateBestArm(_Arm):
    def __init__(self, name: str, scale: float) -> None:
        super().__init__(name)
        self.scale = scale

    def propose(self, meta, rng, history):  # noqa: ANN001
        if not history:
            return meta.space.random_vector(rng)
        best = min(history, key=lambda h: h[1])[0]
        return meta.space.neighbor(best, rng, scale=self.scale, n_moves=1)


class _CrossoverArm(_Arm):
    def propose(self, meta, rng, history):  # noqa: ANN001
        if len(history) < 4:
            return meta.space.random_vector(rng)
        ranked = sorted(history, key=lambda h: h[1])[: max(4, len(history) // 4)]
        idx = rng.choice(len(ranked), size=2, replace=False)
        return meta.space.crossover(ranked[int(idx[0])][0], ranked[int(idx[1])][0], rng)


class BanditMetaSearch(SearchAlgorithm):
    """UCB1 bandit over exploration/exploitation proposal arms."""

    name = "bandit-meta"

    window: int = 64
    exploration: float = 1.2

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        arms: list[_Arm] = [
            _RandomArm("random"),
            _MutateBestArm("mutate-small", scale=0.6),
            _MutateBestArm("mutate-large", scale=1.6),
            _CrossoverArm("crossover-elite"),
        ]
        recent: dict[str, deque[float]] = {a.name: deque(maxlen=self.window) for a in arms}
        history: list[tuple[TuningVector, float]] = []
        best = np.inf
        t = 0
        while True:
            t += 1
            # UCB1 over recent improvement rates
            scores = []
            for arm in arms:
                payoffs = recent[arm.name]
                mean = float(np.mean(payoffs)) if payoffs else 1.0  # optimism
                bonus = self.exploration * np.sqrt(
                    np.log(t) / max(arm.uses, 1)
                )
                scores.append(mean + bonus)
            arm = arms[int(np.argmax(scores))]
            arm.uses += 1
            tuning = arm.propose(self, rng, history)
            try:
                time = self.evaluate(tuning)
            except BudgetExhausted:
                raise
            history.append((tuning, time))
            improved = 1.0 if time < best else 0.0
            best = min(best, time)
            recent[arm.name].append(improved)
