"""Generational genetic algorithm.

The paper's reference search: "*We selected the best solution found by a
generational genetic algorithm after 1024 evaluations as the base
configuration to compute the speedup ... because in our experiments it has
shown to be the most stable of the analyzed search techniques.*"

Standard design: tournament selection, uniform crossover, per-parameter
mutation via the space's neighbour moves, elitism.  Each generation is
measured in a single vectorized pass (``evaluate_batch``), so a 32-member
population costs one cost-model sweep, not 32.
"""

from __future__ import annotations

import numpy as np

from repro.search.base import SearchAlgorithm
from repro.stencil.instance import StencilInstance
from repro.tuning.vector import TuningVector

__all__ = ["GenerationalGA"]


class GenerationalGA(SearchAlgorithm):
    """(μ, μ)-style generational GA with elitism."""

    name = "genetic-algorithm"

    population_size: int = 32
    crossover_rate: float = 0.9
    mutation_rate: float = 0.25
    elite: int = 2
    tournament_k: int = 3

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        population = self.space.random_vectors(self.population_size, rng=rng)
        fitness = self._evaluate_population(population)

        while True:
            order = np.argsort(fitness, kind="stable")
            next_gen: list[TuningVector] = [
                population[int(i)] for i in order[: self.elite]
            ]
            while len(next_gen) < self.population_size:
                parent_a = self._tournament(population, fitness, rng, self.tournament_k)
                parent_b = self._tournament(population, fitness, rng, self.tournament_k)
                if rng.random() < self.crossover_rate:
                    child = self.space.crossover(parent_a, parent_b, rng)
                else:
                    child = parent_a
                if rng.random() < self.mutation_rate:
                    child = self.space.neighbor(child, rng, n_moves=1)
                next_gen.append(child)
            population = next_gen
            fitness = self._evaluate_population(population)
