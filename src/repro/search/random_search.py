"""Uniform random search — the sanity baseline every tuner must beat."""

from __future__ import annotations

from repro.search.base import SearchAlgorithm
from repro.stencil.instance import StencilInstance

__all__ = ["RandomSearch"]


class RandomSearch(SearchAlgorithm):
    """Evaluates uniformly random tuning vectors (duplicates hit the cache).

    Proposals are drawn one by one (identical stream to a scalar loop) but
    measured in batches, so the whole budget rides the vectorized pipeline.
    """

    name = "random"

    #: proposals measured per vectorized pass
    batch_size: int = 64

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        while self.remaining_budget > 0:
            k = min(self.remaining_budget, self.batch_size)
            self.evaluate_batch(
                [self.space.random_vector(rng) for _ in range(k)]
            )
