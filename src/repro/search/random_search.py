"""Uniform random search — the sanity baseline every tuner must beat."""

from __future__ import annotations

from repro.search.base import SearchAlgorithm
from repro.stencil.instance import StencilInstance

__all__ = ["RandomSearch"]


class RandomSearch(SearchAlgorithm):
    """Evaluates uniformly random (de-duplicated) tuning vectors."""

    name = "random"

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        while True:
            self.evaluate(self.space.random_vector(rng))
