"""(μ + λ) evolution strategy with self-adaptive step sizes.

Each individual carries its own mutation strength σ which evolves with it
(log-normal self-adaptation, Schwefel's rule).  Parents and offspring
compete jointly for survival — the "plus" strategy, which is elitist and
well suited to noisy evaluation landscapes.
"""

from __future__ import annotations

import numpy as np

from repro.search.base import SearchAlgorithm
from repro.stencil.instance import StencilInstance

__all__ = ["EvolutionStrategy"]


class EvolutionStrategy(SearchAlgorithm):
    """Self-adaptive (μ + λ)-ES on the unit-cube view of the space."""

    name = "evolution-strategy"

    mu: int = 8
    lam: int = 16
    sigma_init: float = 0.25
    sigma_min: float = 0.02

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        d = len(self.space.parameters)
        tau = 1.0 / np.sqrt(2.0 * d)

        parents_unit = rng.random((self.mu, d))
        parents_sigma = np.full(self.mu, self.sigma_init)
        parent_vecs = [self.space.from_unit(u) for u in parents_unit]
        parents_fit = self._evaluate_population(parent_vecs)

        while True:
            child_units = np.empty((self.lam, d))
            child_sigmas = np.empty(self.lam)
            for j in range(self.lam):
                p = int(rng.integers(self.mu))
                sigma = parents_sigma[p] * np.exp(tau * rng.normal())
                sigma = max(sigma, self.sigma_min)
                unit = np.clip(parents_unit[p] + sigma * rng.normal(size=d), 0.0, 1.0)
                child_units[j] = unit
                child_sigmas[j] = sigma
            # one vectorized measurement pass for the whole brood
            child_fit = self.evaluate_batch(
                [self.space.from_unit(u) for u in child_units]
            )
            # (μ + λ) survival: best μ of parents ∪ offspring
            all_units = np.vstack([parents_unit, child_units])
            all_sigmas = np.concatenate([parents_sigma, child_sigmas])
            all_fit = np.concatenate([parents_fit, child_fit])
            order = np.argsort(all_fit, kind="stable")[: self.mu]
            parents_unit = all_units[order]
            parents_sigma = all_sigmas[order]
            parents_fit = all_fit[order]
