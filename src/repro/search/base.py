"""Search-algorithm contract: budgets, evaluation caching, history curves.

Every algorithm tunes one :class:`~repro.stencil.instance.StencilInstance`
under a fixed evaluation budget (the paper uses 1024; "*we run every search
for a fixed number of iterations regardless of their performance*").  The
base class owns all measurement bookkeeping so subclasses only implement
the proposal loop:

* **every proposal consumes budget**, duplicates included — iterative
  compilation re-runs a known binary when the search re-proposes it (no
  recompilation, but the run is an iteration).  The measurement cache
  guarantees the duplicate observes the same time, keeping runs
  deterministic, and bounds wall-clock: a converged population cannot spin
  outside the budget;
* the history records evaluation order, so best-so-far curves at power-of-
  two evaluation counts (Fig. 5's x-axis) fall out directly;
* simulated testbed wall-clock accumulates per evaluation, giving the
  time-to-solution bars of Fig. 5.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.machine.executor import SimulatedMachine
from repro.stencil.execution import StencilExecution, execution_hashes
from repro.stencil.instance import StencilInstance
from repro.tuning.space import TuningSpace
from repro.tuning.vector import TuningVector
from repro.util.rng import spawn

__all__ = ["EvaluationRecord", "SearchResult", "SearchAlgorithm", "BudgetExhausted"]


class BudgetExhausted(Exception):
    """Raised internally when the evaluation budget runs out mid-iteration."""


@dataclass(frozen=True)
class EvaluationRecord:
    """One charged evaluation: the variant, its measured time, its index."""

    index: int
    tuning: TuningVector
    time: float
    wall_clock_s: float


@dataclass
class SearchResult:
    """Outcome of one tuning run."""

    algorithm: str
    instance_label: str
    history: list[EvaluationRecord] = field(default_factory=list)

    @property
    def evaluations(self) -> int:
        """Number of charged (unique) evaluations."""
        return len(self.history)

    @property
    def best_record(self) -> EvaluationRecord:
        """The fastest evaluated variant."""
        if not self.history:
            raise ValueError("empty search history")
        return min(self.history, key=lambda r: r.time)

    @property
    def best_tuning(self) -> TuningVector:
        """Tuning vector of the best variant."""
        return self.best_record.tuning

    @property
    def best_time(self) -> float:
        """Measured runtime of the best variant (seconds)."""
        return self.best_record.time

    @property
    def total_wall_s(self) -> float:
        """Simulated testbed time spent on all evaluations."""
        return sum(r.wall_clock_s for r in self.history)

    def best_curve(self, checkpoints: "list[int] | None" = None) -> dict[int, float]:
        """Best-so-far time after k evaluations, at the given checkpoints.

        Default checkpoints are the paper's Fig. 5 x-axis (2⁰ … 2¹⁰),
        truncated to the evaluations actually performed.  Explicit
        checkpoints beyond the history clamp to the final best.
        """
        if checkpoints is None:
            checkpoints = [2**e for e in range(11) if 2**e <= len(self.history)]
        times = np.array([r.time for r in self.history])
        if times.size == 0:
            return {}
        running = np.minimum.accumulate(times)
        out: dict[int, float] = {}
        for k in checkpoints:
            if k < 1:
                continue
            idx = min(k, times.size) - 1
            out[k] = float(running[idx])
        return out


class SearchAlgorithm(abc.ABC):
    """Template for budgeted search over a tuning space."""

    name: str = "search"

    def __init__(
        self,
        space: TuningSpace,
        machine: SimulatedMachine,
        seed: int = 0,
        repeats: int = 3,
    ) -> None:
        self.space = space
        self.machine = machine
        self.seed = seed
        self.repeats = repeats
        self._cache: dict[TuningVector, float] = {}
        self._result: SearchResult | None = None
        self._budget = 0
        self._instance: StencilInstance | None = None

    # -- machinery ------------------------------------------------------------

    def rng(self, *key: object) -> np.random.Generator:
        """Independent stream for this algorithm/seed/key combination."""
        return spawn(self.seed, self.name, *key)

    def evaluate(self, tuning: TuningVector) -> float:
        """Measure a variant, charging one unit of the evaluation budget.

        Re-proposed variants hit the measurement cache (same observed time,
        no re-measurement → deterministic) but still count as an iteration,
        exactly as the paper's fixed-iteration searches behave.  Raises
        :class:`BudgetExhausted` once the budget is spent.
        """
        assert self._result is not None and self._instance is not None
        if len(self._result.history) >= self._budget:
            raise BudgetExhausted
        t = self._cache.get(tuning)
        if t is None:
            measurement = self.machine.measure(
                StencilExecution(self._instance, tuning), repeats=self.repeats
            )
            t = measurement.time
            self._cache[tuning] = t
        self._result.history.append(
            EvaluationRecord(
                index=len(self._result.history),
                tuning=tuning,
                time=t,
                wall_clock_s=self.machine.wall_clock_cost(
                    StencilExecution(self._instance, tuning), self.repeats
                ),
            )
        )
        return t

    def evaluate_batch(self, tunings: "list[TuningVector]") -> np.ndarray:
        """Measure a batch of variants, charging one budget unit each.

        The vectorized counterpart of :meth:`evaluate`: cache-missing
        tunings are measured in one :meth:`SimulatedMachine.measure_batch`
        pass (duplicates within the batch measured once), every proposal —
        duplicates included — is appended to the history and charged against
        the budget, exactly like the scalar loop.  If the budget runs out
        mid-batch, the affordable prefix is recorded and
        :class:`BudgetExhausted` is raised, matching the scalar loop's
        stop-mid-population behavior.
        """
        assert self._result is not None and self._instance is not None
        allowed = self._budget - len(self._result.history)
        exhausted = allowed < len(tunings)
        charged = tunings[:allowed] if exhausted else list(tunings)
        hashes = execution_hashes(self._instance, charged)

        to_measure: list[TuningVector] = []
        to_hashes: list[int] = []
        seen: set[TuningVector] = set()
        for tuning, h in zip(charged, hashes):
            if tuning not in self._cache and tuning not in seen:
                seen.add(tuning)
                to_measure.append(tuning)
                to_hashes.append(h)
        if to_measure:
            batch = self.machine.measure_batch(
                self._instance, to_measure, repeats=self.repeats, hashes=to_hashes
            )
            for tuning, median in zip(to_measure, batch.medians):
                self._cache[tuning] = float(median)

        times = np.array([self._cache[t] for t in charged])
        walls = (
            self.machine.wall_clock_costs(
                self._instance, charged, self.repeats, hashes=hashes
            )
            if charged
            else np.empty(0)
        )
        for tuning, t, wall in zip(charged, times, walls):
            self._result.history.append(
                EvaluationRecord(
                    index=len(self._result.history),
                    tuning=tuning,
                    time=float(t),
                    wall_clock_s=float(wall),
                )
            )
        if exhausted:
            raise BudgetExhausted
        return times

    @property
    def remaining_budget(self) -> int:
        """Evaluations still available."""
        assert self._result is not None
        return self._budget - len(self._result.history)

    def tune(self, instance: StencilInstance, budget: int = 1024) -> SearchResult:
        """Run the algorithm until the budget is exhausted."""
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if instance.dims != self.space.dims:
            raise ValueError(
                f"instance is {instance.dims}-D but space is {self.space.dims}-D"
            )
        self._cache = {}
        self._instance = instance
        self._budget = budget
        self._result = SearchResult(self.name, instance.label())
        try:
            self._run(instance, budget)
        except BudgetExhausted:
            pass
        result, self._result = self._result, None
        self._instance = None
        return result

    @abc.abstractmethod
    def _run(self, instance: StencilInstance, budget: int) -> None:
        """Propose-and-evaluate loop; may simply loop forever and rely on
        :class:`BudgetExhausted` to stop."""

    # -- shared helpers for evolutionary subclasses ---------------------------

    def _evaluate_population(self, population: list[TuningVector]) -> np.ndarray:
        """Evaluate a population, returning the fitness (time) vector.

        Runs on the batch measurement pipeline — one vectorized cost-model
        pass for the whole population instead of one scalar walk per member.
        """
        return self.evaluate_batch(list(population))

    def _tournament(
        self,
        population: list[TuningVector],
        fitness: np.ndarray,
        rng: np.random.Generator,
        k: int = 3,
    ) -> TuningVector:
        """k-tournament selection (lower time wins)."""
        idx = rng.choice(len(population), size=min(k, len(population)), replace=False)
        winner = idx[np.argmin(fitness[idx])]
        return population[int(winner)]
