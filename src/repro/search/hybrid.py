"""Model-seeded search: the paper's future-work direction.

§VII: "*In future work, we plan to exploit the ability to rank multiple
code variants without executing them to speed up autotuning compilers based
on iterative compilation.*"

:class:`ModelSeededSearch` does exactly that: a trained ranking model
scores a large candidate pool for free, the top slice seeds the initial
population, and a steady-state GA refines from there.  With a decent model
the search starts where plain searches arrive only after hundreds of
evaluations (the crossover points visible in Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.features.encoder import FeatureEncoder
from repro.learn.ranksvm import RankSVM
from repro.machine.executor import SimulatedMachine
from repro.search.base import SearchAlgorithm
from repro.stencil.instance import StencilInstance
from repro.tuning.space import TuningSpace

__all__ = ["ModelSeededSearch"]


class ModelSeededSearch(SearchAlgorithm):
    """Steady-state GA whose initial population is the model's top picks."""

    name = "model-seeded"

    population_size: int = 32
    mutation_rate: float = 0.35
    tournament_k: int = 3
    #: size of the free (unevaluated) candidate pool the model ranks
    pool_size: int = 2048

    def __init__(
        self,
        space: TuningSpace,
        machine: SimulatedMachine,
        model: RankSVM,
        encoder: FeatureEncoder,
        seed: int = 0,
        repeats: int = 3,
    ) -> None:
        super().__init__(space, machine, seed=seed, repeats=repeats)
        self.model = model
        self.encoder = encoder

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        pool = self.space.random_vectors(self.pool_size, rng=rng)
        X = self.encoder.encode_batch(instance, pool)
        ranked = self.model.rank(X)
        population = [pool[int(i)] for i in ranked[: self.population_size]]
        fitness = self._evaluate_population(population)

        while True:
            parent_a = self._tournament(population, fitness, rng, self.tournament_k)
            parent_b = self._tournament(population, fitness, rng, self.tournament_k)
            child = self.space.crossover(parent_a, parent_b, rng)
            if rng.random() < self.mutation_rate:
                child = self.space.neighbor(child, rng, n_moves=1)
            child_time = self.evaluate(child)
            worst = int(np.argmax(fitness))
            if child_time < fitness[worst]:
                population[worst] = child
                fitness[worst] = child_time
