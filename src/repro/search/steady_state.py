"""Steady-state genetic algorithm (the paper's "sGA").

Unlike the generational GA, only one individual is produced per step and it
replaces the current worst member if it improves on it — the population
evolves continuously rather than in waves.
"""

from __future__ import annotations

import numpy as np

from repro.search.base import SearchAlgorithm
from repro.stencil.instance import StencilInstance

__all__ = ["SteadyStateGA"]


class SteadyStateGA(SearchAlgorithm):
    """One-offspring-per-step GA with worst-replacement."""

    name = "steady-state-ga"

    population_size: int = 32
    mutation_rate: float = 0.35
    tournament_k: int = 3

    def _run(self, instance: StencilInstance, budget: int) -> None:
        rng = self.rng(instance.label())
        population = self.space.random_vectors(self.population_size, rng=rng)
        fitness = self._evaluate_population(population)

        while True:
            parent_a = self._tournament(population, fitness, rng, self.tournament_k)
            parent_b = self._tournament(population, fitness, rng, self.tournament_k)
            child = self.space.crossover(parent_a, parent_b, rng)
            if rng.random() < self.mutation_rate:
                child = self.space.neighbor(child, rng, n_moves=1)
            child_time = self.evaluate(child)
            worst = int(np.argmax(fitness))
            if child_time < fitness[worst]:
                population[worst] = child
                fitness[worst] = child_time
