"""Deterministic observability for the serving stack.

Six pieces, all import-light and dependency-free:

- :mod:`repro.obs.trace` — per-request spans with hash-derived trace ids,
  deterministic request-id sampling, a bounded ring recorder per process,
  a JSONL sink, and per-stage latency attribution.
- :mod:`repro.obs.metrics` — counters, gauges, and fixed-exponential-bucket
  histograms that merge *exactly* across workers, with dict snapshots and
  Prometheus-style text exposition.
- :mod:`repro.obs.quality` — streaming ranking-quality gauges (rolling
  Kendall τ per family), promotion-outcome tracking (shadow τ vs realized
  online τ), and a deterministic quality-regression detector.
- :mod:`repro.obs.slo` — declarative SLO objectives evaluated with
  multi-window burn rates over the exact-merge telemetry, with a
  deterministic ok→warning→breach alert state machine.
- :mod:`repro.obs.audit` — an append-only, checksum-chained audit journal
  of model-lifecycle and fleet-health events, with :func:`replay` to
  reconstruct which model version answered which request, and why.
- :mod:`repro.obs.ledger` — a schema-versioned benchmark history ledger
  (``BENCH_history.jsonl``) plus a trailing-median regression sentinel.

Everything is behind a no-op fast path: a cluster constructed without a
:class:`TraceConfig` (or without ``audit=``) holds no tracer/journal and
pays only ``None`` checks.
"""

from repro.obs.audit import GENESIS, AuditJournal, verify_entries
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    append_row,
    check_regression,
    format_report,
    git_sha,
    ledger_row,
    read_history,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition,
    merge_histograms,
    percentile_from_hist,
)
from repro.obs.quality import PromotionOutcome, QualityWatch
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLOEngine,
    SLObjective,
    default_objectives,
)
from repro.obs.trace import (
    ROOT_SPAN,
    Span,
    SpanRecorder,
    TraceConfig,
    TraceContext,
    Tracer,
    read_jsonl,
    sample_request,
    stage_breakdown,
    trace_id_for,
    write_jsonl,
)

__all__ = [
    "AuditJournal",
    "Counter",
    "DEFAULT_OBJECTIVES",
    "GENESIS",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA_VERSION",
    "MetricsRegistry",
    "PromotionOutcome",
    "QualityWatch",
    "ROOT_SPAN",
    "SLOEngine",
    "SLObjective",
    "Span",
    "SpanRecorder",
    "TraceConfig",
    "TraceContext",
    "Tracer",
    "append_row",
    "check_regression",
    "default_objectives",
    "exposition",
    "format_report",
    "git_sha",
    "ledger_row",
    "merge_histograms",
    "percentile_from_hist",
    "read_history",
    "read_jsonl",
    "sample_request",
    "stage_breakdown",
    "trace_id_for",
    "verify_entries",
    "write_jsonl",
]
