"""Deterministic observability for the serving stack.

Two halves, both import-light and dependency-free:

- :mod:`repro.obs.trace` — per-request spans with hash-derived trace ids,
  deterministic request-id sampling, a bounded ring recorder per process,
  a JSONL sink, and per-stage latency attribution.
- :mod:`repro.obs.metrics` — counters, gauges, and fixed-exponential-bucket
  histograms that merge *exactly* across workers, with dict snapshots and
  Prometheus-style text exposition.

Everything is behind a no-op fast path: a cluster constructed without a
:class:`TraceConfig` holds no tracer and pays only ``None`` checks.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition,
    merge_histograms,
    percentile_from_hist,
)
from repro.obs.trace import (
    ROOT_SPAN,
    Span,
    SpanRecorder,
    TraceConfig,
    TraceContext,
    Tracer,
    read_jsonl,
    sample_request,
    stage_breakdown,
    trace_id_for,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ROOT_SPAN",
    "Span",
    "SpanRecorder",
    "TraceConfig",
    "TraceContext",
    "Tracer",
    "exposition",
    "merge_histograms",
    "percentile_from_hist",
    "read_jsonl",
    "sample_request",
    "stage_breakdown",
    "trace_id_for",
    "write_jsonl",
]
