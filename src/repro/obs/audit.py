"""Append-only, checksum-chained audit journal for the serving fleet.

Counters say *how often*; traces say *where the time went*; neither can
answer the post-incident question "which model version answered request
48123, and why was it degraded?".  The audit journal is the third
instrument: an append-only log of **model-lifecycle** events (publish,
promote, rollback, retrain-error, registry tag moves) and **fleet-health**
events (spawn, worker-exit, quarantine, readmit, shed, degrade, SLO
transitions), each entry carrying the trace ids in flight at event time so
an entry can be joined against the span record.

Integrity is structural, not trusted: every entry's checksum covers its
payload *and* the previous entry's checksum (a hash chain), so a dropped,
reordered, or edited line breaks :meth:`AuditJournal.verify` — the journal
proves its own completeness, which is what lets the chaos drill assert
"every SIGKILL/quarantine/readmit appears exactly once" from the artifact
alone.

Determinism: entries carry **no wall-clock time** — ordering is the
explicit ``seq`` number, and every attribute comes from the deterministic
serving state.  Two runs at the same seed that record the same events in
the same order produce byte-identical journals; events whose interleaving
is scheduler-dependent (concurrent reader threads) may permute between
runs, but :func:`AuditJournal.replay` folds entries into per-request /
per-tag mappings that are order-independent, so the *reconstruction* is
bit-identical even when the interleaving is not.

Wiring: :class:`~repro.service.cluster.ServiceCluster` accepts an
``audit=`` journal and records fleet events (and per-request ``answer``
events) automatically; :class:`~repro.online.ContinualLearningPipeline`
records retrain/promotion/rollback; :meth:`AuditJournal.attach_registry`
hooks :class:`~repro.service.registry.ModelRegistry` tag moves.

>>> journal = AuditJournal()
>>> _ = journal.record("promote", {"version": "v0002", "previous": "v0001"})
>>> _ = journal.record("answer", {"req_id": 7, "model_version": "v0002",
...                               "worker": 1, "why": "routed"})
>>> journal.verify()
2
>>> AuditJournal.replay(journal.entries())["answers"][7]["model_version"]
'v0002'
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = ["AuditJournal", "GENESIS"]

#: the ``prev`` checksum of the first entry (nothing came before it)
GENESIS = "0" * 16


def _checksum(prev: str, payload: Mapping) -> str:
    """64-bit hex chain checksum of one entry's payload after ``prev``."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256((prev + canon).encode("utf-8")).hexdigest()
    return digest[:16]


class AuditJournal:
    """An append-only event log whose checksum chain proves completeness.

    Thread-safe: reader threads, the monitor thread and the pipeline all
    append concurrently; each append holds one short lock for the
    sequence number + chain update (and the file write, when journaling
    to disk).
    """

    def __init__(self, path: "str | Path | None" = None) -> None:
        self._entries: list[dict] = []
        self._lock = threading.Lock()
        self._head = GENESIS
        self._path = Path(path) if path is not None else None
        if self._path is not None:
            # a fresh journal owns its file: start the chain from genesis
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._path.write_text("")

    @property
    def path(self) -> "Path | None":
        return self._path

    # -- recording -------------------------------------------------------------

    def record(
        self,
        event: str,
        attrs: "Mapping | None" = None,
        trace_ids: "Sequence[str]" = (),
    ) -> dict:
        """Append one event; returns the completed (checksummed) entry.

        ``trace_ids`` are the trace ids in flight at event time — the join
        key from an audit entry to the span record.
        """
        with self._lock:
            payload = {
                "seq": len(self._entries),
                "event": str(event),
                "attrs": dict(attrs) if attrs else {},
                "trace_ids": sorted(str(t) for t in trace_ids if t),
                "prev": self._head,
            }
            payload["checksum"] = _checksum(self._head, {
                k: payload[k] for k in ("seq", "event", "attrs", "trace_ids", "prev")
            })
            self._head = payload["checksum"]
            self._entries.append(payload)
            if self._path is not None:
                with open(self._path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(payload, sort_keys=True) + "\n")
            return payload

    # -- reading ---------------------------------------------------------------

    def entries(self) -> list[dict]:
        """Every entry, oldest first (a copy)."""
        with self._lock:
            return list(self._entries)

    def tail(self, n: int = 10) -> list[dict]:
        """The newest ``n`` entries, oldest first."""
        with self._lock:
            return self._entries[-n:]

    def events_of(self, *kinds: str) -> list[dict]:
        """Entries whose event kind is one of ``kinds``, oldest first."""
        wanted = set(kinds)
        return [e for e in self.entries() if e["event"] in wanted]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- integrity -------------------------------------------------------------

    def verify(self) -> int:
        """Walk the chain re-deriving every checksum; returns entry count.

        Raises :class:`ValueError` naming the first broken link — a
        missing, reordered, or edited entry cannot pass.
        """
        return verify_entries(self.entries())

    # -- persistence -----------------------------------------------------------

    def write(self, path: "str | Path") -> int:
        """Write the journal as JSONL; returns the number of entries."""
        entries = self.entries()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        return len(entries)

    @classmethod
    def load(cls, path: "str | Path") -> "AuditJournal":
        """Read a journal back, verifying the chain as it loads."""
        entries: list[dict] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
        verify_entries(entries)
        journal = cls()
        journal._entries = entries
        journal._head = entries[-1]["checksum"] if entries else GENESIS
        return journal

    # -- reconstruction --------------------------------------------------------

    @staticmethod
    def replay(entries: "Iterable[Mapping]") -> dict:
        """Reconstruct serving state from an entry stream.

        Folds the journal into order-independent mappings::

            {
              "answers":  {req_id: {"model_version", "worker", "why",
                                    "degraded", "trace_ids"}},
              "tags":     {tag: version},          # final tag positions
              "promotions":  [...], "rollbacks": [...],   # lifecycle entries
              "quarantines": [...], "readmissions": [...],
              "worker_exits": [...],
              "counts":  {event: n},
            }

        ``answers`` is the direct answer to "which model version answered
        which request, and why": ``why`` is ``routed`` (a worker served
        it), ``degraded-cache`` (coordinator replayed a remembered
        ranking) or ``degraded-scored`` (coordinator scored locally).
        Because the fold keys on ``req_id``/``tag``, two runs recording
        the same events in scheduler-permuted order reconstruct
        identically.
        """
        answers: dict[int, dict] = {}
        tags: dict[str, str] = {}
        out: dict = {
            "answers": answers,
            "tags": tags,
            "promotions": [],
            "rollbacks": [],
            "quarantines": [],
            "readmissions": [],
            "worker_exits": [],
            "counts": {},
        }
        buckets = {
            "promote": "promotions",
            "rollback": "rollbacks",
            "quarantine": "quarantines",
            "readmit": "readmissions",
            "worker-exit": "worker_exits",
        }
        for entry in entries:
            event = entry["event"]
            attrs = entry.get("attrs", {})
            out["counts"][event] = out["counts"].get(event, 0) + 1
            if event == "answer":
                req_id = attrs.get("req_id")
                if req_id is not None:
                    answers[int(req_id)] = {
                        "model_version": attrs.get("model_version"),
                        "worker": attrs.get("worker"),
                        "why": attrs.get("why", "routed"),
                        "degraded": bool(attrs.get("degraded", False)),
                        "trace_ids": list(entry.get("trace_ids", [])),
                    }
            elif event == "tag":
                name, version = attrs.get("tag"), attrs.get("version")
                if name is not None and version is not None:
                    tags[str(name)] = str(version)
            elif event in buckets:
                out[buckets[event]].append(dict(attrs))
                if event == "promote" and attrs.get("version"):
                    tags.setdefault("__serving__", str(attrs["version"]))
                    tags["__serving__"] = str(attrs["version"])
                if event == "rollback" and attrs.get("restored"):
                    tags["__serving__"] = str(attrs["restored"])
        return out

    # -- registry hook ---------------------------------------------------------

    def attach_registry(self, registry) -> "AuditJournal":
        """Audit every tag move of a
        :class:`~repro.service.registry.ModelRegistry` (sets ``on_tag``)."""
        registry.on_tag = lambda tag, version: self.record(
            "tag", {"tag": tag, "version": version}
        )
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AuditJournal(entries={len(self)}, head={self._head!r})"


def verify_entries(entries: "Sequence[Mapping]") -> int:
    """Verify a checksum chain outside any journal; returns entry count."""
    prev = GENESIS
    for i, entry in enumerate(entries):
        if entry.get("seq") != i:
            raise ValueError(
                f"audit chain broken at entry {i}: seq {entry.get('seq')!r} "
                f"(an entry is missing or reordered)"
            )
        if entry.get("prev") != prev:
            raise ValueError(
                f"audit chain broken at entry {i}: prev {entry.get('prev')!r} "
                f"!= head {prev!r}"
            )
        expect = _checksum(prev, {
            "seq": entry.get("seq"),
            "event": entry.get("event"),
            "attrs": entry.get("attrs", {}),
            "trace_ids": entry.get("trace_ids", []),
            "prev": entry.get("prev"),
        })
        if entry.get("checksum") != expect:
            raise ValueError(
                f"audit chain broken at entry {i}: checksum "
                f"{entry.get('checksum')!r} != {expect!r} (payload edited)"
            )
        prev = entry["checksum"]
    return len(entries)
