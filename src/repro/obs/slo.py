"""Declarative SLOs with multi-window burn-rate alerting.

Counters tell you what happened; an SLO tells you whether it was *okay*.
This module evaluates declarative objectives over the cluster's existing
exact-merge telemetry — no new instrumentation on the hot path.  Four
objective kinds cover the serving story:

* ``latency_p99`` — p99 of the merged latency histogram ≤ ``target``
  seconds (read via :func:`~repro.obs.metrics.percentile_from_hist`, so
  the error is bounded by one bucket width);
* ``availability`` — completed/requests ≥ ``target``;
* ``degraded_ratio`` — degraded answers/requests ≤ ``target``;
* ``quality`` — online Kendall τ (from
  :class:`~repro.obs.quality.QualityWatch`) ≥ ``target``.

Evaluation is **tick-based, not wall-clock**: each call to
:meth:`SLOEngine.evaluate` is one tick, and the fast/slow windows are
counts of ticks.  Windowed ratios are computed from *deltas* of the
cumulative counters between the window's edges (histograms subtract
per-bucket — exactly, thanks to the fixed layout), which is the SRE
multi-window recipe made deterministic: the same snapshot sequence always
produces the same burn rates and the same alert transitions, so CI can
assert a breach fires on tick N.

Burn rate is ``bad_fraction / error_budget`` (budget = ``1 - target`` for
ratio objectives): 1.0 burns the budget exactly at the allowed pace,
>1 exhausts it early.  The alert state machine is

``ok → warning``  when the fast-window burn exceeds ``warn_burn``;
``ok/warning → breach`` when **both** windows exceed ``breach_burn``
(fast = still happening, slow = sustained — the classic page condition);
recovery retraces to ``warning``/``ok`` as burns fall back under the
thresholds.  Threshold objectives (latency, quality) use the windowed
value against the target directly, with burn expressed as value/target
(or target/value for higher-is-better).

>>> slo = SLObjective("availability", kind="availability", target=0.99)
>>> engine = SLOEngine([slo], fast_window=2, slow_window=4)
>>> for _ in range(4):
...     state = engine.evaluate({"requests_total": 100, "completed_total": 100})
>>> state["availability"]["state"]
'ok'
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.obs.metrics import merge_histograms, percentile_from_hist

__all__ = ["SLObjective", "SLOEngine", "DEFAULT_OBJECTIVES", "default_objectives"]

_KINDS = ("latency_p99", "availability", "degraded_ratio", "quality")

#: objective kinds where *higher* observed values are better
_HIGHER_IS_BETTER = {"availability": True, "degraded_ratio": False,
                     "latency_p99": False, "quality": True}

#: objective kinds evaluated as windowed ratios of counter deltas
_RATIO_KINDS = ("availability", "degraded_ratio")


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over the cluster's merged telemetry."""

    name: str
    kind: str
    target: float
    warn_burn: float = 1.0
    breach_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not (self.warn_burn > 0 and self.breach_burn >= self.warn_burn):
            raise ValueError(
                f"need 0 < warn_burn <= breach_burn, got "
                f"{self.warn_burn}/{self.breach_burn}"
            )
        if self.kind in ("availability", "quality") and not 0 < self.target <= 1:
            raise ValueError(f"{self.kind} target must be in (0, 1], got {self.target}")
        if self.kind == "degraded_ratio" and not 0 <= self.target < 1:
            raise ValueError(f"degraded_ratio target must be in [0, 1), got {self.target}")
        if self.kind == "latency_p99" and self.target <= 0:
            raise ValueError(f"latency_p99 target must be > 0, got {self.target}")


def default_objectives(
    latency_p99_s: float = 0.5,
    availability: float = 0.99,
    degraded_ratio: float = 0.05,
    quality_tau: float = 0.5,
) -> list[SLObjective]:
    """The stock objective set for a serving cluster."""
    return [
        SLObjective("latency_p99", kind="latency_p99", target=latency_p99_s),
        SLObjective("availability", kind="availability", target=availability),
        SLObjective("degraded_ratio", kind="degraded_ratio", target=degraded_ratio),
        SLObjective("quality", kind="quality", target=quality_tau),
    ]


DEFAULT_OBJECTIVES = default_objectives()

_STATES = ("ok", "warning", "breach")


class SLOEngine:
    """Tick-based multi-window burn-rate evaluation of SLO objectives.

    Feed it the cluster's merged stats dict (``cluster.stats()["cluster"]``)
    each tick; read back per-objective burn rates and alert states.  With
    a :class:`~repro.obs.metrics.MetricsRegistry` the engine publishes
    ``slo_<name>_burn_fast`` / ``_burn_slow`` gauges, a numeric
    ``slo_<name>_state`` gauge (0 ok / 1 warning / 2 breach), and an
    ``slo_transitions_total`` counter; with an audit journal every state
    transition lands as an ``slo-transition`` entry.
    """

    def __init__(
        self,
        objectives: "Sequence[SLObjective] | None" = None,
        *,
        metrics=None,
        audit=None,
        fast_window: int = 3,
        slow_window: int = 12,
    ) -> None:
        if not (1 <= fast_window <= slow_window):
            raise ValueError(
                f"need 1 <= fast_window <= slow_window, got "
                f"{fast_window}/{slow_window}"
            )
        self.objectives = list(objectives if objectives is not None
                               else default_objectives())
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.metrics = metrics
        self.audit = audit
        self.fast_window = int(fast_window)
        self.slow_window = int(slow_window)
        # ring of (tick, snapshot) — slow_window deltas need one extra edge
        self._snaps: deque = deque(maxlen=self.slow_window + 1)
        self._states: dict[str, str] = {o.name: "ok" for o in self.objectives}
        self.tick = 0
        self.events: list[dict] = []

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        merged_stats: Mapping,
        quality_tau: "float | None" = None,
    ) -> dict:
        """One tick: fold a merged-stats snapshot, return per-objective state.

        ``merged_stats`` is the cluster-level dict from
        ``ServiceCluster.stats()["cluster"]`` (anything with
        ``requests_total`` / ``completed_total`` / ``degraded_total`` /
        ``latency_hist`` works).  ``quality_tau`` feeds ``quality``
        objectives (pass ``QualityWatch.overall_tau()``); quality is a
        windowed *gauge*, not a counter delta, so the engine keeps its own
        per-tick trail.
        """
        self.tick += 1
        snap = {
            "requests": float(merged_stats.get("requests_total", 0) or 0),
            "completed": float(merged_stats.get("completed_total", 0) or 0),
            "degraded": float(merged_stats.get("degraded_total", 0) or 0),
            "hist": merged_stats.get("latency_hist"),
            "quality": quality_tau,
        }
        self._snaps.append(snap)
        out: dict = {}
        for objective in self.objectives:
            fast = self._burn(objective, self.fast_window)
            slow = self._burn(objective, self.slow_window)
            state = self._transition(objective, fast, slow)
            out[objective.name] = {
                "kind": objective.kind,
                "target": objective.target,
                "value_fast": fast["value"],
                "value_slow": slow["value"],
                "burn_fast": fast["burn"],
                "burn_slow": slow["burn"],
                "state": state,
            }
            self._publish(objective, out[objective.name])
        return out

    # -- window math -----------------------------------------------------------

    def _window(self, n_ticks: int) -> list[dict]:
        """The newest ``n_ticks`` snapshots plus the edge before them."""
        snaps = list(self._snaps)
        return snaps[-(n_ticks + 1):]

    def _burn(self, objective: SLObjective, n_ticks: int) -> dict:
        """Windowed value + burn rate for one objective over ``n_ticks``."""
        window = self._window(n_ticks)
        value = self._windowed_value(objective, window)
        if value is None:
            return {"value": None, "burn": 0.0}
        return {"value": value, "burn": self._burn_rate(objective, value)}

    def _windowed_value(
        self, objective: SLObjective, window: "list[dict]"
    ) -> Optional[float]:
        if objective.kind in _RATIO_KINDS:
            if len(window) < 2:
                # no delta yet: treat the first snapshot as since-start
                head, tail = {"requests": 0.0, "completed": 0.0, "degraded": 0.0}, \
                    window[-1] if window else None
            else:
                head, tail = window[0], window[-1]
            if tail is None:
                return None
            requests = tail["requests"] - head["requests"]
            if requests <= 0:
                return None  # idle window: nothing to judge
            if objective.kind == "availability":
                return (tail["completed"] - head["completed"]) / requests
            return (tail["degraded"] - head["degraded"]) / requests
        if objective.kind == "latency_p99":
            hists = [s["hist"] for s in window if isinstance(s.get("hist"), Mapping)]
            if not hists:
                return None
            tail = hists[-1]
            if len(hists) >= 2 and hists[0] is not tail:
                delta = self._hist_delta(hists[0], tail)
            else:
                delta = dict(tail)
            if not delta.get("count"):
                return None
            return percentile_from_hist(delta, 99.0)
        # quality: windowed mean of the per-tick gauge trail
        taus = [s["quality"] for s in window[1:] or window
                if s.get("quality") is not None]
        if not taus:
            return None
        return float(sum(taus) / len(taus))

    @staticmethod
    def _hist_delta(head: Mapping, tail: Mapping) -> dict:
        """Per-bucket subtraction of two cumulative histogram dicts.

        The fixed bucket layout is what makes this exact — the same
        property that makes cross-worker merge exact, run backwards.
        Mismatched layouts raise (via :func:`merge_histograms`' config
        check) rather than silently mis-subtracting.
        """
        merge_histograms([dict(head), dict(tail)])  # layout compatibility check
        counts = [
            max(0, int(t) - int(h))
            for t, h in zip(tail["counts"], head["counts"])
        ]
        return {
            **dict(tail),
            "counts": counts,
            "count": max(0, int(tail.get("count", 0)) - int(head.get("count", 0))),
            "sum": float(tail.get("sum", 0.0)) - float(head.get("sum", 0.0)),
        }

    def _burn_rate(self, objective: SLObjective, value: float) -> float:
        """How fast the window consumes the objective's error budget."""
        if objective.kind == "availability":
            budget = 1.0 - objective.target
            bad = 1.0 - value
            return bad / budget if budget > 0 else (0.0 if bad <= 0 else float("inf"))
        if objective.kind == "degraded_ratio":
            budget = objective.target
            return value / budget if budget > 0 else (0.0 if value <= 0 else float("inf"))
        if objective.kind == "latency_p99":
            return value / objective.target
        # quality (higher is better): burn = how far below target
        return objective.target / value if value > 0 else float("inf")

    # -- alert state machine ---------------------------------------------------

    def _transition(self, objective: SLObjective, fast: dict, slow: dict) -> str:
        previous = self._states[objective.name]
        burn_fast, burn_slow = fast["burn"], slow["burn"]
        if fast["value"] is None and slow["value"] is None:
            return previous  # nothing observed: hold state
        if burn_fast >= objective.breach_burn and burn_slow >= objective.breach_burn:
            state = "breach"
        elif max(burn_fast, burn_slow) >= objective.warn_burn:
            state = "warning"
        else:
            state = "ok"
        if state != previous:
            self._states[objective.name] = state
            event = {
                "type": "slo-transition",
                "objective": objective.name,
                "from": previous,
                "to": state,
                "tick": self.tick,
                "burn_fast": burn_fast,
                "burn_slow": burn_slow,
            }
            self.events.append(event)
            if self.metrics is not None:
                self.metrics.counter(
                    "slo_transitions_total", help="SLO alert state changes"
                ).inc()
            if self.audit is not None:
                self.audit.record("slo-transition", event)
        return self._states[objective.name]

    # -- readback --------------------------------------------------------------

    def states(self) -> dict[str, str]:
        """Current alert state per objective name."""
        return dict(self._states)

    def state_table(self, evaluation: "Mapping | None" = None) -> str:
        """A fixed-width text table of the latest evaluation (for dashboards)."""
        header = f"{'objective':<16} {'state':<8} {'target':>8} " \
                 f"{'fast':>10} {'slow':>10} {'burn_f':>7} {'burn_s':>7}"
        lines = [header, "-" * len(header)]
        evaluation = evaluation or {}
        for objective in self.objectives:
            row = evaluation.get(objective.name, {})
            fmt = lambda v: "-" if v is None else f"{v:.4g}"
            lines.append(
                f"{objective.name:<16} {self._states[objective.name]:<8} "
                f"{objective.target:>8.4g} {fmt(row.get('value_fast')):>10} "
                f"{fmt(row.get('value_slow')):>10} "
                f"{fmt(row.get('burn_fast')):>7} {fmt(row.get('burn_slow')):>7}"
            )
        return "\n".join(lines)

    # -- metrics publishing ----------------------------------------------------

    def _publish(self, objective: SLObjective, row: Mapping) -> None:
        if self.metrics is None:
            return
        name = objective.name
        self.metrics.gauge(
            f"slo_{name}_burn_fast", help=f"{name} fast-window burn rate"
        ).set(0.0 if row["burn_fast"] is None else min(row["burn_fast"], 1e9))
        self.metrics.gauge(
            f"slo_{name}_burn_slow", help=f"{name} slow-window burn rate"
        ).set(0.0 if row["burn_slow"] is None else min(row["burn_slow"], 1e9))
        self.metrics.gauge(
            f"slo_{name}_state", help=f"{name} alert state (0 ok/1 warning/2 breach)"
        ).set(float(_STATES.index(row["state"])))
