"""Mergeable metrics: counters, gauges, and exponential-bucket histograms.

The cluster's telemetry problem is aggregation: N worker processes each
observe their own latencies, and the coordinator must answer for the
*cluster*.  Percentiles do not merge — a pool of bounded sliding windows
(the previous ``merge_stats`` approach) is an approximation whose error
grows with what the windows have already evicted.  Histograms with
**identical fixed buckets** merge *exactly*: summing per-bucket counts
loses nothing, no matter how many workers, restarts, or snapshots are
folded together.

Buckets are exponential (``bound[i] = lowest · growth**i``), so one small
counts array spans sub-millisecond cache hits and multi-second stalls at
constant relative resolution.  A percentile read off the merged histogram
is correct to within one bucket — a known, configured error bound, unlike
the window pool's unbounded one.

Everything here is deterministic and process-agnostic: a
:class:`Histogram` serializes to a plain dict (what crosses the worker
pipe inside stats snapshots), :func:`merge_histograms` folds those dicts,
and :func:`exposition` renders any snapshot as Prometheus-style text for
scrapers.  :class:`MetricsRegistry` is the named-instrument front door the
online pipeline and operators use.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exposition",
    "merge_histograms",
    "percentile_from_hist",
]


class Counter:
    """A monotonically increasing count (merge: sum)."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0: counters only go up)."""
        if n < 0:
            raise ValueError(f"counters only increase, got inc({n})")
        self.value += n


class Gauge:
    """A point-in-time value (merge: context-dependent, usually last/max)."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-exponential-bucket histogram with exact cross-process merge.

    Bucket ``i`` counts observations ``v <= lowest * growth**i`` (first
    matching bucket); one overflow bucket catches everything past the top
    bound.  Two histograms built with the same ``(lowest, growth,
    buckets)`` triple bucket every value identically, so merging is a
    per-bucket integer sum — exact, associative, order-free.

    The defaults (0.1 ms lowest bound, ``2**0.25`` growth, 80 buckets)
    cover 0.1 ms .. ~88 s at a constant ~19% relative bucket width, which
    is the error bound on any percentile read back out.

    >>> h = Histogram()
    >>> for v in (0.001, 0.002, 0.004, 0.1):
    ...     h.observe(v)
    >>> h.count
    4
    >>> 0.001 <= h.percentile(50) <= 0.004
    True
    """

    def __init__(
        self,
        lowest: float = 1e-4,
        growth: float = 2**0.25,
        buckets: int = 80,
    ) -> None:
        if lowest <= 0:
            raise ValueError(f"lowest bound must be positive, got {lowest}")
        if growth <= 1:
            raise ValueError(f"growth must be > 1, got {growth}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.lowest = float(lowest)
        self.growth = float(growth)
        self.n_buckets = int(buckets)
        self._log_growth = math.log(self.growth)
        #: per-bucket counts; index ``n_buckets`` is the overflow bucket
        self.counts = [0] * (self.n_buckets + 1)
        self.sum = 0.0
        self.count = 0

    # -- recording -------------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """The bucket ``value`` lands in (deterministic across processes)."""
        if value <= self.lowest:
            return 0
        i = math.ceil(math.log(value / self.lowest) / self._log_growth)
        # guard the exact-boundary case float log can push either way:
        # a value just at bound[i] must never land above its bucket
        while i > 0 and value <= self.lowest * self.growth ** (i - 1):
            i -= 1
        return min(i, self.n_buckets)

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp into bucket 0)."""
        value = float(value)
        self.counts[self.bucket_index(value)] += 1
        self.sum += value
        self.count += 1

    # -- reading ---------------------------------------------------------------

    def bucket_bounds(self, i: int) -> tuple[float, float]:
        """``(lower, upper)`` value bounds of bucket ``i`` (0-lower first)."""
        upper = self.lowest * self.growth**i
        lower = 0.0 if i == 0 else self.lowest * self.growth ** (i - 1)
        if i >= self.n_buckets:  # overflow: one growth step past the top
            lower = self.lowest * self.growth ** (self.n_buckets - 1)
            upper = lower * self.growth
        return lower, upper

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (0 with no observations).

        Walks the cumulative counts to the bucket holding the target rank
        and interpolates linearly inside it — always within one bucket
        width of the exact sample percentile.
        """
        return percentile_from_hist(self.to_dict(), q)

    def to_dict(self) -> dict:
        """The wire/snapshot form (plain JSON-able dict)."""
        return {
            "lowest": self.lowest,
            "growth": self.growth,
            "buckets": self.n_buckets,
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "Histogram":
        """Rebuild a histogram from its :meth:`to_dict` form."""
        h = cls(lowest=d["lowest"], growth=d["growth"], buckets=d["buckets"])
        h.counts = list(d["counts"])
        h.sum = float(d["sum"])
        h.count = int(d["count"])
        return h

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bucket configs must match)."""
        merged = merge_histograms([self.to_dict(), other.to_dict()])
        self.counts = list(merged["counts"])
        self.sum = merged["sum"]
        self.count = merged["count"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, lowest={self.lowest}, "
            f"growth={self.growth:.4f}, buckets={self.n_buckets})"
        )


def merge_histograms(dicts: "Sequence[Mapping]") -> dict:
    """Exactly merge histogram snapshot dicts (identical bucket configs).

    >>> a, b = Histogram(), Histogram()
    >>> a.observe(0.001); b.observe(0.5); b.observe(0.002)
    >>> merged = merge_histograms([a.to_dict(), b.to_dict()])
    >>> merged["count"]
    3
    """
    if not dicts:
        raise ValueError("nothing to merge")
    first = dicts[0]
    config = (first["lowest"], first["growth"], first["buckets"])
    counts = [0] * (int(first["buckets"]) + 1)
    total, count = 0.0, 0
    for d in dicts:
        if (d["lowest"], d["growth"], d["buckets"]) != config:
            raise ValueError(
                f"histogram bucket configs differ: "
                f"{(d['lowest'], d['growth'], d['buckets'])} vs {config}"
            )
        for i, c in enumerate(d["counts"]):
            counts[i] += int(c)
        total += float(d["sum"])
        count += int(d["count"])
    return {
        "lowest": first["lowest"],
        "growth": first["growth"],
        "buckets": first["buckets"],
        "counts": counts,
        "sum": total,
        "count": count,
    }


def percentile_from_hist(d: Mapping, q: float) -> float:
    """The ``q``-th percentile read from a histogram snapshot dict.

    Rank convention matches ``np.percentile``'s linear interpolation
    (target rank ``q/100 · (n-1)``); the value is interpolated inside the
    owning bucket, so the estimate is within one bucket width of the
    exact pooled-sample percentile.
    """
    count = int(d["count"])
    if count == 0:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    h = Histogram(lowest=d["lowest"], growth=d["growth"], buckets=d["buckets"])
    rank = q / 100.0 * (count - 1)
    cum = 0
    for i, c in enumerate(d["counts"]):
        if c and rank < cum + c:
            lower, upper = h.bucket_bounds(i)
            frac = (rank - cum + 0.5) / c
            return lower + min(max(frac, 0.0), 1.0) * (upper - lower)
        cum += c
    lower, upper = h.bucket_bounds(len(d["counts"]) - 1)
    return upper  # rank == count-1 landed on the last occupied edge


class MetricsRegistry:
    """Named instruments with one snapshot and one text exposition.

    The registry is the *live* instrumentation surface (the continual-
    learning pipeline counts retrains here; operators scrape
    :meth:`exposition_text`); the snapshot dict is the *mergeable* surface
    (what rides stats replies and folds across workers).  Thread-safe for
    creation; individual instrument updates are plain attribute writes
    (atomic under the GIL), matching how the serving counters behave.
    """

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._metrics: "dict[str, Counter | Gauge | Histogram]" = {}
        self._helps: dict[str, str] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, help, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, help, lambda: Gauge(name, help), Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        lowest: float = 1e-4,
        growth: float = 2**0.25,
        buckets: int = 80,
    ) -> Histogram:
        return self._get(
            name, help, lambda: Histogram(lowest, growth, buckets), Histogram
        )

    def _get(self, name: str, help: str, build, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = build()
                self._helps[name] = help
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def snapshot(self) -> dict:
        """Every instrument's current value in one JSON-able dict."""
        with self._lock:
            items = list(self._metrics.items())
        out: dict = {}
        for name, metric in items:
            out[name] = (
                metric.to_dict() if isinstance(metric, Histogram) else metric.value
            )
        return out

    def exposition_text(self) -> str:
        """Prometheus-style text exposition of every instrument."""
        return exposition(self.snapshot(), prefix=self.prefix, helps=self._helps)


def _is_hist_dict(value: object) -> bool:
    return isinstance(value, Mapping) and {"counts", "lowest", "growth"} <= set(value)


def exposition(
    snapshot: Mapping,
    prefix: str = "repro",
    helps: "Mapping[str, str] | None" = None,
) -> str:
    """Render a metrics/stats snapshot as Prometheus-style text.

    Scalars named ``*_total`` become counters, other scalars gauges, and
    histogram dicts (:meth:`Histogram.to_dict`) become the standard
    cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet.
    Non-numeric values are skipped — the function accepts the cluster's
    merged stats dict as-is.

    >>> print(exposition({"requests_total": 3}, prefix="svc"))
    # TYPE svc_requests_total counter
    svc_requests_total 3
    <BLANKLINE>
    """
    lines: list[str] = []
    for name in snapshot:
        value = snapshot[name]
        full = f"{prefix}_{name}" if prefix else name
        help_text = (helps or {}).get(name, "")
        if _is_hist_dict(value):
            if help_text:
                lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} histogram")
            h = Histogram(
                lowest=value["lowest"],
                growth=value["growth"],
                buckets=value["buckets"],
            )
            cum = 0
            for i, c in enumerate(value["counts"]):
                cum += int(c)
                if i < h.n_buckets:
                    le = f"{h.lowest * h.growth ** i:.6g}"
                else:
                    le = "+Inf"
                lines.append(f'{full}_bucket{{le="{le}"}} {cum}')
            lines.append(f"{full}_sum {float(value['sum']):.9g}")
            lines.append(f"{full}_count {int(value['count'])}")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue  # merged stats carry lists/strings too; not metrics
        else:
            kind = "counter" if name.endswith("_total") else "gauge"
            if help_text:
                lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {kind}")
            rendered = str(int(value)) if float(value).is_integer() else f"{value:.9g}"
            lines.append(f"{full} {rendered}")
    return "\n".join(lines) + "\n"
