"""Deterministic per-request tracing across the serving cluster.

A *trace* is the story of one ranking request: a root ``request`` span
(submit to answer, coordinator clock) plus non-overlapping **stage spans**
that partition its wall time —

========================  =====================================================
stage                     what the time is
========================  =====================================================
``dispatch``              coordinator: route + pickle + pipe write
``worker-ingress``        pipe transit + worker inbox/loop scheduling wait
``service-queue``         micro-batcher wait + in-batch wait before the
                          request's fused slab (or, cache path, until answered)
``encode``                the request's slab's ``encode_many`` pass
``score``                 the slab's stacked ``decision_function``
``service-finish``        argsort / materialize / future resolution
``cache``                 zero-width marker: the ranking cache answered
``reply-egress``          reply pickle + pipe transit + coordinator reader wake
``retry-backoff``         detour: jittered wait before a re-dispatch
``degraded-score``        detour: coordinator-side fallback answer
========================  =====================================================

Stage times are *experienced* latency (a request in a 16-query slab waits
through the whole slab's encode, and that is what its ``encode`` span
records); per-span ``attrs`` carry the rows/slab_rows needed to derive
CPU shares.  Because every process on one host reads the same monotonic
clock, worker spans and coordinator spans compose: the coordinator
synthesizes the two transport stages from the gaps around the worker's
span block and clamps any cross-process skew at zero.

Determinism: whether a request is traced is a pure function of its
request id (:func:`sample_request` hashes it against ``sample_rate``), so
two identical runs trace identical request sets — and tracing *itself*
never changes an answer, only observes it.

Recording is a bounded ring per process (:class:`SpanRecorder`): a
long-lived coordinator keeps the newest spans and counts what it dropped,
never growing without bound.  :func:`write_jsonl` /

:func:`read_jsonl` are the sink format, and :func:`stage_breakdown` turns
a span set into the per-stage attribution table the cluster benchmark
records (see ``benchmarks/bench_cluster.py --trace``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.util.rng import hash_bits

__all__ = [
    "ROOT_SPAN",
    "Span",
    "SpanRecorder",
    "TraceConfig",
    "TraceContext",
    "Tracer",
    "read_jsonl",
    "sample_request",
    "stage_breakdown",
    "trace_id_for",
    "write_jsonl",
]

#: the name of the per-request root span (submit → answer wall time)
ROOT_SPAN = "request"


@dataclass(frozen=True)
class TraceConfig:
    """How a process samples and buffers traces."""

    #: fraction of requests traced, decided by request-id hash (0 = none,
    #: 1 = all); deterministic — identical runs trace identical requests
    sample_rate: float = 1.0
    #: bounded span ring per process (oldest spans drop past this)
    ring_size: int = 16384

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )
        if self.ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {self.ring_size}")


@dataclass(frozen=True)
class TraceContext:
    """The per-request trace identity that travels over the wire.

    Presence *is* the sampling decision: a worker instruments a request
    iff its :class:`~repro.service.ipc.RankRequest` carries a context.
    """

    trace_id: str
    req_id: int


@dataclass(frozen=True)
class Span:
    """One named interval (or zero-width event) in one process."""

    #: hex id shared by every span of one request ("" for process events)
    trace_id: str
    #: stage or event name (see the module table)
    name: str
    #: ``time.monotonic()`` at span start, in the recording process
    start_s: float
    duration_s: float
    #: which process recorded it ("coordinator", "worker-3", "service")
    process: str
    #: the cluster request id (-1 for process events)
    req_id: int = -1
    #: small JSON-able extras (rows, attempt ordinal, reason, ...)
    attrs: "dict | None" = None

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_json(self) -> dict:
        d = {
            "trace_id": self.trace_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "process": self.process,
            "req_id": self.req_id,
        }
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_json(cls, d: dict) -> "Span":
        return cls(
            trace_id=d["trace_id"],
            name=d["name"],
            start_s=float(d["start_s"]),
            duration_s=float(d["duration_s"]),
            process=d["process"],
            req_id=int(d.get("req_id", -1)),
            attrs=d.get("attrs"),
        )


def trace_id_for(req_id: int) -> str:
    """The 64-bit hex trace id derived (deterministically) from a request id."""
    return f"{hash_bits('trace-id', req_id)[0]:016x}"


def sample_request(req_id: int, sample_rate: float) -> bool:
    """Whether ``req_id`` is traced at ``sample_rate`` (pure, hash-based).

    >>> sample_request(7, 1.0), sample_request(7, 0.0)
    (True, False)
    >>> all(sample_request(i, 0.5) == sample_request(i, 0.5) for i in range(32))
    True
    """
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    return hash_bits("trace-sample", req_id)[0] / 2**64 < sample_rate


class SpanRecorder:
    """A bounded, thread-safe ring buffer of spans (per process).

    Reader threads, the monitor thread, and the event loop all record
    concurrently; the ring keeps the newest ``ring_size`` spans and counts
    the overflow honestly (``dropped``) instead of growing without bound.
    """

    def __init__(self, ring_size: int = 16384) -> None:
        self._spans: deque[Span] = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self.recorded = 0
        self.dropped = 0

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)
            self.recorded += 1

    def record_many(self, spans: "Iterable[Span]") -> None:
        for span in spans:
            self.record(span)

    def spans(self) -> list[Span]:
        """The buffered spans, oldest first (a copy)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Remove and return everything buffered."""
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class Tracer:
    """Sampling decisions + the process's span ring, in one handle.

    ``context_for`` is the hot-path gate: with tracing disabled the
    serving layer holds no tracer at all (a ``None`` check), and with a
    tracer at ``sample_rate=0`` the per-request cost is one short hash.
    """

    def __init__(self, config: "TraceConfig | None" = None, process: str = "coordinator") -> None:
        self.config = config if config is not None else TraceConfig()
        self.process = process
        self.recorder = SpanRecorder(self.config.ring_size)

    def context_for(self, req_id: int) -> "TraceContext | None":
        """A trace context iff ``req_id`` is sampled (None otherwise)."""
        if not sample_request(req_id, self.config.sample_rate):
            return None
        return TraceContext(trace_id=trace_id_for(req_id), req_id=req_id)

    def span(
        self,
        ctx: TraceContext,
        name: str,
        start_s: float,
        end_s: float,
        attrs: "dict | None" = None,
    ) -> Span:
        """Record (and return) one stage span for a traced request."""
        span = Span(
            trace_id=ctx.trace_id,
            name=name,
            start_s=start_s,
            duration_s=max(0.0, end_s - start_s),
            process=self.process,
            req_id=ctx.req_id,
            attrs=attrs,
        )
        self.recorder.record(span)
        return span

    def record_event(
        self, name: str, req_id: int = -1, attrs: "dict | None" = None
    ) -> None:
        """Record a zero-width process event (health flip, requeue, shed)."""
        self.recorder.record(
            Span(
                trace_id="",
                name=f"event:{name}",
                start_s=time.monotonic(),
                duration_s=0.0,
                process=self.process,
                req_id=req_id,
                attrs=attrs,
            )
        )

    def spans(self) -> list[Span]:
        return self.recorder.spans()


# -- sink ----------------------------------------------------------------------


def write_jsonl(path: "str | Path", spans: "Iterable[Span]") -> int:
    """Write spans as JSON lines; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_json(), sort_keys=True) + "\n")
            n += 1
    return n


def read_jsonl(path: "str | Path") -> list[Span]:
    """Read a span JSONL file back (inverse of :func:`write_jsonl`)."""
    out: list[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(Span.from_json(json.loads(line)))
    return out


# -- attribution ---------------------------------------------------------------


def stage_breakdown(spans: "Sequence[Span]") -> dict:
    """Per-stage latency attribution over a set of recorded spans.

    Groups spans by trace id, and for every trace with a root ``request``
    span computes *coverage* — the fraction of the request's wall time its
    stage spans account for (stages are designed to partition the wall, so
    uninstrumented time shows up as missing coverage, never double
    counting).  Process events (empty trace id) are ignored.

    Returns::

        {
          "n_traces": ...,                 # traces with a root span
          "wall_total_s": ...,             # sum of root durations
          "coverage_mean": ..., "coverage_min": ..., "coverage_p10": ...,
          "stages": {name: {"count", "total_s", "mean_ms", "fraction"}},
        }

    ``fraction`` is the stage's share of total wall time — the direct
    answer to "where does a request's time go".
    """
    by_trace: dict[str, list[Span]] = {}
    for span in spans:
        if span.trace_id:
            by_trace.setdefault(span.trace_id, []).append(span)
    stages: dict[str, dict] = {}
    coverages: list[float] = []
    wall_total = 0.0
    n_traces = 0
    for trace_spans in by_trace.values():
        root = next((s for s in trace_spans if s.name == ROOT_SPAN), None)
        if root is None:
            continue
        n_traces += 1
        wall_total += root.duration_s
        staged = 0.0
        for span in trace_spans:
            if span.name == ROOT_SPAN:
                continue
            agg = stages.setdefault(span.name, {"count": 0, "total_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += span.duration_s
            staged += span.duration_s
        coverages.append(staged / root.duration_s if root.duration_s > 0 else 1.0)
    for agg in stages.values():
        agg["mean_ms"] = 1e3 * agg["total_s"] / agg["count"]
        agg["fraction"] = agg["total_s"] / wall_total if wall_total else 0.0
    coverages.sort()
    return {
        "n_traces": n_traces,
        "wall_total_s": wall_total,
        "coverage_mean": (
            sum(coverages) / len(coverages) if coverages else 0.0
        ),
        "coverage_min": coverages[0] if coverages else 0.0,
        "coverage_p10": (
            coverages[int(0.1 * (len(coverages) - 1))] if coverages else 0.0
        ),
        "stages": {name: stages[name] for name in sorted(stages)},
    }
