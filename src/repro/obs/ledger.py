"""Benchmark history ledger and trailing-median regression sentinel.

Every ``BENCH_*.json`` is overwritten in place, so before this module the
repo had no longitudinal record of its own performance — a 2× latency
inflation that still cleared the one-shot CI floor was invisible.  The
ledger fixes that: each benchmark run appends one schema-versioned row
(git SHA, cpu count, headline metrics) to ``BENCH_history.jsonl``, and
:func:`check_regression` compares the current run against the **trailing
median** of prior rows with per-metric tolerances — a trend-aware gate
instead of a fixed floor.

Rows are plain JSONL so the history survives schema growth: readers skip
rows whose ``schema`` they don't understand, and per-metric comparisons
only consider rows that carry the metric.  The sentinel is **report-only
friendly**: it returns a structured verdict rather than raising, so CI
can print the report and choose its own exit policy (hard-fail is
reserved for benchmarks with enough accumulated history).

Tolerances are ``(direction, max_ratio)`` pairs::

    {"latency_p99_ms": ("lower", 2.0),   # flag if current > 2.0 × median
     "speedup":        ("higher", 0.5)}  # flag if current < 0.5 × median

>>> history = [
...     {"schema": 1, "benchmark": "cluster", "metrics": {"p99_ms": 10.0}},
...     {"schema": 1, "benchmark": "cluster", "metrics": {"p99_ms": 12.0}},
...     {"schema": 1, "benchmark": "cluster", "metrics": {"p99_ms": 11.0}},
... ]
>>> report = check_regression(history, "cluster", {"p99_ms": 25.0},
...                           {"p99_ms": ("lower", 2.0)})
>>> report["flagged"]
['p99_ms']
>>> report["checks"]["p99_ms"]["median"]
11.0
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "append_row",
    "check_regression",
    "git_sha",
    "ledger_row",
    "read_history",
]

LEDGER_SCHEMA_VERSION = 1

#: default trailing window: compare against the median of this many rows
DEFAULT_WINDOW = 8


def git_sha(cwd: "str | Path | None" = None) -> str:
    """The current git commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def ledger_row(
    benchmark: str,
    metrics: Mapping[str, float],
    extra: "Mapping | None" = None,
) -> dict:
    """Build one schema-versioned history row for ``benchmark``.

    ``metrics`` holds the headline numbers the regression sentinel will
    trend (scalar floats only — rich per-row structure belongs in the
    benchmark's own JSON).  ``extra`` is free-form provenance (workload
    shape, env knobs) excluded from trend comparisons.
    """
    clean: dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"metric {key!r} must be numeric, got {value!r}")
        clean[str(key)] = float(value)
    row = {
        "schema": LEDGER_SCHEMA_VERSION,
        "benchmark": str(benchmark),
        "git_sha": git_sha(),
        "cpu_count": os.cpu_count() or 1,
        "metrics": clean,
    }
    if extra:
        row["extra"] = dict(extra)
    return row


def append_row(path: "str | Path", row: Mapping) -> Path:
    """Append one row to the JSONL ledger at ``path`` (created if absent)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(dict(row), sort_keys=True) + "\n")
    return path


def read_history(path: "str | Path") -> list[dict]:
    """Read the ledger, skipping blank/corrupt/unknown-schema lines.

    A history file is an append-only artifact that outlives any single
    code version — tolerating bad lines beats refusing to trend at all.
    """
    path = Path(path)
    if not path.exists():
        return []
    rows: list[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(row, dict):
            continue
        if row.get("schema", 0) > LEDGER_SCHEMA_VERSION:
            continue
        rows.append(row)
    return rows


def _collapse_duplicate_shas(prior: "list[dict]") -> "list[dict]":
    """Fold consecutive same-git-SHA rows into one per-metric-median row.

    Some drivers append more than one row per invocation (the cluster
    benchmark's ``--chaos`` mode runs twice for replay determinism), so a
    commit can contribute several near-identical samples.  Left alone,
    those duplicates stuff the trailing window with one commit's noise —
    in the degenerate case the window is *entirely* the current commit
    and the sentinel compares a run against itself.  Rows whose SHA is
    ``"unknown"`` (runs outside a checkout) are kept as-is: they cannot
    be proven to be the same build.
    """
    collapsed: list[dict] = []
    group: list[dict] = []

    def flush() -> None:
        if not group:
            return
        if len(group) == 1:
            collapsed.append(group[0])
        else:
            names = {n for row in group for n in row["metrics"]}
            merged = dict(group[-1])
            merged["metrics"] = {
                name: float(
                    statistics.median(
                        float(row["metrics"][name])
                        for row in group
                        if name in row["metrics"]
                    )
                )
                for name in names
            }
            collapsed.append(merged)
        group.clear()

    for row in prior:
        sha = row.get("git_sha", "unknown")
        if sha == "unknown":
            flush()
            collapsed.append(row)
            continue
        if group and group[-1].get("git_sha") != sha:
            flush()
        group.append(row)
    flush()
    return collapsed


def check_regression(
    history: "Sequence[Mapping] | str | Path",
    benchmark: str,
    metrics: Mapping[str, float],
    tolerances: Mapping[str, tuple],
    window: int = DEFAULT_WINDOW,
    min_history: int = 3,
    current_sha: "str | None" = None,
) -> dict:
    """Compare a run's metrics against the trailing median of its history.

    ``tolerances`` maps metric name → ``(direction, max_ratio)``:

    * ``("lower", r)`` — metric should stay low (latency); flag when
      ``current > r × median``;
    * ``("higher", r)`` — metric should stay high (speedup, τ); flag
      when ``current < r × median``.

    Returns a report dict: ``ok`` (no metric flagged), ``flagged``
    (sorted metric names), ``checks`` (per-metric median / current /
    ratio / bound / verdict), ``n_history``.  Metrics with fewer than
    ``min_history`` prior samples are reported as ``"insufficient-history"``
    and never flagged — a fresh clone cannot fail its first run.

    Two degenerate-window guards keep the median honest:

    * rows whose ``git_sha`` equals ``current_sha`` are excluded — a
      driver that already appended this run's row (or ran twice per
      invocation) must not let the sentinel compare a commit against
      itself;
    * consecutive rows sharing any other git SHA collapse to one
      per-metric-median row before windowing, so a multi-append commit
      contributes one sample, not ``window`` of them.
    """
    if isinstance(history, (str, Path)):
        history = read_history(history)
    prior = [
        dict(row) for row in history
        if row.get("benchmark") == benchmark and isinstance(row.get("metrics"), dict)
    ]
    if current_sha and current_sha != "unknown":
        prior = [row for row in prior if row.get("git_sha") != current_sha]
    prior = _collapse_duplicate_shas(prior)
    report: dict = {
        "benchmark": benchmark,
        "ok": True,
        "flagged": [],
        "checks": {},
        "n_history": len(prior),
        "window": int(window),
    }
    for name, tol in tolerances.items():
        direction, max_ratio = tol
        if direction not in ("lower", "higher"):
            raise ValueError(f"direction must be 'lower' or 'higher', got {direction!r}")
        if name not in metrics:
            report["checks"][name] = {"verdict": "metric-missing"}
            continue
        current = float(metrics[name])
        samples = [
            float(row["metrics"][name])
            for row in prior[-int(window):]
            if name in row["metrics"]
        ]
        if len(samples) < min_history:
            report["checks"][name] = {
                "verdict": "insufficient-history",
                "current": current,
                "n_samples": len(samples),
            }
            continue
        median = float(statistics.median(samples))
        if median <= 0.0:
            report["checks"][name] = {
                "verdict": "degenerate-median",
                "current": current,
                "median": median,
            }
            continue
        ratio = current / median
        if direction == "lower":
            regressed = ratio > float(max_ratio)
        else:
            regressed = ratio < float(max_ratio)
        report["checks"][name] = {
            "verdict": "regressed" if regressed else "ok",
            "current": current,
            "median": median,
            "ratio": ratio,
            "direction": direction,
            "max_ratio": float(max_ratio),
            "n_samples": len(samples),
        }
        if regressed:
            report["flagged"].append(name)
            report["ok"] = False
    report["flagged"].sort()
    return report


def format_report(report: Mapping) -> str:
    """Human-readable one-line-per-metric rendering of a sentinel report."""
    lines = [
        f"regression check [{report['benchmark']}] "
        f"history={report['n_history']} "
        f"{'OK' if report['ok'] else 'REGRESSED: ' + ', '.join(report['flagged'])}"
    ]
    for name, check in sorted(report.get("checks", {}).items()):
        verdict = check.get("verdict", "?")
        if "median" in check and "ratio" in check:
            lines.append(
                f"  {name}: {verdict} current={check['current']:.6g} "
                f"median={check['median']:.6g} ratio={check['ratio']:.3f} "
                f"({check['direction']}, bound {check['max_ratio']})"
            )
        else:
            lines.append(f"  {name}: {verdict}")
    return "\n".join(lines)
