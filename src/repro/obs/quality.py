"""Streaming ranking-quality estimation for the online learning loop.

The paper's product is ranking quality — Kendall τ between predicted and
true orderings — yet before this module τ was only computed *offline*
(shadow evaluation at retrain time, episode post-mortems in benchmarks).
:class:`QualityWatch` makes it a live signal: every
:class:`~repro.online.feedback.MeasuredFeedback` record that flows through
a :class:`~repro.online.feedback.FeedbackCollector` (or the cluster-wide
collector) already carries the probe-measured τ of the model that served
it, so streaming those into per-family rolling windows yields online
quality gauges with zero extra kernel executions.

Three layers, all deterministic functions of the feedback stream:

* **rolling gauges** — overall and per-family windowed mean τ, published
  to a :class:`~repro.obs.metrics.MetricsRegistry`
  (``quality_online_tau``, ``quality_tau_<family>``,
  ``quality_observations_total``);
* **promotion outcomes** — at promote time the pipeline calls
  :meth:`QualityWatch.note_promotion` with the shadow-evaluated τ; the
  watch then accumulates the *realized* online τ of that version and
  records the pair, answering "did the promotion deliver what the shadow
  promised?";
* **regression alerts** — when a promoted version's realized τ falls
  below its shadow τ by more than ``alert_margin`` (after
  ``min_outcome_records`` observations), a deterministic alert fires
  exactly once per promotion: an entry in :attr:`alerts`, a counter inc,
  and an optional audit-journal event.

>>> watch = QualityWatch(window=4)
>>> class _FB:  # stand-in for MeasuredFeedback
...     def __init__(self, family, tau, version):
...         self.family, self.tau, self.model_version = family, tau, version
>>> for tau in (0.9, 0.8): _ = watch.observe(_FB("line", tau, "v0001"))
>>> round(watch.overall_tau(), 3)
0.85
>>> round(watch.family_tau("line"), 3)
0.85
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["PromotionOutcome", "QualityWatch"]


@dataclass
class PromotionOutcome:
    """One promotion's promised-vs-delivered quality record."""

    version: str
    shadow_tau: float            # candidate τ the shadow evaluation promised
    production_tau: float        # incumbent τ it beat at promote time
    realized_taus: list = field(default_factory=list)
    alerted: bool = False

    @property
    def n_records(self) -> int:
        return len(self.realized_taus)

    @property
    def realized_tau(self) -> Optional[float]:
        """Mean online τ observed for this version so far (None if none)."""
        if not self.realized_taus:
            return None
        return float(sum(self.realized_taus) / len(self.realized_taus))

    def summary(self) -> dict:
        realized = self.realized_tau
        return {
            "version": self.version,
            "shadow_tau": self.shadow_tau,
            "production_tau": self.production_tau,
            "realized_tau": realized,
            "n_records": self.n_records,
            "gap": None if realized is None else realized - self.shadow_tau,
            "alerted": self.alerted,
        }


class QualityWatch:
    """Rolling τ gauges + promotion-outcome tracking + regression alerts.

    Feed it measured feedback via :meth:`observe` — the continual-learning
    pipeline does this automatically when constructed with ``quality=`` —
    and read quality back via :meth:`overall_tau` / :meth:`family_tau` /
    the registry gauges.  All state is a pure fold over the observation
    stream: same records in, same gauges and alerts out.
    """

    def __init__(
        self,
        metrics=None,
        *,
        window: int = 64,
        alert_margin: float = 0.15,
        min_outcome_records: int = 6,
        max_outcomes: int = 64,
        audit=None,
        tracer=None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if alert_margin < 0.0:
            raise ValueError(f"alert_margin must be >= 0, got {alert_margin}")
        self.metrics = metrics
        self.audit = audit
        self.tracer = tracer
        self.window = int(window)
        self.alert_margin = float(alert_margin)
        self.min_outcome_records = int(min_outcome_records)
        self.max_outcomes = int(max_outcomes)
        self._overall: deque = deque(maxlen=self.window)
        self._families: dict[str, deque] = {}
        self._outcomes: list[PromotionOutcome] = []
        self.observations = 0
        self.alerts: list[dict] = []

    # -- ingest ----------------------------------------------------------------

    def observe(self, feedback) -> "QualityWatch":
        """Fold one measured-feedback record into the gauges.

        Accepts anything with ``family``, ``tau`` and ``model_version``
        attributes (i.e. :class:`~repro.online.feedback.MeasuredFeedback`).
        """
        tau = float(feedback.tau)
        family = str(feedback.family)
        version = str(feedback.model_version)
        self.observations += 1
        if self.metrics is not None:
            self.metrics.counter(
                "quality_observations_total",
                help="measured-feedback records folded into quality gauges",
            ).inc()
        self._overall.append(tau)
        self._families.setdefault(family, deque(maxlen=self.window)).append(tau)
        watch = self._current_outcome()
        if watch is not None and watch.version == version:
            watch.realized_taus.append(tau)
            self._judge(watch)
        self._publish()
        return self

    def note_promotion(
        self, version: str, shadow_tau: float, production_tau: float = 0.0
    ) -> PromotionOutcome:
        """Start realized-τ tracking for a freshly promoted version."""
        outcome = PromotionOutcome(
            version=str(version),
            shadow_tau=float(shadow_tau),
            production_tau=float(production_tau),
        )
        self._outcomes.append(outcome)
        if len(self._outcomes) > self.max_outcomes:
            self._outcomes = self._outcomes[-self.max_outcomes:]
        self._publish()
        return outcome

    # -- alerting --------------------------------------------------------------

    def _current_outcome(self) -> Optional[PromotionOutcome]:
        return self._outcomes[-1] if self._outcomes else None

    def _judge(self, outcome: PromotionOutcome) -> None:
        """Fire the regression alert once per promotion, deterministically."""
        if outcome.alerted or outcome.n_records < self.min_outcome_records:
            return
        realized = outcome.realized_tau
        floor = outcome.shadow_tau - self.alert_margin
        if realized is None or realized >= floor:
            return
        outcome.alerted = True
        alert = {
            "type": "quality-regression",
            "version": outcome.version,
            "realized_tau": realized,
            "shadow_tau": outcome.shadow_tau,
            "floor": floor,
            "n_records": outcome.n_records,
        }
        self.alerts.append(alert)
        if self.metrics is not None:
            self.metrics.counter(
                "quality_regression_alerts_total",
                help="realized online tau fell below the shadow-gated floor",
            ).inc()
        if self.audit is not None:
            self.audit.record("quality-regression", alert)
        if self.tracer is not None:
            self.tracer.record_event(
                "quality-regression", attrs={"version": outcome.version}
            )

    # -- readback --------------------------------------------------------------

    def overall_tau(self) -> float:
        """Windowed mean τ across all families (0.0 before any feedback)."""
        if not self._overall:
            return 0.0
        return float(sum(self._overall) / len(self._overall))

    def family_tau(self, family: str) -> float:
        """Windowed mean τ for one stencil family (0.0 if unseen)."""
        window = self._families.get(str(family))
        if not window:
            return 0.0
        return float(sum(window) / len(window))

    def family_taus(self) -> dict[str, float]:
        """Every family's windowed mean τ, sorted by family name."""
        return {f: self.family_tau(f) for f in sorted(self._families)}

    def realized_tau(self, version: "str | None" = None) -> Optional[float]:
        """Realized online τ for ``version`` (latest promotion if None)."""
        if version is None:
            outcome = self._current_outcome()
        else:
            outcome = next(
                (o for o in reversed(self._outcomes) if o.version == str(version)),
                None,
            )
        return None if outcome is None else outcome.realized_tau

    def outcomes(self) -> list[dict]:
        """Promotion-outcome summaries, oldest first."""
        return [o.summary() for o in self._outcomes]

    def snapshot(self) -> dict:
        """One JSON-friendly dict with every quality signal."""
        return {
            "observations": self.observations,
            "overall_tau": self.overall_tau(),
            "family_taus": self.family_taus(),
            "outcomes": self.outcomes(),
            "alerts": list(self.alerts),
        }

    # -- metrics publishing ----------------------------------------------------

    def _publish(self) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge(
            "quality_online_tau", help="windowed mean Kendall tau, all families"
        ).set(self.overall_tau())
        for family, tau in self.family_taus().items():
            self.metrics.gauge(
                f"quality_tau_{family}",
                help=f"windowed mean Kendall tau, family {family}",
            ).set(tau)
        outcome = self._current_outcome()
        if outcome is not None:
            self.metrics.gauge(
                "quality_shadow_tau",
                help="shadow-evaluated tau promised at the latest promotion",
            ).set(outcome.shadow_tau)
            realized = outcome.realized_tau
            if realized is not None:
                self.metrics.gauge(
                    "quality_realized_tau",
                    help="realized online tau of the latest promoted version",
                ).set(realized)
