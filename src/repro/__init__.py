"""repro — reproduction of *Autotuning Stencil Computations with Structural
Ordinal Regression Learning* (Cosenza, Durillo, Ermon, Juurlink; IPDPS 2017).

The library implements the paper's complete system on a simulated testbed:

* stencil modeling and the feature-vector encoding framework (§III);
* the ordinal-regression (RankSVM) formulation over partial rankings (§IV);
* a PATUS-like source-to-source compiler substrate with loop blocking,
  unrolling and chunking (§V);
* an analytical Xeon E5-2680 v3 performance model standing in for the
  paper's hardware;
* the four iterative-compilation search baselines and the experiment
  harnesses for every table and figure (§VI).

Quickstart::

    from repro import (OrdinalAutotuner, SimulatedMachine, TrainingSetBuilder,
                       benchmark_by_id)

    machine = SimulatedMachine(seed=0)
    training_set = TrainingSetBuilder(machine).build(3840)
    tuner = OrdinalAutotuner().train(training_set)
    best = tuner.best(benchmark_by_id("laplacian-128x128x128"))

See README.md for the subsystem map, ``examples/`` for runnable
scenarios, ``benchmarks/`` for the table/figure regeneration harnesses
and the ``BENCH_*.json`` recorders, and ``docs/`` (architecture.md,
serving.md, continual_learning.md) for the deep dives.
"""

from repro.autotune import (
    CompilationWorkflow,
    OrdinalAutotuner,
    TrainingSet,
    TrainingSetBuilder,
)
from repro.features import FeatureEncoder
from repro.learn import RankSVM, RankSVMConfig
from repro.machine import BudgetedMachine, MachineSpec, SimulatedMachine, XEON_E5_2680_V3
from repro.online import (
    ClusterFeedbackCollector,
    ContinualLearningPipeline,
    DriftMonitor,
    FeedbackArchive,
    FeedbackCollector,
    IncrementalTrainer,
    PromotionPolicy,
    ShadowEvaluator,
)
from repro.ranking import RankingGroups, kendall_tau
from repro.search import (
    DifferentialEvolution,
    EvolutionStrategy,
    GenerationalGA,
    RandomSearch,
    SteadyStateGA,
)
from repro.service import ModelRegistry, RankingCache, ServiceCluster, TuningService
from repro.stencil import (
    BENCHMARKS,
    TEST_BENCHMARKS,
    StencilExecution,
    StencilInstance,
    StencilKernel,
    StencilPattern,
    benchmark_by_id,
)
from repro.tuning import TuningSpace, TuningVector, patus_space, preset_candidates

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "BudgetedMachine",
    "ClusterFeedbackCollector",
    "CompilationWorkflow",
    "ContinualLearningPipeline",
    "DifferentialEvolution",
    "DriftMonitor",
    "EvolutionStrategy",
    "FeatureEncoder",
    "FeedbackArchive",
    "FeedbackCollector",
    "GenerationalGA",
    "IncrementalTrainer",
    "MachineSpec",
    "ModelRegistry",
    "OrdinalAutotuner",
    "PromotionPolicy",
    "RandomSearch",
    "RankingCache",
    "RankSVM",
    "RankSVMConfig",
    "RankingGroups",
    "ServiceCluster",
    "ShadowEvaluator",
    "SimulatedMachine",
    "StencilExecution",
    "StencilInstance",
    "StencilKernel",
    "StencilPattern",
    "SteadyStateGA",
    "TEST_BENCHMARKS",
    "TrainingSet",
    "TrainingSetBuilder",
    "TuningService",
    "TuningSpace",
    "TuningVector",
    "XEON_E5_2680_V3",
    "__version__",
    "benchmark_by_id",
    "kendall_tau",
    "patus_space",
    "preset_candidates",
]
