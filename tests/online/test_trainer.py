"""Tests for corpus merge, reweighting and warm-started incremental fits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.training import merge_corpus, reweight_groups
from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.online.trainer import IncrementalTrainer
from repro.ranking.partial import RankingGroups
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube

from tests.online.conftest import make_feedback


def _feedback(machine, n_records=3, n_points=8):
    out = []
    for i in range(n_records):
        kernel = StencilKernel.single_buffer(
            f"hypercube-3d-r{1 + i % 3}", hypercube(3, 1 + i % 3), "float"
        )
        inst = StencilInstance(kernel, (64, 64, 64))
        out.append(make_feedback(inst, machine, seq=i, n=n_points, seed=i))
    return out


class TestReweightGroups:
    def _groups(self, per_group=10, n_groups=3):
        n = per_group * n_groups
        return RankingGroups(
            np.arange(n, dtype=float)[:, None],
            np.arange(n, dtype=float),
            np.repeat(np.arange(n_groups), per_group),
        )

    def test_full_weight_keeps_everything(self):
        g = self._groups()
        out = reweight_groups(g, {0: 1.0, 1: 1.0})
        assert len(out) == len(g)

    def test_fractional_weight_subsamples(self):
        out = reweight_groups(self._groups(), {0: 0.5}, rng=0)
        sizes = {gid: rows.size for gid, rows in out.iter_groups()}
        assert sizes == {0: 5, 1: 10, 2: 10}

    def test_zero_weight_drops_group(self):
        out = reweight_groups(self._groups(), {1: 0.0})
        assert set(np.unique(out.groups)) == {0, 2}

    def test_min_points_floor(self):
        out = reweight_groups(self._groups(), {0: 0.01}, min_points=2, rng=0)
        sizes = {gid: rows.size for gid, rows in out.iter_groups()}
        assert sizes[0] == 2

    def test_all_groups_dropped_yields_empty(self):
        out = reweight_groups(self._groups(), {0: 0.0, 1: 0.0, 2: 0.0})
        assert len(out) == 0


class TestMergeCorpus:
    def test_feedback_groups_offset_past_offline(self, phase1_training_set):
        fb = RankingGroups(
            np.zeros((4, phase1_training_set.data.X.shape[1])),
            np.array([1.0, 2.0, 3.0, 4.0]),
            np.array([7, 7, 99, 99]),
        )
        merged = merge_corpus(phase1_training_set, fb)
        assert len(merged) == len(phase1_training_set) + 4
        offline_max = int(np.max(phase1_training_set.data.groups))
        fb_groups = merged.groups[-4:]
        assert fb_groups.min() > offline_max
        assert len(np.unique(fb_groups)) == 2

    def test_offline_subsampling(self, phase1_training_set):
        merged = merge_corpus(
            phase1_training_set,
            RankingGroups(
                np.empty((0, phase1_training_set.data.X.shape[1])),
                np.empty(0),
                np.empty(0, dtype=np.int64),
            ),
            offline_points=len(phase1_training_set) // 2,
        )
        assert len(merged) < len(phase1_training_set)
        # every offline instance stays represented
        assert merged.num_groups == phase1_training_set.num_instances

    def test_dimension_mismatch_rejected(self, phase1_training_set):
        bad = RankingGroups(np.zeros((2, 3)), np.ones(2), np.zeros(2))
        with pytest.raises(ValueError, match="feature dimension"):
            merge_corpus(phase1_training_set, bad)


class TestIncrementalTrainer:
    def test_feedback_groups_encoding(self, phase1_training_set, phase1_tuner, machine):
        trainer = IncrementalTrainer(phase1_training_set, phase1_tuner.encoder)
        feedback = _feedback(machine)
        groups = trainer.feedback_groups(feedback)
        assert len(groups) == sum(len(fb) for fb in feedback)
        assert groups.num_groups == len(feedback)
        # rows match the per-record encode exactly
        first = feedback[0]
        expect = phase1_tuner.encoder.encode_batch(first.instance, list(first.tunings))
        assert np.array_equal(groups.X[: len(first)], expect)
        assert np.array_equal(groups.times[: len(first)], first.true_times)

    def test_weights_decay_with_age_and_relieve_good_records(
        self, phase1_training_set, phase1_tuner, machine
    ):
        import dataclasses

        trainer = IncrementalTrainer(
            phase1_training_set, phase1_tuner.encoder, decay=0.5, relief=0.4
        )
        feedback = [
            dataclasses.replace(fb, tau=tau)
            for fb, tau in zip(_feedback(machine), [0.0, 0.0, 1.0])
        ]
        weights = trainer.feedback_weights(feedback)
        # newest (seq 2, τ=1): recency 1.0 × importance 0.6
        assert weights[2] == pytest.approx(0.6)
        # middle (seq 1, τ=0): recency 0.5 × importance 1.0
        assert weights[1] == pytest.approx(0.5)
        # oldest (seq 0, τ=0): recency 0.25
        assert weights[0] == pytest.approx(0.25)

    def test_train_produces_fitted_model(self, phase1_training_set, phase1_tuner, machine):
        trainer = IncrementalTrainer(
            phase1_training_set,
            phase1_tuner.encoder,
            config=RankSVMConfig(max_iter=60, seed=0),
        )
        model = trainer.train(_feedback(machine), warm_start=phase1_tuner.model)
        assert model.is_fitted
        assert model.w_.shape == phase1_tuner.model.w_.shape

    def test_encoder_mismatch_rejected(self, phase1_training_set):
        from repro.features.encoder import FeatureEncoder

        with pytest.raises(ValueError, match="encoded with"):
            IncrementalTrainer(phase1_training_set, FeatureEncoder(interactions=False))

    def test_validation(self, phase1_training_set, phase1_tuner):
        with pytest.raises(ValueError, match="decay"):
            IncrementalTrainer(phase1_training_set, phase1_tuner.encoder, decay=0.0)
        with pytest.raises(ValueError, match="relief"):
            IncrementalTrainer(phase1_training_set, phase1_tuner.encoder, relief=1.0)


class TestWarmStart:
    def test_warm_start_reaches_same_optimum(self, synthetic_ranking_data):
        cold = RankSVM(RankSVMConfig(seed=0)).fit(synthetic_ranking_data)
        warm = RankSVM(RankSVMConfig(seed=0)).fit(
            synthetic_ranking_data, warm_start=cold.w_
        )
        # convex objective: warm start changes the path, not the solution
        assert np.allclose(warm.w_, cold.w_, atol=1e-3)
        assert warm.solver_result_.iterations <= cold.solver_result_.iterations

    def test_warm_start_shape_validated(self, synthetic_ranking_data):
        with pytest.raises(ValueError, match="warm_start"):
            RankSVM().fit(synthetic_ranking_data, warm_start=np.zeros(2))

    def test_sgd_accepts_warm_start(self, synthetic_ranking_data):
        model = RankSVM(RankSVMConfig(solver="sgd", seed=0)).fit(
            synthetic_ranking_data,
            warm_start=np.zeros(synthetic_ranking_data.X.shape[1]),
        )
        assert model.is_fitted
