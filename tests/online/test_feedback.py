"""Tests for feedback collection: hooks, probing, budgets, dedupe."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.machine.budget import BudgetedMachine, MeasurementBudgetExceeded
from repro.machine.executor import SimulatedMachine
from repro.online.feedback import FeedbackCollector, probe_ranks, stencil_family
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube, laplacian
from repro.tuning.space import patus_space


def _instance(name="lap", radius=1, size=(64, 64, 64)) -> StencilInstance:
    kernel = StencilKernel.single_buffer(name, laplacian(3, radius), "double")
    return StencilInstance(kernel, size)


def _response(scores, version="v0001"):
    return SimpleNamespace(scores=np.asarray(scores), model_version=version)


def _serve(collector, instance, n=24, version="v0001", seed=0, score_seed=None):
    cands = patus_space(instance.dims).random_vectors(n, rng=seed)
    scores = np.random.default_rng(
        seed if score_seed is None else score_seed
    ).normal(size=n)
    collector.hook(instance, cands, _response(scores, version))
    return cands, scores


class TestHelpers:
    def test_family_parsing(self):
        assert stencil_family("train-hypercube-3d-r2-float") == "hypercube"
        assert stencil_family("hyperplane-3d-r1-double") == "hyperplane"
        assert stencil_family("laplacian") == "laplacian"

    def test_probe_ranks_cover_head_and_tail(self):
        ranks = probe_ranks(100, 10)
        assert ranks[0] == 0 and ranks[-1] == 99
        assert len(ranks) == 10
        assert (np.diff(ranks) > 0).all()

    def test_probe_ranks_small_sets_complete(self):
        assert probe_ranks(4, 16).tolist() == [0, 1, 2, 3]


class TestCollector:
    def test_hook_records_and_measure_produces_feedback(self, collector):
        inst = _instance()
        cands, scores = _serve(collector, inst)
        assert collector.pending_count == 1
        new = collector.measure_pending()
        assert collector.pending_count == 0
        assert len(new) == 1
        fb = new[0]
        assert fb.family == "lap"
        assert fb.model_version == "v0001"
        assert len(fb.tunings) == collector.probe_size
        assert fb.true_times.shape == (collector.probe_size,)
        assert (fb.true_times > 0).all()
        assert -1.0 <= fb.tau <= 1.0
        # probed tunings are a subset of the candidate set
        keys = {t.as_tuple() for t in cands}
        assert all(t.as_tuple() in keys for t in fb.tunings)

    def test_served_scores_align_with_probed_tunings(self, collector):
        inst = _instance()
        cands, scores = _serve(collector, inst)
        fb = collector.measure_pending()[0]
        by_key = {t.as_tuple(): s for t, s in zip(cands, scores)}
        expect = [by_key[t.as_tuple()] for t in fb.tunings]
        assert np.allclose(fb.served_scores, expect)

    def test_dedupe_skips_repeat_instance_same_version(self, collector):
        inst = _instance()
        _serve(collector, inst)
        _serve(collector, inst, seed=1)  # same instance, same version
        assert collector.pending_count == 1
        assert collector.skipped_repeats == 1
        # a new model version re-records the same instance
        _serve(collector, inst, version="v0002")
        assert collector.pending_count == 2

    def test_no_dedupe_records_everything(self, budgeted_machine):
        collector = FeedbackCollector(budgeted_machine, probe_size=8, dedupe=False)
        inst = _instance()
        _serve(collector, inst)
        _serve(collector, inst, seed=1)
        assert collector.pending_count == 2

    def test_budget_exhaustion_puts_record_back(self):
        machine = BudgetedMachine(SimulatedMachine(seed=0), max_evaluations=12)
        collector = FeedbackCollector(machine, probe_size=8, dedupe=False)
        inst = _instance()
        _serve(collector, inst)
        _serve(collector, inst, seed=1)
        new = collector.measure_pending()
        assert len(new) == 1  # 12-evaluation budget covers one 8-probe record
        assert collector.pending_count == 1  # second put back, not lost
        assert machine.refused == 1
        machine.refill()
        assert len(collector.measure_pending()) == 1

    def test_never_affordable_probe_dropped_not_stalling(self):
        """A probe too big for even a full budget must not block the queue."""
        machine = BudgetedMachine(SimulatedMachine(seed=0), max_evaluations=4)
        collector = FeedbackCollector(machine, probe_size=8, dedupe=False)
        _serve(collector, _instance())  # 8-probe record can never fit
        small = _instance(name="small")
        cands = patus_space(3).random_vectors(3, rng=1)  # 3 < 4: fits
        scores = np.random.default_rng(1).normal(size=3)
        collector.hook(small, cands, _response(scores))
        new = collector.measure_pending()
        assert collector.dropped_unaffordable == 1
        assert [fb.instance.label() for fb in new] == [small.label()]
        assert collector.pending_count == 0

    def test_unaffordable_drop_forgets_seen_key(self):
        """After a raised budget, the dropped instance is measurable again."""
        machine = BudgetedMachine(SimulatedMachine(seed=0), max_evaluations=4)
        collector = FeedbackCollector(machine, probe_size=8)  # dedupe on
        inst = _instance()
        _serve(collector, inst)
        collector.measure_pending()
        assert collector.dropped_unaffordable == 1
        machine.refill(max_evaluations=64)
        _serve(collector, inst, seed=1)  # same instance, same version
        assert collector.pending_count == 1  # not blocked by a stale key
        assert len(collector.measure_pending()) == 1

    def test_seen_memory_bounded_and_overflow_unblocks(self, budgeted_machine):
        collector = FeedbackCollector(
            budgeted_machine, probe_size=8, max_pending=1, max_seen=2
        )
        insts = [_instance(name=f"lap{i}") for i in range(3)]
        for i, inst in enumerate(insts):
            _serve(collector, inst, seed=i)
        assert len(collector._seen) <= 2
        # lap0 and lap1 were dropped by pending overflow; re-serving them
        # must be recordable again (their keys were forgotten)
        _serve(collector, insts[0], seed=9)
        assert collector.pending_count == 1
        assert collector._pending[-1].instance.label() == insts[0].label()

    def test_measure_limit(self, collector):
        for i in range(4):
            _serve(collector, _instance(name=f"lap{i}"), seed=i)
        assert len(collector.measure_pending(limit=3)) == 3
        assert collector.pending_count == 1

    def test_uniform_probe_identical_across_collectors(self, budgeted_machine):
        """Two services replaying one episode must probe the same subsets."""
        inst = _instance()
        subsets = []
        for score_seed in (0, 99):  # different served scores, same candidates
            collector = FeedbackCollector(
                BudgetedMachine(SimulatedMachine(seed=1)),
                probe_size=8,
                probe_mode="uniform",
            )
            _serve(collector, inst, seed=0, score_seed=score_seed)
            fb = collector.measure_pending()[0]
            subsets.append(tuple(t.as_tuple() for t in fb.tunings))
        assert subsets[0] == subsets[1]

    def test_overflow_drops_oldest(self, budgeted_machine):
        collector = FeedbackCollector(
            budgeted_machine, probe_size=8, max_pending=2, dedupe=False
        )
        inst = _instance()
        for i in range(3):
            _serve(collector, inst, seed=i)
        assert collector.pending_count == 2
        assert collector.dropped_overflow == 1

    def test_rejects_bad_probe_mode(self, budgeted_machine):
        with pytest.raises(ValueError, match="probe_mode"):
            FeedbackCollector(budgeted_machine, probe_mode="nope")


class TestBudgetedMachine:
    def test_charges_and_refuses(self):
        base = SimulatedMachine(seed=0)
        machine = BudgetedMachine(base, max_evaluations=10)
        inst = _instance()
        tunings = patus_space(3).random_vectors(6, rng=0)
        result = machine.measure_batch(inst, tunings)
        assert len(result) == 6
        assert machine.spent_evaluations == 6
        assert machine.remaining_evaluations == 4
        with pytest.raises(MeasurementBudgetExceeded):
            machine.measure_batch(inst, tunings)
        # all-or-nothing: the refused batch charged nothing
        assert machine.spent_evaluations == 6
        assert base.evaluations == 6

    def test_wall_clock_budget(self):
        base = SimulatedMachine(seed=0)
        machine = BudgetedMachine(base, max_wall_s=1e-9)
        inst = _instance()
        tunings = patus_space(3).random_vectors(2, rng=0)
        assert machine.try_measure_batch(inst, tunings) is None
        assert machine.refused == 1

    def test_times_match_unbudgeted_machine(self):
        inst = _instance()
        tunings = patus_space(3).random_vectors(5, rng=0)
        budgeted = BudgetedMachine(SimulatedMachine(seed=42), max_evaluations=100)
        plain = SimulatedMachine(seed=42)
        a = budgeted.measure_batch(inst, tunings).times
        b = plain.measure_batch(inst, tunings).times
        assert np.array_equal(a, b)

    def test_refill_updates_caps(self):
        machine = BudgetedMachine(SimulatedMachine(seed=0), max_evaluations=4)
        machine.spent_evaluations = 4
        machine.refill(max_evaluations=8)
        assert machine.remaining_evaluations == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetedMachine(SimulatedMachine(seed=0), max_evaluations=-1)


class TestMidBatchExhaustion:
    def test_exhaustion_mid_batch_keeps_collector_consistent(self):
        """The budget dying partway through a measure_pending batch must
        leave every queue in a resumable state: the measured record is in
        the window once, the unmeasured ones keep their order and their
        dedupe keys, and nothing is half-measured or double-measured."""
        machine = BudgetedMachine(SimulatedMachine(seed=0), max_evaluations=12)
        collector = FeedbackCollector(machine, probe_size=8)  # dedupe on
        insts = [_instance(name=f"lap{i}") for i in range(3)]
        for i, inst in enumerate(insts):
            _serve(collector, inst, seed=i)
        new = collector.measure_pending()
        # the 12-evaluation budget covers exactly one 8-probe record: the
        # second hit the wall mid-batch and was put back, the third never
        # got a turn
        assert [fb.instance.label() for fb in new] == [insts[0].label()]
        assert collector.pending_count == 2
        assert machine.refused == 1
        assert collector.dropped_unaffordable == 0
        # dedupe keys survived the put-back: re-serving the unmeasured
        # instances is still recognized as a repeat, not re-queued
        _serve(collector, insts[1], seed=9)
        _serve(collector, insts[2], seed=9)
        assert collector.pending_count == 2
        assert collector.skipped_repeats == 2
        # after a refill, the put-back records measure in their original
        # order, exactly once each
        machine.refill(max_evaluations=64)
        rest = collector.measure_pending()
        assert [fb.instance.label() for fb in rest] == [
            insts[1].label(),
            insts[2].label(),
        ]
        assert [fb.instance.label() for fb in collector.window()] == [
            inst.label() for inst in insts
        ]
        assert collector.pending_count == 0
