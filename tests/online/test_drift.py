"""Tests for the drift monitor: τ windows, feature shift, thresholds."""

from __future__ import annotations

import dataclasses

import pytest

from repro.features.encoder import FeatureEncoder
from repro.machine.executor import SimulatedMachine
from repro.online.drift import DriftMonitor, instance_feature_slice
from repro.online.workload import DriftingWorkload
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube, line

from tests.online.conftest import make_feedback


def _with_tau(fb, tau):
    return dataclasses.replace(fb, tau=tau)


@pytest.fixture()
def monitor():
    return DriftMonitor(
        FeatureEncoder(),
        window=32,
        tau_threshold=0.5,
        shift_threshold=1.0,
        min_family_samples=3,
    )


def _line_instance(machine, seq=0, tau=None):
    kernel = StencilKernel(
        "line-3d-r1-float", (line(3, 1),), dtype="float", space_dims=3
    )
    fb = make_feedback(StencilInstance(kernel, (64, 64, 64)), machine, seq=seq)
    return fb if tau is None else _with_tau(fb, tau)


def _cube_instance(machine, seq=0, tau=None):
    kernel = StencilKernel.single_buffer("hypercube-3d-r3", hypercube(3, 3), "double")
    fb = make_feedback(StencilInstance(kernel, (128, 128, 128)), machine, seq=seq)
    return fb if tau is None else _with_tau(fb, tau)


class TestInstanceSlice:
    def test_slice_isolates_instance_scalars(self):
        enc = FeatureEncoder()
        sl = instance_feature_slice(enc)
        names = enc.feature_names()[sl]
        assert names == [n for n in enc.feature_names() if n.startswith("inst.")]

    def test_slice_without_pattern_or_interactions(self):
        enc = FeatureEncoder(include_pattern=False, interactions=False)
        sl = instance_feature_slice(enc)
        assert sl == slice(0, enc.N_INSTANCE)


class TestTauDrift:
    def test_low_family_tau_triggers(self, monitor, machine):
        for i in range(4):
            monitor.observe(_line_instance(machine, seq=i, tau=0.2))
        report = monitor.report()
        assert report.drifted
        assert any("line" in r for r in report.reasons)
        assert report.family_tau["line"] == pytest.approx(0.2)

    def test_minority_family_not_masked_by_majority(self, monitor, machine):
        """A badly ranked new family triggers even among good traffic."""
        for i in range(12):
            monitor.observe(_line_instance(machine, seq=i, tau=0.95))
        for i in range(3):
            monitor.observe(_cube_instance(machine, seq=100 + i, tau=0.0))
        assert monitor.overall_tau() > 0.5  # the global mean looks healthy
        report = monitor.report()
        assert report.drifted
        assert any("hypercube" in r for r in report.reasons)

    def test_too_few_samples_do_not_trigger(self, monitor, machine):
        for i in range(2):  # below min_family_samples=3
            monitor.observe(_line_instance(machine, seq=i, tau=-1.0))
        assert not monitor.report().drifted

    def test_healthy_window_reports_clean(self, monitor, machine):
        for i in range(6):
            monitor.observe(_line_instance(machine, seq=i, tau=0.9))
        report = monitor.report()
        assert not report.drifted
        assert report.reasons == ()

    def test_reset_clears_window(self, monitor, machine):
        for i in range(4):
            monitor.observe(_line_instance(machine, seq=i, tau=0.0))
        assert monitor.report().drifted
        monitor.reset()
        assert monitor.n_observations == 0
        assert not monitor.report().drifted


class TestFeatureShift:
    def test_shift_fires_on_family_change(
        self, phase1_training_set, phase1_tuner, machine
    ):
        """Phase-2 traffic must move the fingerprint even at healthy τ."""
        monitor = DriftMonitor(
            phase1_tuner.encoder,
            tau_threshold=0.0,  # τ can never trigger here
            shift_threshold=1.0,
        ).fit_reference(phase1_training_set)
        workload = DriftingWorkload(shift_at=0, seed=5)  # phase-2 from request 0
        for i in range(8):
            inst, _ = workload.request(i)
            monitor.observe(_with_tau(make_feedback(inst, machine, seq=i), 0.9))
        report = monitor.report()
        assert report.drifted
        assert report.feature_shift > 1.0
        assert any("feature shift" in r for r in report.reasons)

    def test_in_distribution_traffic_stays_quiet(
        self, phase1_training_set, phase1_tuner, machine
    ):
        monitor = DriftMonitor(
            phase1_tuner.encoder, tau_threshold=0.0, shift_threshold=1.0
        ).fit_reference(phase1_training_set)
        workload = DriftingWorkload(shift_at=10**9, seed=5)  # never shifts
        for i in range(8):
            inst, _ = workload.request(i)
            monitor.observe(_with_tau(make_feedback(inst, machine, seq=i), 0.9))
        report = monitor.report()
        assert not report.drifted
        assert report.feature_shift < 1.0

    def test_no_reference_means_no_shift_signal(self, monitor, machine):
        monitor.observe(_cube_instance(machine, tau=0.9))
        assert monitor.feature_shift() == 0.0

    def test_fingerprint_mismatch_rejected(self, phase1_training_set):
        monitor = DriftMonitor(FeatureEncoder(interactions=False))
        with pytest.raises(ValueError, match="encoded with"):
            monitor.fit_reference(phase1_training_set)


class TestWindow:
    def test_window_bounds_history(self, machine):
        monitor = DriftMonitor(FeatureEncoder(), window=4)
        for i in range(10):
            monitor.observe(_line_instance(machine, seq=i, tau=float(i % 2)))
        assert monitor.n_observations == 4

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            DriftMonitor(FeatureEncoder(), window=0)
