"""Tests for shadow evaluation and the promotion/rollback policy."""

from __future__ import annotations

import dataclasses
import threading

import numpy as np
import pytest

from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.online.promotion import PromotionPolicy
from repro.online.shadow import ShadowEvaluator, ShadowReport, mean_model_tau
from repro.service.registry import ModelRegistry
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube

from tests.online.conftest import make_feedback


def _window(machine, n=6):
    out = []
    for i in range(n):
        kernel = StencilKernel.single_buffer(
            f"hypercube-3d-r{1 + i % 3}", hypercube(3, 1 + i % 3), "float"
        )
        inst = StencilInstance(kernel, (64, 64, 64))
        out.append(make_feedback(inst, machine, seq=i, n=8, seed=i))
    return out


def _anti_model(model: RankSVM) -> RankSVM:
    """A model scoring exactly opposite to ``model`` (τ flips sign)."""
    worse = RankSVM(model.config)
    worse.w_ = -model.w_
    worse.num_pairs_ = model.num_pairs_
    return worse


class TestShadowEvaluator:
    def test_better_model_scores_higher(self, phase1_tuner, machine):
        window = _window(machine)
        evaluator = ShadowEvaluator(phase1_tuner.encoder)
        report = evaluator.evaluate(
            phase1_tuner.model, _anti_model(phase1_tuner.model), window
        )
        assert report.n_records == len(window)
        assert report.candidate_tau == pytest.approx(-report.production_tau)
        assert report.candidate_tau > report.production_tau
        assert report.candidate_wins()
        assert len(report.candidate_taus) == len(window)

    def test_served_tau_matches_model_tau(self, phase1_tuner, machine):
        """A record's stored τ must equal re-scoring its serving model —
        the consistency that makes live and shadow τ comparable."""
        window = _window(machine, n=3)
        # overwrite served scores with the phase-1 model's actual scores
        replayed = []
        for fb in window:
            X = phase1_tuner.encoder.encode_batch(fb.instance, list(fb.tunings))
            scores = phase1_tuner.model.decision_function(X)
            from repro.ranking.kendall import kendall_tau

            replayed.append(
                dataclasses.replace(
                    fb,
                    served_scores=scores,
                    tau=kendall_tau(-scores, fb.true_times),
                )
            )
        live = float(np.mean([fb.tau for fb in replayed]))
        shadow = mean_model_tau(phase1_tuner.encoder, phase1_tuner.model, replayed)
        assert live == pytest.approx(shadow)

    def test_empty_window(self, phase1_tuner):
        report = ShadowEvaluator(phase1_tuner.encoder).evaluate(
            phase1_tuner.model, phase1_tuner.model, []
        )
        assert report.n_records == 0
        assert mean_model_tau(phase1_tuner.encoder, phase1_tuner.model, []) == 0.0

    def test_min_improvement_margin(self):
        report = ShadowReport(candidate_tau=0.60, production_tau=0.58, n_records=10)
        assert report.candidate_wins()
        assert report.candidate_wins(0.01)
        assert not report.candidate_wins(0.05)


class TestPromotionPolicy:
    def _good_shadow(self, n=10):
        return ShadowReport(candidate_tau=0.8, production_tau=0.5, n_records=n)

    def test_promotes_and_moves_tag(self, online_registry, phase1_tuner):
        policy = PromotionPolicy(online_registry, tag="prod")
        decision = policy.consider(
            phase1_tuner.model, phase1_tuner.fingerprint(), self._good_shadow()
        )
        assert decision.promoted and decision.version == "v0002"
        assert decision.previous == "v0001"
        assert online_registry.resolve("prod") == "v0002"
        assert online_registry.resolve(policy.rollback_tag) == "v0001"

    def test_rejects_thin_shadow_window(self, online_registry, phase1_tuner):
        policy = PromotionPolicy(online_registry, min_records=4)
        decision = policy.consider(
            phase1_tuner.model, phase1_tuner.fingerprint(), self._good_shadow(n=2)
        )
        assert not decision.promoted
        assert "insufficient" in decision.reason
        assert online_registry.versions() == ["v0001"]  # nothing published

    def test_rejects_losing_candidate(self, online_registry, phase1_tuner):
        policy = PromotionPolicy(online_registry, min_improvement=0.05)
        shadow = ShadowReport(candidate_tau=0.52, production_tau=0.50, n_records=10)
        decision = policy.consider(
            phase1_tuner.model, phase1_tuner.fingerprint(), shadow
        )
        assert not decision.promoted
        assert "does not clear" in decision.reason
        assert online_registry.resolve("prod") == "v0001"

    def test_rollback_restores_previous_in_one_call(
        self, online_registry, phase1_tuner
    ):
        policy = PromotionPolicy(online_registry)
        policy.consider(
            phase1_tuner.model, phase1_tuner.fingerprint(), self._good_shadow()
        )
        assert online_registry.resolve("prod") == "v0002"
        restored = policy.rollback()
        assert restored == "v0001"
        assert online_registry.resolve("prod") == "v0001"

    def test_rollback_without_promotion_raises(self, online_registry):
        with pytest.raises(RuntimeError, match="no promotion"):
            PromotionPolicy(online_registry).rollback()

    def test_stacked_promotions_roll_back_in_order(
        self, online_registry, phase1_tuner
    ):
        policy = PromotionPolicy(online_registry)
        for _ in range(2):
            policy.consider(
                phase1_tuner.model, phase1_tuner.fingerprint(), self._good_shadow()
            )
        assert online_registry.resolve("prod") == "v0003"
        assert policy.rollback() == "v0002"
        assert policy.rollback() == "v0001"

    def test_promotion_atomic_under_concurrent_readers(
        self, online_registry, phase1_tuner
    ):
        """Readers resolving/loading the tag during promotions and rollbacks
        must only ever observe complete, valid versions."""
        policy = PromotionPolicy(online_registry)
        fingerprint = phase1_tuner.fingerprint()
        stop = threading.Event()
        failures: list[BaseException] = []

        def reader():
            while not stop.is_set():
                try:
                    version = online_registry.resolve("prod")
                    model = online_registry.load(version, expect_fingerprint=fingerprint)
                    assert model.is_fitted
                    assert version in online_registry.versions()
                except BaseException as exc:  # noqa: BLE001 - collected for assert
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(5):
                policy.consider(phase1_tuner.model, fingerprint, self._good_shadow())
                policy.rollback()
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not failures


def _family_report(
    families: "tuple[str, ...]",
    candidate: "tuple[float, ...]",
    production: "tuple[float, ...]",
) -> ShadowReport:
    """A hand-built report with per-record family annotations."""
    return ShadowReport(
        candidate_tau=float(np.mean(candidate)),
        production_tau=float(np.mean(production)),
        n_records=len(families),
        candidate_taus=candidate,
        production_taus=production,
        families=families,
    )


class TestFamilyTaus:
    def test_per_family_means_and_counts(self):
        report = _family_report(
            families=("line", "line", "hypercube"),
            candidate=(0.8, 0.6, 0.2),
            production=(0.5, 0.5, 0.6),
        )
        taus = report.family_taus()
        assert taus["line"] == (pytest.approx(0.7), pytest.approx(0.5), 2)
        assert taus["hypercube"] == (pytest.approx(0.2), pytest.approx(0.6), 1)

    def test_regressed_families_sorted_worst_first(self):
        report = _family_report(
            families=("a", "b", "c"),
            candidate=(0.1, 0.4, 0.9),
            production=(0.6, 0.5, 0.2),
        )
        regressed = report.regressed_families(tolerance=0.05)
        assert [f for f, _, _ in regressed] == ["a", "b"]  # -0.5 before -0.1

    def test_min_records_filters_noise_families(self):
        report = _family_report(
            families=("a", "b", "b"),
            candidate=(0.0, 0.8, 0.8),
            production=(0.9, 0.5, 0.5),
        )
        assert report.regressed_families(0.1, min_records=2) == []

    def test_report_without_annotations_cannot_veto(self):
        bare = ShadowReport(candidate_tau=0.9, production_tau=0.1, n_records=8)
        assert bare.family_taus() == {}
        assert bare.regressed_families(0.0) == []

    def test_evaluator_annotates_families(self, phase1_tuner, machine):
        window = _window(machine, n=4)
        evaluator = ShadowEvaluator(phase1_tuner.encoder)
        report = evaluator.evaluate(
            phase1_tuner.model, _anti_model(phase1_tuner.model), window
        )
        assert report.families == tuple(fb.family for fb in window)
        assert set(report.family_taus()) == {fb.family for fb in window}


class TestFamilyGate:
    def _mixed_report(self) -> ShadowReport:
        """Candidate wins the global mean while trashing the 'line' family."""
        return _family_report(
            families=("hypercube",) * 4 + ("line",) * 2,
            candidate=(0.9, 0.9, 0.9, 0.9, 0.1, 0.1),
            production=(0.4, 0.4, 0.4, 0.4, 0.6, 0.6),
        )

    def test_veto_blocks_a_mean_improving_candidate(
        self, online_registry, phase1_tuner
    ):
        policy = PromotionPolicy(
            online_registry, max_family_regression=0.2, min_family_records=2
        )
        shadow = self._mixed_report()
        assert shadow.candidate_wins()  # the global bar alone would promote
        decision = policy.consider(
            phase1_tuner.model, phase1_tuner.fingerprint(), shadow
        )
        assert not decision.promoted
        assert "family regression veto" in decision.reason
        assert "line" in decision.reason
        assert online_registry.versions() == ["v0001"], "a vetoed model is not published"
        assert online_registry.resolve("prod") == "v0001"

    def test_within_tolerance_regression_promotes(self, online_registry, phase1_tuner):
        policy = PromotionPolicy(online_registry, max_family_regression=0.6)
        decision = policy.consider(
            phase1_tuner.model, phase1_tuner.fingerprint(), self._mixed_report()
        )
        assert decision.promoted
        assert online_registry.resolve("prod") == decision.version

    def test_thin_family_cannot_veto(self, online_registry, phase1_tuner):
        policy = PromotionPolicy(
            online_registry, max_family_regression=0.1, min_family_records=3
        )
        # the regressing family has only 2 held-out records (< 3): noise
        decision = policy.consider(
            phase1_tuner.model, phase1_tuner.fingerprint(), self._mixed_report()
        )
        assert decision.promoted

    def test_gate_disabled_by_default(self, online_registry, phase1_tuner):
        policy = PromotionPolicy(online_registry)
        decision = policy.consider(
            phase1_tuner.model, phase1_tuner.fingerprint(), self._mixed_report()
        )
        assert decision.promoted, "without the gate, the global bar decides"

    def test_invalid_gate_parameters_rejected(self, online_registry):
        with pytest.raises(ValueError, match="max_family_regression"):
            PromotionPolicy(online_registry, max_family_regression=-0.1)
        with pytest.raises(ValueError, match="min_family_records"):
            PromotionPolicy(online_registry, min_family_records=0)
