"""End-to-end continual-learning tests: the full drift scenario.

The acceptance criteria of the subsystem, in one place: on a workload
whose family mix shifts mid-stream, the pipeline must *detect* the drift,
*retrain*, *shadow-evaluate*, *promote* through the registry tag (which
the service hot-swaps onto), and the adapting service's post-shift τ must
beat the frozen model's on identical measured records.  Promotion must be
atomic from the requests' point of view, and a bad promotion must roll
back in one call.
"""

from __future__ import annotations

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.machine.budget import BudgetedMachine
from repro.machine.executor import SimulatedMachine
from repro.online import (
    ContinualConfig,
    ContinualLearningPipeline,
    DriftingWorkload,
    DriftMonitor,
    FeedbackCollector,
    IncrementalTrainer,
    PromotionPolicy,
    ShadowEvaluator,
    mean_model_tau,
)
from repro.online.shadow import ShadowReport
from repro.service.server import TuningService

from tests.online.conftest import PHASE1, PHASE2, make_feedback

N_REQUESTS = 144
SHIFT_AT = 40
WAVE = 8


def _pipeline(service, registry, tuner, offline) -> ContinualLearningPipeline:
    return ContinualLearningPipeline(
        service=service,
        collector=FeedbackCollector(
            BudgetedMachine(SimulatedMachine(seed=11), max_evaluations=4096),
            probe_size=16,
            probe_mode="uniform",
            dedupe=False,
        ),
        monitor=DriftMonitor(
            tuner.encoder, window=48, tau_threshold=0.45, shift_threshold=1.2
        ).fit_reference(offline),
        trainer=IncrementalTrainer(offline, tuner.encoder, max_feedback=128),
        evaluator=ShadowEvaluator(tuner.encoder),
        policy=PromotionPolicy(registry, tag="prod", min_records=4),
        config=ContinualConfig(
            measure_per_step=10, min_feedback_to_train=16, gc_keep_last=2
        ),
    )


@pytest.fixture(scope="module")
def episode(request):
    """One full adapting episode (module-cached: several tests read it)."""
    phase1_training_set = request.getfixturevalue("phase1_training_set")
    phase1_tuner = request.getfixturevalue("phase1_tuner")
    import tempfile

    from repro.service.registry import ModelRegistry

    tmp = tempfile.TemporaryDirectory()
    request.addfinalizer(tmp.cleanup)
    registry = ModelRegistry(tmp.name)
    v1 = registry.publish(
        phase1_tuner.model, phase1_tuner.fingerprint(), tags=("prod",), note="seed"
    )
    service = TuningService(registry, default_model="prod")
    pipeline = _pipeline(service, registry, phase1_tuner, phase1_training_set)
    workload = DriftingWorkload(
        shift_at=SHIFT_AT, phase1=PHASE1, phase2=PHASE2, seed=3
    )
    responses = []
    reports = []

    async def run():
        async with service:
            pipeline.attach()
            for start in range(0, N_REQUESTS, WAVE):
                wave = [workload.request(i) for i in range(start, start + WAVE)]
                responses.extend(
                    await asyncio.gather(*(service.rank(q, c) for q, c in wave))
                )
                reports.append(pipeline.step())
            pipeline.detach()

    asyncio.run(run())
    return {
        "registry": registry,
        "pipeline": pipeline,
        "responses": responses,
        "reports": reports,
        "v1": v1,
        "tuner": phase1_tuner,
    }


class TestEndToEndDrift:
    def test_drift_detected_after_shift_not_before(self, episode):
        reports = episode["reports"]
        pre = reports[: SHIFT_AT // WAVE - 1]
        assert not any(r.drifted for r in pre), [r.reasons for r in pre]
        assert any(r.drifted for r in reports[SHIFT_AT // WAVE :])

    def test_retrain_and_promotion_happened(self, episode):
        pipeline = episode["pipeline"]
        assert pipeline.retrain_count >= 1
        assert pipeline.promotion_count >= 1
        promoted = [
            e for e in pipeline.events if e["type"] == "retrain" and e["promoted"]
        ]
        # every promotion was shadow-gated: candidate beat production
        for event in promoted:
            assert event["candidate_tau"] >= event["production_tau"]

    def test_service_hot_swapped_to_promoted_versions(self, episode):
        versions = {r.model_version for r in episode["responses"]}
        assert episode["v1"] in versions  # served the seed first
        assert len(versions) >= 2  # and switched after promotion
        final_prod = episode["registry"].resolve("prod")
        assert episode["responses"][-1].model_version == final_prod

    def test_no_request_observed_a_torn_model(self, episode):
        """Every answer names a version that was completely published.

        Served versions may have been garbage-collected since (retention
        keeps only tagged + newest), so the check runs against the
        publication history: the seed plus every promoted version.
        """
        pipeline = episode["pipeline"]
        published = {episode["v1"]} | {
            e["version"]
            for e in pipeline.events
            if e["type"] == "retrain" and e["promoted"]
        }
        assert {r.model_version for r in episode["responses"]} <= published
        # and everything still in the store loads cleanly
        registry = episode["registry"]
        tuner = episode["tuner"]
        for version in registry.versions():
            model = registry.load(version, expect_fingerprint=tuner.fingerprint())
            assert model.is_fitted

    def test_adapting_beats_frozen_on_identical_records(self, episode):
        """The headline: post-shift rolling τ, adapting vs frozen, on the
        exact same measured (instance, tunings, truth) records."""
        tuner = episode["tuner"]
        # the seed version may have been garbage-collected by now; the
        # frozen baseline is the in-memory model it was published from
        frozen = tuner.model
        post = [
            fb
            for fb in episode["pipeline"].collector.window()
            if fb.family in PHASE2
        ]
        assert len(post) >= 32
        adapting_tau = float(np.mean([fb.tau for fb in post]))
        frozen_tau = mean_model_tau(tuner.encoder, frozen, post)
        assert adapting_tau >= frozen_tau, (adapting_tau, frozen_tau)

    def test_registry_store_stays_bounded(self, episode):
        """gc_keep_last=2: only tagged versions + the 2 newest survive."""
        registry = episode["registry"]
        versions = registry.versions()
        protected = set(versions[-2:]) | set(registry.tags().values())
        assert set(versions) == protected

    def test_feedback_never_broke_serving(self, episode):
        assert episode["pipeline"].service.hook_errors == 0
        assert episode["pipeline"].service.telemetry.failed_total == 0
        assert len(episode["responses"]) == N_REQUESTS


class TestRollback:
    def test_post_promotion_regression_rolls_back(
        self, online_registry, phase1_tuner, phase1_training_set, machine
    ):
        """A promoted model that degrades live τ is demoted in one step."""
        service = TuningService(online_registry, default_model="prod")
        pipeline = _pipeline(
            service, online_registry, phase1_tuner, phase1_training_set
        )
        # promote a deliberately inverted model (shadow report forged the
        # way an unlucky holdout would)
        bad = dataclasses.replace(phase1_tuner.model)
        bad.w_ = -phase1_tuner.model.w_
        decision = pipeline.policy.consider(
            bad,
            phase1_tuner.fingerprint(),
            ShadowReport(candidate_tau=0.9, production_tau=0.7, n_records=8),
        )
        assert decision.promoted and online_registry.resolve("prod") == "v0002"
        old_reference = pipeline.monitor.reference
        # pretend the promotion refit the fingerprint to a shifted corpus
        pipeline.monitor.reference = (
            old_reference[0] + 1.0,
            old_reference[1],
        )
        pipeline._watch = {
            "version": decision.version,
            "baseline": 0.7,
            "taus": [],
            "reference": old_reference,
        }
        # live feedback under the bad model comes back far below baseline
        from repro.stencil.instance import StencilInstance
        from repro.stencil.kernel import StencilKernel
        from repro.stencil.shapes import hypercube

        inst = StencilInstance(
            StencilKernel.single_buffer("hypercube-3d-r1", hypercube(3, 1), "float"),
            (64, 64, 64),
        )
        live = [
            dataclasses.replace(
                make_feedback(inst, machine, seq=i, seed=i),
                model_version="v0002",
                tau=0.1,
            )
            for i in range(6)
        ]
        pipeline._maybe_rollback(live)
        assert online_registry.resolve("prod") == "v0001"  # one-call restore
        assert pipeline.rollback_count == 1
        # the restored model's training fingerprint came back with it
        assert np.array_equal(pipeline.monitor.reference[0], old_reference[0])
        event = pipeline.events[-1]
        assert event["type"] == "rollback"
        assert event["demoted"] == "v0002" and event["restored"] == "v0001"

    def test_healthy_promotion_keeps_serving(
        self, online_registry, phase1_tuner, phase1_training_set
    ):
        service = TuningService(online_registry, default_model="prod")
        pipeline = _pipeline(
            service, online_registry, phase1_tuner, phase1_training_set
        )
        decision = pipeline.policy.consider(
            phase1_tuner.model,
            phase1_tuner.fingerprint(),
            ShadowReport(candidate_tau=0.8, production_tau=0.7, n_records=8),
        )
        pipeline._watch = {
            "version": decision.version,
            "baseline": 0.7,
            "taus": [0.72] * 6,
        }
        pipeline._maybe_rollback([])
        assert online_registry.resolve("prod") == decision.version
        assert pipeline.rollback_count == 0
        assert pipeline._watch is None  # watch concluded


class TestRetrainIsolation:
    """A failing retrain is background noise, never a serving outage."""

    def _forced_drift(self) -> "DriftReport":
        from repro.online.drift import DriftReport

        return DriftReport(
            drifted=True,
            reasons=("forced",),
            family_tau={},
            overall_tau=0.0,
            feature_shift=0.0,
            n_observations=32,
        )

    def test_raising_retrain_is_contained_and_burns_the_cooldown(
        self, online_registry, phase1_tuner, phase1_training_set, monkeypatch
    ):
        service = TuningService(online_registry, default_model="prod")
        pipeline = _pipeline(
            service, online_registry, phase1_tuner, phase1_training_set
        )
        # open the retrain gate without a real episode: a drifted report
        # and a full-enough measured window
        monkeypatch.setattr(pipeline.monitor, "report", self._forced_drift)
        monkeypatch.setattr(pipeline.collector, "measure_pending", lambda limit: [])
        pipeline.collector.measured.extend(
            object() for _ in range(pipeline.config.min_feedback_to_train)
        )

        def exploding_retrain(report):
            raise RuntimeError("solver blew up")

        monkeypatch.setattr(pipeline, "_retrain", exploding_retrain)
        report = pipeline.step()  # must not raise
        assert report.drifted
        assert pipeline.retrain_errors == 1
        assert isinstance(pipeline.last_retrain_error, RuntimeError)
        event = pipeline.events[-1]
        assert event["type"] == "retrain-error"
        assert "solver blew up" in event["error"]
        # the failure burned the cooldown: the immediately next step must
        # not spin another doomed attempt
        pipeline.step()
        assert pipeline.retrain_errors == 1
        # ... but after the cooldown passes, retraining is attempted again
        for _ in range(pipeline.config.retrain_cooldown_steps + 1):
            pipeline.step()
        assert pipeline.retrain_errors == 2
        # nothing was promoted and the registry is untouched
        assert online_registry.resolve("prod") == "v0001"
        assert pipeline.retrain_count == 0

    def test_successful_step_does_not_touch_error_counters(
        self, online_registry, phase1_tuner, phase1_training_set, monkeypatch
    ):
        service = TuningService(online_registry, default_model="prod")
        pipeline = _pipeline(
            service, online_registry, phase1_tuner, phase1_training_set
        )
        monkeypatch.setattr(pipeline.collector, "measure_pending", lambda limit: [])
        pipeline.step()  # no drift, no retrain, no errors
        assert pipeline.retrain_errors == 0
        assert pipeline.last_retrain_error is None
