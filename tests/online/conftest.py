"""Shared fixtures for the continual-learning tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.autotuner import OrdinalAutotuner
from repro.autotune.training import TrainingSetBuilder
from repro.machine.budget import BudgetedMachine
from repro.machine.executor import SimulatedMachine
from repro.online.feedback import FeedbackCollector, MeasuredFeedback, stencil_family
from repro.online.workload import DriftingWorkload, family_kernels
from repro.service.registry import ModelRegistry

PHASE1 = ("line", "laplacian")
PHASE2 = ("hypercube", "hyperplane")


@pytest.fixture(scope="session")
def phase1_training_set():
    """An offline corpus deliberately restricted to two shape families."""
    builder = TrainingSetBuilder(SimulatedMachine(seed=7), seed=7)
    return builder.build(630, kernels=family_kernels(PHASE1))


@pytest.fixture(scope="session")
def phase1_tuner(phase1_training_set) -> OrdinalAutotuner:
    """The frozen baseline trained on the partial corpus."""
    return OrdinalAutotuner().train(phase1_training_set)


@pytest.fixture()
def online_registry(tmp_path, phase1_tuner) -> ModelRegistry:
    """A registry seeded with the phase-1 model as v0001, tagged prod."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(
        phase1_tuner.model, phase1_tuner.fingerprint(), tags=("prod",), note="seed"
    )
    return registry


@pytest.fixture()
def budgeted_machine() -> BudgetedMachine:
    return BudgetedMachine(SimulatedMachine(seed=11), max_evaluations=4096)


@pytest.fixture()
def collector(budgeted_machine) -> FeedbackCollector:
    return FeedbackCollector(budgeted_machine, probe_size=8)


def make_feedback(
    instance, machine: SimulatedMachine, seq=0, model_version="v0001", n=8, seed=0
) -> MeasuredFeedback:
    """A measured record with *real* encoder-compatible contents.

    Served scores are drawn at random, so ``tau`` is whatever grading those
    scores against the measured truth yields — tests that need a specific
    τ overwrite the field via dataclasses.replace.
    """
    from repro.ranking.kendall import kendall_tau
    from repro.tuning.space import patus_space
    from repro.util.rng import spawn

    rng = spawn(seed, "make-feedback", instance.label(), seq)
    tunings = tuple(patus_space(instance.dims).random_vectors(n, rng=rng))
    times = machine.measure_batch(instance, list(tunings)).medians
    scores = rng.normal(size=n)
    return MeasuredFeedback(
        seq=seq,
        instance=instance,
        family=stencil_family(instance.kernel.name),
        model_version=model_version,
        tunings=tunings,
        served_scores=scores,
        true_times=np.asarray(times),
        tau=kendall_tau(-scores, times),
    )


@pytest.fixture()
def workload() -> DriftingWorkload:
    return DriftingWorkload(
        shift_at=24, phase1=PHASE1, phase2=PHASE2, seed=3, candidates_per_request=24
    )
