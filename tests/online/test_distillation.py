"""Feedback-archive distillation: aged-out records keep their signal.

The collector's measured window is bounded; without distillation, records
evicted past ``max_measured`` vanish and a long-lived deployment forgets
exactly the families that stopped drifting.  These suites pin the
:class:`~repro.online.trainer.FeedbackArchive` semantics — absorb, dedupe,
representative-point distillation, bounds, determinism — plus the wiring
through :attr:`FeedbackCollector.on_age_out` and the retrain-quality
floor: a distilled archive must never rank worse than simply truncating.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.training import distill_points, stack_groups
from repro.features.encoder import FeatureEncoder
from repro.machine.executor import SimulatedMachine
from repro.online import FeedbackArchive, IncrementalTrainer, mean_model_tau
from repro.online.feedback import MeasuredFeedback
from repro.ranking.partial import RankingGroups
from repro.stencil.instance import StencilInstance
from repro.stencil.kernel import StencilKernel
from repro.stencil.shapes import hypercube
from repro.tuning.space import patus_space

from tests.online.conftest import PHASE2, make_feedback


@pytest.fixture()
def encoder() -> FeatureEncoder:
    return FeatureEncoder()


def _instance(i: int = 0) -> StencilInstance:
    kernel = StencilKernel.single_buffer(
        f"hypercube-3d-r1-float-{i}", hypercube(3, 1), "float"
    )
    return StencilInstance(kernel, (64, 64, 64))


# -- distill_points ------------------------------------------------------------


class TestDistillPoints:
    def test_keeps_everything_when_small(self):
        assert distill_points([3.0, 1.0, 2.0], 8).tolist() == [0, 1, 2]

    def test_always_keeps_fastest_and_slowest(self):
        rng = np.random.default_rng(4)
        times = rng.random(50)
        keep = distill_points(times, 5)
        assert len(keep) == 5
        assert int(np.argmin(times)) in keep.tolist()
        assert int(np.argmax(times)) in keep.tolist()

    def test_spread_over_sorted_order(self):
        times = np.arange(9, dtype=float)[::-1]  # 8..0
        # sorted order is reversed row order; evenly spaced positions
        assert distill_points(times, 3).tolist() == [0, 4, 8]

    def test_no_rng_pure_function(self):
        times = np.random.default_rng(7).random(40)
        a = distill_points(times, 6)
        b = distill_points(times.copy(), 6)
        assert np.array_equal(a, b)

    def test_rejects_degenerate_cap(self):
        with pytest.raises(ValueError, match="max_points"):
            distill_points([1.0, 2.0], 1)


# -- the archive ---------------------------------------------------------------


class TestFeedbackArchive:
    def test_empty_archive(self, encoder):
        archive = FeedbackArchive()
        assert len(archive) == 0
        groups = archive.groups(encoder)
        assert len(groups) == 0
        assert groups.X.shape == (0, encoder.num_features)
        assert archive.snapshot()["points"] == 0

    def test_single_record_group(self, machine, encoder):
        archive = FeedbackArchive(max_points_per_group=16)
        fb = make_feedback(_instance(), machine, seq=0, n=6)
        archive.absorb(fb)
        assert len(archive) == 1
        assert archive.n_points == 6
        groups = archive.groups(encoder)
        assert len(groups) == 6
        assert groups.num_groups == 1
        # the group's times are exactly the record's measurements
        assert np.array_equal(np.sort(groups.times), np.sort(fb.true_times))

    def test_distills_to_cap_keeping_extremes(self, machine):
        archive = FeedbackArchive(max_points_per_group=4)
        instance = _instance()
        records = [make_feedback(instance, machine, seq=i, seed=i) for i in range(5)]
        for fb in records:
            archive.absorb(fb)
        assert len(archive) == 1
        assert archive.n_points == 4
        all_times = np.concatenate([fb.true_times for fb in records])
        kept = [t for _, t in archive._groups[next(iter(archive._groups))].points.values()]
        assert float(min(all_times)) == pytest.approx(min(kept), abs=0)
        assert float(max(all_times)) == pytest.approx(max(kept), abs=0)

    def test_newest_measurement_of_a_tuning_wins(self, machine):
        archive = FeedbackArchive(max_points_per_group=8)
        instance = _instance()
        fb = make_feedback(instance, machine, seq=0, n=4)
        archive.absorb(fb)
        # same tunings, shifted times: re-absorbing must overwrite in place
        newer = MeasuredFeedback(
            seq=1,
            instance=fb.instance,
            family=fb.family,
            model_version=fb.model_version,
            tunings=fb.tunings,
            served_scores=fb.served_scores,
            true_times=fb.true_times * 2.0,
            tau=fb.tau,
        )
        archive.absorb(newer)
        assert archive.n_points == 4
        kept = sorted(
            t for _, t in archive._groups[next(iter(archive._groups))].points.values()
        )
        assert kept == sorted((fb.true_times * 2.0).tolist())

    def test_max_groups_evicts_least_recently_absorbed(self, machine):
        archive = FeedbackArchive(max_groups=2)
        for i in range(3):
            archive.absorb(make_feedback(_instance(i), machine, seq=i))
        assert len(archive) == 2
        assert archive.evicted_groups == 1
        families = [g.instance.kernel.name for g in archive._groups.values()]
        assert all("-0" not in name for name in families), families

    def test_deterministic_across_runs(self, machine, encoder):
        """Same absorb sequence ⇒ byte-identical distilled corpus."""
        def build() -> RankingGroups:
            archive = FeedbackArchive(max_points_per_group=4)
            for i in range(6):
                archive.absorb(make_feedback(_instance(i % 3), machine, seq=i, seed=i))
            return archive.groups(encoder)

        a, b = build(), build()
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.groups, b.groups)

    def test_group_order_independent_of_recency(self, machine, encoder):
        """groups() ids follow sorted fingerprints, not absorb order."""
        records = [make_feedback(_instance(i), machine, seq=i) for i in range(3)]
        forward, backward = FeedbackArchive(), FeedbackArchive()
        for fb in records:
            forward.absorb(fb)
        for fb in reversed(records):
            backward.absorb(fb)
        a, b = forward.groups(encoder), backward.groups(encoder)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.groups, b.groups)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            FeedbackArchive(max_points_per_group=1)
        with pytest.raises(ValueError):
            FeedbackArchive(max_groups=0)


# -- collector wiring ----------------------------------------------------------


class TestAgeOutWiring:
    def test_aged_records_flow_into_archive(self, budgeted_machine, machine):
        from repro.online.feedback import FeedbackCollector

        archive = FeedbackArchive()
        collector = FeedbackCollector(
            budgeted_machine, probe_size=4, max_measured=3, dedupe=False
        )
        collector.on_age_out = archive.absorb
        space = patus_space(3)
        for i in range(5):
            instance = _instance(i)
            candidates = space.random_vectors(8, rng=i)
            scores = np.linspace(1.0, 0.0, 8)
            collector.hook(
                instance, candidates, _FakeResponse(scores, "v0001")
            )
        measured = collector.measure_pending()
        assert len(measured) == 5
        assert len(collector.measured) == 3
        assert collector.aged_out == 2
        assert archive.records_absorbed == 2
        assert len(archive) == 2

    def test_pipeline_attach_wires_archive(
        self, online_registry, phase1_tuner, phase1_training_set, budgeted_machine
    ):
        from repro.online import (
            ContinualLearningPipeline,
            DriftMonitor,
            FeedbackCollector,
            PromotionPolicy,
            ShadowEvaluator,
        )
        from repro.service import TuningService

        archive = FeedbackArchive()
        collector = FeedbackCollector(budgeted_machine, probe_size=4)
        service = TuningService(online_registry, default_model="prod")
        pipeline = ContinualLearningPipeline(
            service=service,
            collector=collector,
            monitor=DriftMonitor(phase1_tuner.encoder),
            trainer=IncrementalTrainer(
                phase1_training_set, phase1_tuner.encoder, archive=archive
            ),
            evaluator=ShadowEvaluator(phase1_tuner.encoder),
            policy=PromotionPolicy(online_registry),
        )
        pipeline.attach()
        assert collector.on_age_out == archive.absorb


class _FakeResponse:
    def __init__(self, scores, model_version):
        self.scores = scores
        self.model_version = model_version


# -- corpus assembly and the retrain-quality floor -----------------------------


class TestDistilledCorpus:
    def test_empty_archive_changes_nothing(
        self, phase1_training_set, phase1_tuner, machine
    ):
        feedback = [make_feedback(_instance(i), machine, seq=i) for i in range(4)]
        plain = IncrementalTrainer(phase1_training_set, phase1_tuner.encoder)
        archived = IncrementalTrainer(
            phase1_training_set, phase1_tuner.encoder, archive=FeedbackArchive()
        )
        a, b = plain.build_corpus(feedback), archived.build_corpus(feedback)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.groups, b.groups)

    def test_archive_groups_never_alias_live_or_offline(
        self, phase1_training_set, phase1_tuner, machine
    ):
        archive = FeedbackArchive()
        for i in range(3):
            archive.absorb(make_feedback(_instance(i), machine, seq=i))
        live = [make_feedback(_instance(i), machine, seq=10 + i) for i in range(2)]
        # neutral weights: every live point survives, so sizes are exact
        trainer = IncrementalTrainer(
            phase1_training_set,
            phase1_tuner.encoder,
            archive=archive,
            decay=1.0,
            relief=0.0,
        )
        corpus = trainer.build_corpus(live)
        base = phase1_training_set.data
        extra_groups = corpus.num_groups - base.num_groups
        assert extra_groups == 5  # 3 archived + 2 live, none merged
        assert len(corpus) == len(base) + archive.n_points + sum(len(fb) for fb in live)

    def test_stack_groups_rejects_mismatched_features(self):
        a = RankingGroups(np.zeros((2, 3)), np.ones(2), np.zeros(2, dtype=np.int64))
        b = RankingGroups(np.zeros((2, 4)), np.ones(2), np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError, match="feature dimension"):
            stack_groups(a, b)

    def test_retrain_quality_floor(
        self, phase1_training_set, phase1_tuner, workload
    ):
        """Distilled ≥ truncated on the PR 3 drift episode.

        Thirty-two shifted-family records age out of a live window that
        keeps only the newest eight.  A trainer that distilled the aged
        records must rank held-out shifted traffic at least as well as
        one that simply forgot them.
        """
        machine = SimulatedMachine(seed=11)
        records = []
        for i in range(48):
            instance, candidates = workload.request(workload.shift_at + i)
            assert instance.kernel.name.split("-")[0] in PHASE2
            tunings = tuple(candidates[:8])
            times = machine.measure_batch(instance, list(tunings)).medians
            records.append(
                MeasuredFeedback(
                    seq=i,
                    instance=instance,
                    family=instance.kernel.name.split("-")[0],
                    model_version="v0001",
                    tunings=tunings,
                    served_scores=np.linspace(1.0, 0.0, 8),
                    true_times=np.asarray(times),
                    tau=0.0,
                )
            )
        aged, live, heldout = records[:32], records[32:40], records[40:]

        archive = FeedbackArchive(max_points_per_group=6)
        for fb in aged:
            archive.absorb(fb)
        distilled = IncrementalTrainer(
            phase1_training_set, phase1_tuner.encoder, archive=archive
        ).train(live, warm_start=phase1_tuner.model)
        truncated = IncrementalTrainer(
            phase1_training_set, phase1_tuner.encoder
        ).train(live, warm_start=phase1_tuner.model)

        encoder = phase1_tuner.encoder
        tau_distilled = mean_model_tau(encoder, distilled, heldout)
        tau_truncated = mean_model_tau(encoder, truncated, heldout)
        assert tau_distilled >= tau_truncated, (tau_distilled, tau_truncated)
        # and the distilled model must actually have learned the shift
        tau_offline = mean_model_tau(encoder, phase1_tuner.model, heldout)
        assert tau_distilled > tau_offline, (tau_distilled, tau_offline)
