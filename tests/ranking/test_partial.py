"""Tests for partial rankings and pair generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking.partial import RankingGroups, group_pairs, ranks_from_runtimes


class TestRanks:
    def test_paper_table1_examples(self):
        # instance q2 of Table I: runtimes 10, 36, 35 → ranks 1, 3, 2
        assert ranks_from_runtimes([10.0, 36.0, 35.0]).tolist() == [1, 3, 2]
        # instance q4: 25, 21, 12 → 3, 2, 1
        assert ranks_from_runtimes([25.0, 21.0, 12.0]).tolist() == [3, 2, 1]

    def test_ties_share_rank(self):
        assert ranks_from_runtimes([5.0, 5.0, 7.0]).tolist() == [1, 1, 3]

    def test_tie_tolerance(self):
        ranks = ranks_from_runtimes([1.000, 1.004, 2.0], tie_tol=0.01)
        assert ranks[0] == ranks[1]

    @given(st.lists(st.floats(0.1, 100, allow_nan=False), min_size=1, max_size=40))
    def test_rank_of_minimum_is_one(self, times):
        ranks = ranks_from_runtimes(times)
        assert ranks[int(np.argmin(times))] == 1

    @given(st.lists(st.floats(0.1, 100, allow_nan=False), min_size=2, max_size=40))
    def test_ranks_monotone_in_time(self, times):
        ranks = ranks_from_runtimes(times)
        order = np.argsort(times, kind="stable")
        assert all(
            ranks[order[i]] <= ranks[order[i + 1]] for i in range(len(times) - 1)
        )


class TestGroupPairs:
    def test_better_always_faster(self):
        times = np.array([3.0, 1.0, 2.0])
        better, worse = group_pairs(times)
        assert (times[better] < times[worse]).all()
        assert better.size == 3

    def test_ties_excluded(self):
        better, worse = group_pairs(np.array([1.0, 1.0, 2.0]))
        assert better.size == 2  # only pairs against the slow one

    def test_tie_tolerance_excludes_near_ties(self):
        better, worse = group_pairs(np.array([1.0, 1.001, 2.0]), tie_tol=0.01)
        assert better.size == 2

    def test_max_pairs_subsamples(self):
        times = np.arange(1.0, 41.0)
        better, worse = group_pairs(times, max_pairs=50, rng=0)
        assert better.size == 50
        assert (times[better] < times[worse]).all()

    def test_small_group(self):
        better, worse = group_pairs(np.array([1.0]))
        assert better.size == 0


class TestRankingGroups:
    def _make(self):
        X = np.arange(12.0).reshape(6, 2)
        times = np.array([3.0, 1.0, 2.0, 5.0, 4.0, 6.0])
        groups = np.array([0, 0, 0, 1, 1, 1])
        return RankingGroups(X, times, groups)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="inconsistent"):
            RankingGroups(np.zeros((3, 2)), np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError, match="2-D"):
            RankingGroups(np.zeros(3), np.zeros(3), np.zeros(3))

    def test_iter_groups(self):
        data = self._make()
        seen = dict(data.iter_groups())
        assert set(seen) == {0, 1}
        assert seen[0].tolist() == [0, 1, 2]

    def test_all_pairs_within_groups_only(self):
        data = self._make()
        better, worse = data.all_pairs()
        assert better.size == 6  # 3 per group
        assert (data.groups[better] == data.groups[worse]).all()
        assert (data.times[better] < data.times[worse]).all()

    def test_num_groups(self):
        assert self._make().num_groups == 2

    def test_subset(self):
        data = self._make()
        sub = data.subset(np.array([0, 1, 3]))
        assert len(sub) == 3
        assert sub.num_groups == 2

    def test_split_by_group_never_straddles(self):
        rng = np.random.default_rng(0)
        X = rng.random((100, 3))
        groups = np.repeat(np.arange(10), 10)
        data = RankingGroups(X, rng.random(100), groups)
        train, test = data.split_by_group(0.7, rng=1)
        assert set(np.unique(train.groups)).isdisjoint(np.unique(test.groups))
        assert len(train) + len(test) == 100

    def test_split_fraction_validated(self):
        with pytest.raises(ValueError):
            self._make().split_by_group(1.5)

    @settings(max_examples=20)
    @given(st.integers(2, 8), st.integers(2, 15))
    def test_pair_count_formula(self, n_groups, per_group):
        rng = np.random.default_rng(n_groups * per_group)
        n = n_groups * per_group
        data = RankingGroups(
            rng.random((n, 2)),
            rng.permutation(n).astype(float),  # all distinct
            np.repeat(np.arange(n_groups), per_group),
        )
        better, _ = data.all_pairs()
        assert better.size == n_groups * per_group * (per_group - 1) // 2
