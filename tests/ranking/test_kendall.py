"""Tests for Kendall τ — cross-checked against the naive oracle and scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.ranking.kendall import count_inversions, kendall_tau, kendall_tau_naive

float_lists = st.lists(
    st.floats(-100, 100, allow_nan=False), min_size=2, max_size=60
)


class TestCountInversions:
    def test_sorted(self):
        assert count_inversions(np.arange(10)) == 0

    def test_reversed(self):
        assert count_inversions(np.arange(10)[::-1]) == 45

    def test_single_swap(self):
        assert count_inversions(np.array([2, 1, 3, 4])) == 1

    def test_empty_and_singleton(self):
        assert count_inversions(np.array([])) == 0
        assert count_inversions(np.array([5])) == 0

    @given(st.lists(st.integers(0, 50), min_size=0, max_size=80))
    def test_matches_quadratic_oracle(self, values):
        arr = np.array(values)
        expected = sum(
            1
            for i in range(len(values))
            for j in range(i + 1, len(values))
            if values[i] > values[j]
        )
        assert count_inversions(arr) == expected


class TestKendallBasics:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == -1.0

    def test_paper_formula_with_ties_excludes_them(self):
        # gamma: tied pairs don't enter the denominator
        tau = kendall_tau([1, 1, 2], [1, 2, 3])
        assert tau == 1.0

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.random(500)
        y = rng.random(500)
        assert abs(kendall_tau(x, y)) < 0.1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2, 3])

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2], variant="zzz")

    def test_degenerate_all_tied(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3]) == 0.0

    def test_pair_count_too_small(self):
        assert kendall_tau([1.0], [2.0]) == 0.0


class TestCrossChecks:
    @settings(max_examples=60)
    @given(float_lists)
    def test_fast_matches_naive_gamma(self, xs):
        rng = np.random.default_rng(len(xs))
        ys = rng.random(len(xs))
        assert kendall_tau(xs, ys) == pytest.approx(
            kendall_tau_naive(xs, ys), abs=1e-12
        )

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 8), min_size=2, max_size=50))
    def test_fast_matches_naive_with_ties(self, xs):
        rng = np.random.default_rng(sum(xs) + len(xs))
        ys = rng.integers(0, 5, size=len(xs))
        for variant in ("gamma", "a", "b"):
            assert kendall_tau(xs, ys, variant) == pytest.approx(
                kendall_tau_naive(xs, ys, variant), abs=1e-12
            )

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 20), min_size=3, max_size=60))
    def test_tau_b_matches_scipy(self, xs):
        rng = np.random.default_rng(len(xs) * 7 + 1)
        ys = rng.integers(0, 10, size=len(xs))
        ours = kendall_tau(xs, ys, variant="b")
        theirs = stats.kendalltau(xs, ys).statistic
        if np.isnan(theirs):
            assert ours == 0.0
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)


class TestInvarianceProperties:
    @settings(max_examples=40)
    @given(float_lists)
    def test_symmetry(self, xs):
        rng = np.random.default_rng(13)
        ys = list(rng.random(len(xs)))
        assert kendall_tau(xs, ys) == pytest.approx(kendall_tau(ys, xs), abs=1e-12)

    @settings(max_examples=40)
    @given(float_lists)
    def test_negation_flips_sign(self, xs):
        rng = np.random.default_rng(17)
        ys = rng.random(len(xs))
        assert kendall_tau(xs, -ys) == pytest.approx(-kendall_tau(xs, ys), abs=1e-12)

    @settings(max_examples=40)
    @given(float_lists)
    def test_monotone_transform_invariant(self, xs):
        rng = np.random.default_rng(19)
        ys = rng.random(len(xs))
        # scaling by 2 is exact in binary floating point, so the ordering
        # (including which pairs are tied) is preserved bit-for-bit
        assert kendall_tau(xs, ys) == pytest.approx(
            kendall_tau(2.0 * np.asarray(xs), ys), abs=1e-12
        )

    @settings(max_examples=40)
    @given(float_lists)
    def test_range(self, xs):
        rng = np.random.default_rng(23)
        ys = rng.random(len(xs))
        assert -1.0 <= kendall_tau(xs, ys) <= 1.0
