"""Tests for rank metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.ranking.metrics import precision_at_k, spearman_rho, top1_slowdown, top_k_regret


class TestSpearman:
    def test_perfect(self):
        assert spearman_rho([1, 2, 3], [2, 4, 6]) == 1.0

    def test_reversed(self):
        assert spearman_rho([1, 2, 3], [3, 2, 1]) == -1.0

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 30), min_size=3, max_size=50))
    def test_matches_scipy(self, xs):
        rng = np.random.default_rng(len(xs))
        ys = rng.integers(0, 20, size=len(xs))
        theirs = stats.spearmanr(xs, ys).statistic
        ours = spearman_rho(xs, ys)
        if np.isnan(theirs):
            assert ours == 0.0
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)


class TestTopKRegret:
    def test_zero_when_top1_correct(self):
        times = np.array([2.0, 1.0, 3.0])
        scores = np.array([0.1, 0.9, 0.0])
        assert top_k_regret(times, scores, k=1) == 0.0

    def test_regret_value(self):
        times = np.array([2.0, 1.0, 3.0])
        scores = np.array([0.9, 0.1, 0.0])  # picks the 2.0 config
        assert top_k_regret(times, scores, k=1) == pytest.approx(1.0)

    def test_larger_k_never_increases_regret(self):
        rng = np.random.default_rng(0)
        times = rng.random(30) + 0.5
        scores = rng.random(30)
        regrets = [top_k_regret(times, scores, k) for k in range(1, 31)]
        assert all(a >= b - 1e-12 for a, b in zip(regrets, regrets[1:]))
        assert regrets[-1] == 0.0  # k = n always contains the optimum

    def test_validation(self):
        with pytest.raises(ValueError):
            top_k_regret(np.array([1.0]), np.array([1.0, 2.0]))


class TestPrecisionAtK:
    def test_perfect_model(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        assert precision_at_k(times, -times, k=2) == 1.0

    def test_disjoint(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        assert precision_at_k(times, times, k=2) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(1)
        t, s = rng.random(20), rng.random(20)
        assert 0.0 <= precision_at_k(t, s, 5) <= 1.0


class TestTop1Slowdown:
    def test_speedup_above_one_when_better(self):
        times = np.array([1.0, 2.0])
        scores = np.array([5.0, 0.0])
        assert top1_slowdown(times, scores, reference_time=2.0) == 2.0

    def test_below_one_when_worse(self):
        times = np.array([4.0, 2.0])
        scores = np.array([5.0, 0.0])
        assert top1_slowdown(times, scores, reference_time=2.0) == 0.5

    def test_positive_times_required(self):
        with pytest.raises(ValueError):
            top1_slowdown(np.array([0.0]), np.array([1.0]), 1.0)
