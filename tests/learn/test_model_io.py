"""Tests for model persistence."""

import numpy as np
import pytest

from repro.learn.model_io import load_model, save_model
from repro.learn.ranksvm import RankSVM, RankSVMConfig


@pytest.fixture()
def fitted(synthetic_ranking_data):
    return RankSVM(RankSVMConfig(C=0.05, solver="lbfgs", seed=3)).fit(
        synthetic_ranking_data
    )


class TestRoundTrip:
    def test_weights_preserved(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        loaded = load_model(path)
        assert np.array_equal(loaded.w_, fitted.w_)

    def test_config_preserved(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        loaded = load_model(path)
        assert loaded.config == fitted.config

    def test_num_pairs_preserved(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        assert load_model(path).num_pairs_ == fitted.num_pairs_

    def test_scores_identical(self, fitted, tmp_path, synthetic_ranking_data):
        path = tmp_path / "model.npz"
        save_model(fitted, path)
        loaded = load_model(path)
        X = synthetic_ranking_data.X[:10]
        assert np.array_equal(
            loaded.decision_function(X), fitted.decision_function(X)
        )


class TestGuards:
    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_model(RankSVM(), tmp_path / "m.npz")

    def test_fingerprint_mismatch(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path, encoder_fingerprint="enc-v1")
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            load_model(path, expect_fingerprint="enc-v2")

    def test_fingerprint_match_ok(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_model(fitted, path, encoder_fingerprint="enc-v1")
        loaded = load_model(path, expect_fingerprint="enc-v1")
        assert loaded.is_fitted
