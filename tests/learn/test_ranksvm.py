"""Tests for the RankSVM ordinal-regression model."""

import numpy as np
import pytest

from repro.learn.ranksvm import RankSVM, RankSVMConfig
from repro.ranking.partial import RankingGroups


class TestConfig:
    def test_paper_default_c(self):
        assert RankSVMConfig().C == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            RankSVMConfig(C=0.0)
        with pytest.raises(ValueError):
            RankSVMConfig(solver="nope")
        with pytest.raises(ValueError):
            RankSVMConfig(pair_weighting="nope")


class TestFit:
    def test_learns_known_structure(self, synthetic_ranking_data):
        model = RankSVM().fit(synthetic_ranking_data)
        assert model.w_[0] > 0  # faster with feature 0
        assert model.w_[1] < 0  # slower with feature 1

    def test_mean_kendall_high_on_learnable_data(self, synthetic_ranking_data):
        model = RankSVM().fit(synthetic_ranking_data)
        assert model.mean_kendall(synthetic_ranking_data) > 0.8

    def test_mean_weighting_underfits(self, synthetic_ranking_data):
        """The literal C/m weighting with C=0.01 barely moves the weights."""
        sum_model = RankSVM(RankSVMConfig(pair_weighting="sum")).fit(
            synthetic_ranking_data
        )
        mean_model = RankSVM(RankSVMConfig(pair_weighting="mean")).fit(
            synthetic_ranking_data
        )
        assert np.linalg.norm(mean_model.w_) < 0.1 * np.linalg.norm(sum_model.w_)

    def test_sgd_solver_agrees(self, synthetic_ranking_data):
        lb = RankSVM(RankSVMConfig(solver="lbfgs")).fit(synthetic_ranking_data)
        sg = RankSVM(RankSVMConfig(solver="sgd")).fit(synthetic_ranking_data)
        assert sg.mean_kendall(synthetic_ranking_data) > 0.6
        assert np.sign(sg.w_[0]) == np.sign(lb.w_[0])

    def test_num_pairs_recorded(self, synthetic_ranking_data):
        model = RankSVM().fit(synthetic_ranking_data)
        assert model.num_pairs_ > 0

    def test_pair_cap_respected(self, synthetic_ranking_data):
        model = RankSVM(RankSVMConfig(max_pairs_per_group=5)).fit(
            synthetic_ranking_data
        )
        assert model.num_pairs_ <= 5 * synthetic_ranking_data.num_groups


class TestInference:
    @pytest.fixture()
    def fitted(self, synthetic_ranking_data):
        return RankSVM().fit(synthetic_ranking_data)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RankSVM().decision_function(np.zeros((2, 3)))

    def test_dimension_mismatch(self, fitted):
        with pytest.raises(ValueError, match="dimension mismatch"):
            fitted.decision_function(np.zeros((2, 99)))

    def test_rank_is_descending_in_score(self, fitted, synthetic_ranking_data):
        X = synthetic_ranking_data.X[:15]
        order = fitted.rank(X)
        scores = fitted.decision_function(X)
        assert (np.diff(scores[order]) <= 1e-12).all()

    def test_predict_best_is_rank_head(self, fitted, synthetic_ranking_data):
        X = synthetic_ranking_data.X[:15]
        assert fitted.predict_best(X) == fitted.rank(X)[0]

    def test_1d_input_promoted(self, fitted, synthetic_ranking_data):
        x = synthetic_ranking_data.X[0]
        assert fitted.decision_function(x).shape == (1,)

    def test_is_fitted_flag(self, fitted):
        assert fitted.is_fitted
        assert not RankSVM().is_fitted


class TestKendallEvaluation:
    def test_per_group_keys(self, synthetic_ranking_data):
        model = RankSVM().fit(synthetic_ranking_data)
        taus = model.kendall_per_group(synthetic_ranking_data)
        assert set(taus) == set(np.unique(synthetic_ranking_data.groups))

    def test_perfect_model_tau_one(self):
        """A model scoring exactly -time must get τ = 1 in every group."""
        rng = np.random.default_rng(0)
        X = rng.random((40, 1))
        times = X[:, 0].copy()  # time equals the only feature
        groups = np.repeat([0, 1], 20)
        data = RankingGroups(X, times, groups)
        model = RankSVM()
        model.w_ = np.array([-1.0])  # score = -time
        taus = model.kendall_per_group(data)
        assert all(t == 1.0 for t in taus.values())

    def test_anti_model_tau_minus_one(self):
        rng = np.random.default_rng(1)
        X = rng.random((20, 1))
        data = RankingGroups(X, X[:, 0].copy(), np.zeros(20, dtype=int))
        model = RankSVM()
        model.w_ = np.array([1.0])
        assert model.mean_kendall(data) == -1.0
